//! The codec extensions in one tour, all through the registry: f64 fields,
//! pointwise-relative bounds, and multi-threaded chunked ZFP.
//!
//! ```text
//! cargo run --release --example advanced_codecs
//! ```

use lcpio::codec::{registry, BoundSpec};
use lcpio::datagen::nyx;
use std::time::Instant;

fn main() {
    let sz = registry().by_name("sz").expect("sz is registered");
    let zfp = registry().by_name("zfp").expect("zfp is registered");

    // --- f64 precision beyond what f32 can hold ---
    let fine: Vec<f64> = (0..65536)
        .map(|i| 1.0 + i as f64 * 1e-10 + (i as f64 * 0.001).sin() * 1e-6)
        .collect();
    let out = sz
        .compress_f64(&fine, &[65536], BoundSpec::Absolute(1e-9))
        .expect("compress");
    let (rec, _) = registry().decompress_auto_f64(&out.bytes, 1).expect("decompress");
    let max_err = fine.iter().zip(&rec).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
    println!(
        "SZ f64:  eb 1e-9 on double-precision data  ratio {:>6.2}x  max err {max_err:.2e}",
        out.stats.ratio()
    );

    // --- pointwise-relative bounds on high-dynamic-range data ---
    let density = nyx::baryon_density(40, 11);
    let dims: Vec<usize> = density.dims().extents().to_vec();
    let (lo, hi) = density.value_range();
    let out = sz
        .compress(&density.data, &dims, BoundSpec::PointwiseRelative(1e-3))
        .expect("compress");
    println!(
        "SZ PW_REL: 0.1% relative bound on density spanning [{lo:.2e}, {hi:.2e}]  ratio {:>6.2}x",
        out.stats.ratio()
    );

    // --- parallel chunked ZFP ---
    let velocity = nyx::velocity_x(96, 5);
    let dims: Vec<usize> = velocity.dims().extents().to_vec();
    let bound = BoundSpec::Absolute(1e-3);
    let t0 = Instant::now();
    let serial = zfp.compress(&velocity.data, &dims, bound).expect("compress");
    let t_serial = t0.elapsed();
    let t0 = Instant::now();
    let chunked = zfp.compress_chunked(&velocity.data, &dims, bound, 0).expect("compress");
    let t_par = t0.elapsed();
    let (rec, _) = registry().decompress_auto(&chunked.bytes, 0).expect("decompress");
    assert_eq!(rec.len(), velocity.data.len());
    println!(
        "ZFP parallel: 96^3 field  serial {:.0} ms → chunked {:.0} ms ({:.1}x), size {:+.2}%",
        t_serial.as_secs_f64() * 1e3,
        t_par.as_secs_f64() * 1e3,
        t_serial.as_secs_f64() / t_par.as_secs_f64().max(1e-9),
        (chunked.bytes.len() as f64 / serial.bytes.len() as f64 - 1.0) * 100.0
    );
}
