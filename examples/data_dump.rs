//! The §VI-B use case: compress 512 GB of NYX `velocity_x` with SZ at four
//! error bounds and write it to NFS over 10 GbE, base clock vs Eqn-3
//! tuning (Figure 6).
//!
//! ```text
//! cargo run --release --example data_dump
//! ```

use lcpio::core::datadump::{run_data_dump, DataDumpConfig};
use lcpio::core::report::render_dump;

fn main() {
    println!("simulating the 512 GB NYX data dump on the Broadwell node...\n");
    let cfg = DataDumpConfig::paper();
    let (rows, summary) = run_data_dump(&cfg).expect("paper dump config compresses");
    println!("{}", render_dump("FIGURE 6 — energy dissipation for data dumping", &rows));
    println!(
        "mean savings: {:.1} kJ ({:.1}%)   [paper: 6.5 kJ, 13%]",
        summary.mean_saved_j / 1e3,
        summary.mean_savings * 100.0
    );

    // Breakdown for the finest bound, where compression dominates.
    if let Some(r) = rows.last() {
        println!(
            "\nbreakdown at eb {:.0e}: compression {:.1} kJ / {:.0} s, writing {:.1} kJ / {:.0} s (base clock)",
            r.error_bound,
            r.base.compression_j / 1e3,
            r.base.compression_s,
            r.base.writing_j / 1e3,
            r.base.writing_s
        );
    }
}
