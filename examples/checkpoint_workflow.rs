//! A long-running simulation with periodically compressed checkpoints —
//! the workflow the paper's energy story ultimately serves. The simulation
//! keeps its full clock; Eqn-3 tuning applies only during the dump phases.
//!
//! ```text
//! cargo run --release --example checkpoint_workflow
//! ```

use lcpio::core::checkpoint::{run_checkpoint_study, CheckpointConfig};

fn main() {
    println!("simulating a checkpointing job on the Broadwell node...\n");
    let cfg = CheckpointConfig::paper_like();
    let r = run_checkpoint_study(&cfg).expect("paper-like checkpoint config compresses");
    println!(
        "{} checkpoints x {:.0} GB, SZ at eb {:.0e} (ratio {:.2}x)\n",
        cfg.checkpoints,
        cfg.checkpoint_bytes / 1e9,
        cfg.error_bound,
        r.ratio
    );
    println!("                 {:>14} {:>14}", "base clock", "tuned dumps");
    println!(
        "simulation       {:>11.0} kJ {:>11.0} kJ",
        r.base.simulation_j / 1e3,
        r.tuned.simulation_j / 1e3
    );
    println!(
        "compression      {:>11.0} kJ {:>11.0} kJ",
        r.base.compression_j / 1e3,
        r.tuned.compression_j / 1e3
    );
    println!(
        "writing          {:>11.0} kJ {:>11.0} kJ",
        r.base.writing_j / 1e3,
        r.tuned.writing_j / 1e3
    );
    println!(
        "total            {:>11.0} kJ {:>11.0} kJ",
        r.base.total_j() / 1e3,
        r.tuned.total_j() / 1e3
    );
    println!(
        "\ndump phases are {:.1}% of job energy; tuning them saves {:.2}% of the whole job\nfor a {:.2}% runtime cost.",
        r.dump_share() * 100.0,
        r.savings() * 100.0,
        r.runtime_increase() * 100.0
    );
}
