//! The paper's full modeling + tuning pipeline in one run:
//! sweep → Tables IV/V → characteristic curves → Eqn-3 evaluation →
//! derived (energy-optimal) rule.
//!
//! ```text
//! cargo run --release --example tune_io
//! ```

use lcpio::core::characteristics::{
    compression_power_curves, compression_runtime_curves, transit_power_curves,
    transit_runtime_curves,
};
use lcpio::core::experiment::{run_full_sweep, ExperimentConfig};
use lcpio::core::models::{compression_model_table, transit_model_table};
use lcpio::core::report::{render_model_table, render_tuning};
use lcpio::core::tuning::{derive_rule, evaluate_rule, TuningRule};

fn main() {
    println!("running the full §IV sweep (2 chips × 2 codecs × 3 datasets × 4 bounds × ladder × 10 reps)...");
    let cfg = ExperimentConfig::paper();
    let sweep = run_full_sweep(&cfg);
    println!(
        "  {} compression records, {} transit records\n",
        sweep.compression.len(),
        sweep.transit.len()
    );

    let t4 = compression_model_table(&sweep.compression);
    let t5 = transit_model_table(&sweep.transit);
    println!("{}", render_model_table("TABLE IV — compression power models", &t4));
    println!("{}", render_model_table("TABLE V — data-transit power models", &t5));

    let cp = compression_power_curves(&sweep.compression);
    let cr = compression_runtime_curves(&sweep.compression);
    let wp = transit_power_curves(&sweep.transit);
    let wr = transit_runtime_curves(&sweep.transit);

    let report = evaluate_rule(TuningRule::PAPER, &cp, &cr, &wp, &wr);
    println!("{}", render_tuning(&report));

    let derived = derive_rule(&cp, &cr, &wp, &wr);
    println!(
        "energy-optimal rule derived from the measured curves (≤10% runtime):\n  compression: {:.3}·f_max   writing: {:.3}·f_max   (paper Eqn 3: 0.875 / 0.850)",
        derived.compression_fraction, derived.writing_fraction
    );
}
