//! Domain example: the paper's Table I datasets through both compressors
//! at all four error bounds — the compression side of §IV-A.
//!
//! Prints compression ratio, predictor hit rate (SZ), and the simulated
//! full-size compression time/energy on the Broadwell node at base clock.
//!
//! ```text
//! cargo run --release --example compress_field
//! ```

use lcpio::codec::BoundSpec;
use lcpio::core::records::Compressor;
use lcpio::core::workmap::CostModel;
use lcpio::datagen::Dataset;
use lcpio::powersim::{simulate, Chip, Machine};

fn main() {
    let cost = CostModel::default();
    let machine = Machine::for_chip(Chip::Broadwell);
    let fmax = machine.cpu.f_max_ghz;

    println!(
        "{:<10} {:<5} {:>8} {:>8} {:>10} {:>10}",
        "dataset", "codec", "eb", "ratio", "full_t(s)", "full_E(kJ)"
    );
    for ds in Dataset::MODEL_SETS {
        let field = ds.generate(2048, 7);
        let dims: Vec<usize> = field.dims().extents().to_vec();
        let scale = field.scale_factor();
        for &eb in &[1e-1, 1e-2, 1e-3, 1e-4] {
            for comp in Compressor::ALL {
                let out = comp
                    .codec()
                    .compress(&field.data, &dims, BoundSpec::Absolute(eb))
                    .expect("compression");
                let m =
                    simulate(&machine, fmax, &cost.compression_profile(comp, &out.stats, scale));
                println!(
                    "{:<10} {:<5} {:>8.0e} {:>7.1}x {:>10.1} {:>10.2}",
                    ds.name(),
                    comp.name(),
                    eb,
                    out.stats.ratio(),
                    m.runtime_s,
                    m.energy_j / 1e3
                );
            }
        }
    }
    println!("\n(full_t / full_E are extrapolated to each dataset's Table-I size\n on the simulated Broadwell node at its 2.0 GHz base clock)");
}
