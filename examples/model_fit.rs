//! Fitting `P(f) = a·f^b + c` to your own measurements, with bootstrap
//! confidence intervals — the lcpio-fit crate as a standalone tool.
//!
//! The demo reconstructs the paper's published Broadwell and Skylake
//! model curves (Table IV), adds measurement noise, refits, and shows the
//! recovered parameters with 95% bootstrap intervals.
//!
//! ```text
//! cargo run --release --example model_fit
//! ```

use lcpio::fit::bootstrap::bootstrap_power_law;
use lcpio::fit::powerlaw::fit_power_law;

fn main() {
    // The paper's published fits (Table IV).
    let cases = [
        ("Broadwell", 0.0064, 5.315, 0.7429, 2.0),
        ("Skylake", 2.235e-9, 23.31, 0.7941, 2.2),
    ];
    for (name, a, b, c, fmax) in cases {
        let xs: Vec<f64> = {
            let mut v = Vec::new();
            let mut f = 0.8;
            while f <= fmax + 1e-9 {
                v.push(f);
                f += 0.05;
            }
            v
        };
        // Evaluate the published model and perturb it with deterministic
        // pseudo-noise (σ ≈ 0.5%).
        let mut state = 0xC0FFEEu64;
        let ys: Vec<f64> = xs
            .iter()
            .map(|&f| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let n = ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 0.005;
                a * f.powf(b) + c + n
            })
            .collect();

        let fit = fit_power_law(&xs, &ys).expect("fit");
        println!("{name}: published  {a:.3e}·f^{b:.2} + {c:.4}");
        println!(
            "{name}: recovered  {:.3e}·f^{:.2} + {:.4}   (SSE {:.2e}, RMSE {:.4}, R² {:.4})",
            fit.a, fit.b, fit.c, fit.gof.sse, fit.gof.rmse, fit.gof.r2
        );

        let bs = bootstrap_power_law(&xs, &ys, 100, 7).expect("bootstrap");
        println!(
            "{name}: 95% intervals  b ∈ [{:.2}, {:.2}]   c ∈ [{:.4}, {:.4}]   ({} resamples)\n",
            bs.b.lo, bs.b.hi, bs.c.lo, bs.c.hi, bs.resamples
        );
    }
    println!("note: for Skylake-like curves (flat then knee) the (a, b) pair is weakly");
    println!("identified — a ~ exp(-b) trade off — which is why the paper warns that R²");
    println!("is an unreliable metric for these non-linear fits (§IV-B).");
}
