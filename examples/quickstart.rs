//! Quickstart: compress a synthetic NYX field with both registered codecs,
//! verify the error bound, and estimate compression energy on both
//! simulated chips.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lcpio::codec::{registry, BoundSpec};
use lcpio::core::records::Compressor;
use lcpio::core::workmap::CostModel;
use lcpio::datagen::nyx;
use lcpio::powersim::{simulate, Chip, Machine};

fn main() {
    let eb = 1e-3;
    println!("generating a 64^3 NYX-like velocity field...");
    let field = nyx::velocity_x(64, 42);
    let dims: Vec<usize> = field.dims().extents().to_vec();

    // Both backends through the same trait: compress, auto-detect the
    // container on decode, verify the bound held.
    let mut sz_stats = None;
    for codec in registry().codecs() {
        let out = codec
            .compress(&field.data, &dims, BoundSpec::Absolute(eb))
            .expect("compression");
        let (rec, _) = registry().decompress_auto(&out.bytes, 1).expect("decompression");
        let err = max_err(&field.data, &rec);
        println!(
            "{:<3}: ratio {:>6.2}x  hit-rate {:>5.1}%  {:>5.2} bits/elem  max-error {:.2e} (bound {eb:.0e})",
            codec.name().to_uppercase(),
            out.stats.ratio(),
            out.stats.hit_rate() * 100.0,
            out.stats.bits_per_element(),
            err
        );
        assert!(err <= eb * 1.01);
        if codec.name() == "sz" {
            sz_stats = Some(out.stats);
        }
    }

    // --- What would this cost at full 512^3 scale, on real-ish hardware? ---
    let cost = CostModel::default();
    let scale = (512usize * 512 * 512) as f64 / field.data.len() as f64;
    let profile = cost.compression_profile(Compressor::Sz, &sz_stats.expect("sz ran"), scale);
    println!("\nestimated full-size (512^3) SZ compression cost:");
    for chip in Chip::ALL {
        let m = Machine::for_chip(chip);
        let fast = simulate(&m, m.cpu.f_max_ghz, &profile);
        let tuned = simulate(&m, m.cpu.snap(0.875 * m.cpu.f_max_ghz), &profile);
        println!(
            "  {:<9} base clock: {:>6.1} s / {:>7.1} J   tuned (-12.5%): {:>6.1} s / {:>7.1} J  ({:.1}% energy saved)",
            chip.name(),
            fast.runtime_s,
            fast.energy_j,
            tuned.runtime_s,
            tuned.energy_j,
            (1.0 - tuned.energy_j / fast.energy_j) * 100.0
        );
    }
}

fn max_err(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (*x as f64 - *y as f64).abs()).fold(0.0, f64::max)
}
