//! Quickstart: compress a synthetic NYX field with both codecs, verify the
//! error bound, and estimate compression energy on both simulated chips.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lcpio::core::workmap::CostModel;
use lcpio::datagen::nyx;
use lcpio::powersim::{simulate, Chip, Machine};
use lcpio::sz::{self, ErrorBound, SzConfig};
use lcpio::zfp::{self, ZfpMode};

fn main() {
    let eb = 1e-3;
    println!("generating a 64^3 NYX-like velocity field...");
    let field = nyx::velocity_x(64, 42);
    let dims: Vec<usize> = field.dims().extents().to_vec();

    // --- SZ ---
    let sz_out = sz::compress(&field.data, &dims, &SzConfig::new(ErrorBound::Absolute(eb)))
        .expect("compression");
    let (sz_rec, _) = sz::decompress(&sz_out.bytes).expect("decompression");
    let sz_err = max_err(&field.data, &sz_rec);
    println!(
        "SZ : ratio {:>6.2}x  hit-rate {:>5.1}%  max-error {:.2e} (bound {eb:.0e})",
        sz_out.stats.ratio(),
        sz_out.stats.hit_rate() * 100.0,
        sz_err
    );
    assert!(sz_err <= eb * 1.01);

    // --- ZFP ---
    let zfp_out = zfp::compress(&field.data, &dims, &ZfpMode::FixedAccuracy(eb))
        .expect("compression");
    let (zfp_rec, _) = zfp::decompress(&zfp_out.bytes).expect("decompression");
    let zfp_err = max_err(&field.data, &zfp_rec);
    println!(
        "ZFP: ratio {:>6.2}x  zero-blocks {:>4}  max-error {:.2e} (bound {eb:.0e})",
        zfp_out.stats.ratio(),
        zfp_out.stats.zero_blocks,
        zfp_err
    );
    assert!(zfp_err <= eb);

    // --- What would this cost at full 512^3 scale, on real-ish hardware? ---
    let cost = CostModel::default();
    let scale = (512usize * 512 * 512) as f64 / field.data.len() as f64;
    let profile = cost.sz_profile(&sz_out.stats, scale);
    println!("\nestimated full-size (512^3) SZ compression cost:");
    for chip in Chip::ALL {
        let m = Machine::for_chip(chip);
        let fast = simulate(&m, m.cpu.f_max_ghz, &profile);
        let tuned = simulate(&m, m.cpu.snap(0.875 * m.cpu.f_max_ghz), &profile);
        println!(
            "  {:<9} base clock: {:>6.1} s / {:>7.1} J   tuned (-12.5%): {:>6.1} s / {:>7.1} J  ({:.1}% energy saved)",
            chip.name(),
            fast.runtime_s,
            fast.energy_j,
            tuned.runtime_s,
            tuned.energy_j,
            (1.0 - tuned.energy_j / fast.energy_j) * 100.0
        );
    }
}

fn max_err(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (*x as f64 - *y as f64).abs()).fold(0.0, f64::max)
}
