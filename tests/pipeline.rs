//! Full-pipeline integration: §IV sweep → Tables IV/V → Figures 1–4 →
//! Eqn 3 → §VI use cases, at test scale, through the public `lcpio` API.

use lcpio::core::characteristics::{
    compression_power_curves, compression_runtime_curves, transit_power_curves,
    transit_runtime_curves,
};
use lcpio::core::datadump::{run_data_dump, DataDumpConfig};
use lcpio::core::experiment::{run_full_sweep, ExperimentConfig};
use lcpio::core::models::{compression_model_table, hardware_dominates, row, transit_model_table};
use lcpio::core::tuning::{evaluate_rule, TuningRule};
use lcpio::core::validation::{validate_on_isabel, ValidationConfig};

#[test]
fn paper_reproduction_shapes_hold_end_to_end() {
    let sweep = run_full_sweep(&ExperimentConfig::quick());

    // Tables IV & V: hardware slices dominate, Skylake exponent extreme.
    let t4 = compression_model_table(&sweep.compression);
    let t5 = transit_model_table(&sweep.transit);
    assert!(hardware_dominates(&t4));
    assert!(hardware_dominates(&t5));
    let bd = row(&t4, "Broadwell").expect("broadwell row").fit;
    let sk = row(&t4, "Skylake").expect("skylake row").fit;
    assert!(
        (3.0..9.0).contains(&bd.b),
        "Broadwell exponent {} should be moderate (paper 5.3)",
        bd.b
    );
    assert!(sk.b > 1.5 * bd.b, "Skylake {} vs Broadwell {}", sk.b, bd.b);

    // Figures 1-4: scaled curves normalized at f_max, with the right floors.
    let cp = compression_power_curves(&sweep.compression);
    let cr = compression_runtime_curves(&sweep.compression);
    let wp = transit_power_curves(&sweep.transit);
    let wr = transit_runtime_curves(&sweep.transit);
    for c in cp.iter().chain(&wp) {
        assert!((c.at_fmax() - 1.0).abs() < 0.05, "{}", c.label);
        assert!(c.floor() < 0.95, "{} floor {}", c.label, c.floor());
    }
    for c in cr.iter().chain(&wr) {
        assert!(c.floor() >= 1.0, "{} runtime floor {}", c.label, c.floor());
    }

    // Eqn 3: double-digit combined savings at single-digit runtime cost.
    let report = evaluate_rule(TuningRule::PAPER, &cp, &cr, &wp, &wr);
    assert!(
        (0.08..0.25).contains(&report.combined_savings()),
        "combined savings {}",
        report.combined_savings()
    );
    assert!(
        report.combined_runtime_increase() < 0.12,
        "combined runtime increase {}",
        report.combined_runtime_increase()
    );

    // Figure 5: the Broadwell model generalizes to ISABEL.
    let val = validate_on_isabel(&ValidationConfig::quick(), &bd);
    assert!(val.gof.rmse < 0.08, "validation rmse {}", val.gof.rmse);

    // Figure 6: tuning the 512 GB dump always saves energy.
    let (rows, summary) = run_data_dump(&DataDumpConfig::quick()).expect("quick dump runs");
    assert!(rows.iter().all(|r| r.saved_j() > 0.0));
    assert!((0.05..0.25).contains(&summary.mean_savings), "{}", summary.mean_savings);
}

#[test]
fn sweep_results_serialize_for_provenance() {
    let mut cfg = ExperimentConfig::quick();
    cfg.datasets = vec![lcpio::datagen::Dataset::Nyx];
    cfg.compressors = vec![lcpio::core::Compressor::Sz];
    cfg.error_bounds = vec![1e-2];
    let sweep = run_full_sweep(&cfg);
    let json = sweep.to_json();
    assert!(json.contains("\"compression\""));
    assert!(json.contains("\"Broadwell\"") || json.contains("Broadwell"));
}
