//! Executes the EXPERIMENTS.md walkthrough verbatim.
//!
//! The first fenced ```bash block of the "Walkthrough" section is the
//! repo's front-door demo; this test parses every `lcpio-cli` line out of
//! it and runs each through [`lcpio::cli::parse_invocation`] /
//! [`lcpio::cli::run_invocation`] in a scratch directory, so the
//! documented commands cannot drift from the CLI they describe.
//!
//! This file deliberately contains a single `#[test]`: it changes the
//! process working directory, which would race against sibling tests in
//! the same binary.

use lcpio::cli::{parse_invocation, run_invocation};

/// Pull the `lcpio-cli …` lines out of the first fenced bash block that
/// follows the walkthrough heading.
fn walkthrough_commands(md: &str) -> Vec<String> {
    let section = md
        .split("## Walkthrough")
        .nth(1)
        .expect("EXPERIMENTS.md must keep its Walkthrough section");
    let block = section
        .split("```bash")
        .nth(1)
        .and_then(|rest| rest.split("```").next())
        .expect("the Walkthrough section must keep its fenced bash block");
    block
        .lines()
        .map(str::trim)
        .filter(|l| l.starts_with("lcpio-cli "))
        .map(|l| l.trim_start_matches("lcpio-cli ").to_string())
        .collect()
}

#[test]
fn walkthrough_commands_run_as_documented() {
    let md = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/EXPERIMENTS.md"))
        .expect("read EXPERIMENTS.md");
    let commands = walkthrough_commands(&md);
    assert!(
        commands.len() >= 7,
        "the walkthrough should cover gen → pipeline → decode → restart → sweep → fit → tune \
         → serve, found {} commands",
        commands.len()
    );

    let dir = std::env::temp_dir().join("lcpio-walkthrough-smoke");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    std::env::set_current_dir(&dir).expect("enter scratch dir");

    let mut transcript = String::new();
    for cmd in &commands {
        let args: Vec<String> = cmd.split_whitespace().map(str::to_string).collect();
        let inv = parse_invocation(&args)
            .unwrap_or_else(|e| panic!("documented command `lcpio-cli {cmd}` must parse: {e}"));
        let mut out = Vec::new();
        run_invocation(inv, &mut out)
            .unwrap_or_else(|e| panic!("documented command `lcpio-cli {cmd}` must run: {e}"));
        transcript.push_str(&String::from_utf8_lossy(&out));
    }

    // The walkthrough's artifacts exist and its claims hold.
    for artifact in
        ["nyx.lcpf", "nyx.lcs", "restored.lcpf", "restart.lcpf", "sweep.json", "serve-metrics.json"]
    {
        assert!(dir.join(artifact).exists(), "walkthrough must produce {artifact}");
    }
    assert!(
        transcript.contains("restarted"),
        "`restart` must report the overlapped restore:\n{transcript}"
    );
    assert!(
        transcript.contains("streaming pipeline container"),
        "`info` must identify the LCS1 stream:\n{transcript}"
    );
    assert!(
        transcript.contains("TABLE IV") && transcript.contains("TABLE V"),
        "`tables` must print both model tables"
    );
    assert!(
        transcript.contains("combined"),
        "`tune` must print the combined Eqn-3 savings:\n{transcript}"
    );
    assert!(
        transcript.contains("req/s") && transcript.contains("p99"),
        "`serve --drive` must report throughput and tail latency:\n{transcript}"
    );
    let metrics =
        std::fs::read_to_string(dir.join("serve-metrics.json")).expect("read serve metrics");
    // The counters ride in the trace report, which `--no-default-features`
    // documents as empty; the file itself must exist either way.
    if cfg!(feature = "trace") {
        assert!(
            metrics.contains("serve.requests") && metrics.contains("serve.energy_uj"),
            "the serve metrics report must carry the serve.* counters:\n{metrics}"
        );
    }
}
