//! Cross-crate integration: synthetic datasets → both registered codecs →
//! error-bound verification, across every dataset and the paper's four
//! bounds. All dispatch goes through the codec registry.

use lcpio::codec::{registry, BoundSpec};
use lcpio::datagen::Dataset;

fn max_err(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .filter(|(x, _)| x.is_finite())
        .map(|(x, y)| (*x as f64 - *y as f64).abs())
        .fold(0.0, f64::max)
}

#[test]
fn every_codec_respects_bounds_on_all_datasets() {
    for codec in registry().codecs() {
        for ds in [Dataset::CesmAtm, Dataset::Hacc, Dataset::Nyx, Dataset::Isabel] {
            let field = ds.generate(16384, 5);
            let dims: Vec<usize> = field.dims().extents().to_vec();
            for eb in [1e-1, 1e-2, 1e-3, 1e-4] {
                let out = codec
                    .compress(&field.data, &dims, BoundSpec::Absolute(eb))
                    .unwrap_or_else(|e| panic!("{} {} eb {eb}: {e}", codec.name(), ds.name()));
                let (rec, rdims) =
                    registry().decompress_auto(&out.bytes, 1).expect("decompress");
                assert_eq!(rdims, dims, "{} {}", codec.name(), ds.name());
                let err = max_err(&field.data, &rec);
                assert!(err <= eb, "{} {} eb {eb}: err {err}", codec.name(), ds.name());
            }
        }
    }
}

#[test]
fn smooth_gridded_data_compresses_better_than_particles() {
    // The paper's motivation for diverse datasets: dimensionality and
    // smoothness drive compressibility (§III-C). At a tight relative
    // bound, the smooth 3-D NYX grid must beat the clustered 1-D HACC
    // particles.
    let eb = 1e-4;
    let sz = registry().by_name("sz").expect("sz is registered");
    let ratio = |ds: Dataset| {
        let field = ds.generate(4096, 5);
        let dims: Vec<usize> = field.dims().extents().to_vec();
        // Use a value-range-relative bound so datasets with different value
        // scales are compared fairly.
        let out = sz
            .compress(&field.data, &dims, BoundSpec::ValueRangeRelative(eb))
            .expect("compress");
        out.stats.ratio()
    };
    let nyx = ratio(Dataset::Nyx);
    let hacc = ratio(Dataset::Hacc);
    assert!(
        nyx > 1.2 * hacc,
        "3-D NYX ({nyx:.2}x) should compress better than 1-D HACC ({hacc:.2}x)"
    );
}

#[test]
fn codecs_agree_on_which_bound_is_harder() {
    let field = Dataset::Nyx.generate(16384, 6);
    let dims: Vec<usize> = field.dims().extents().to_vec();
    for codec in registry().codecs() {
        let sizes: Vec<usize> = [1e-1, 1e-4]
            .iter()
            .map(|&eb| {
                codec
                    .compress(&field.data, &dims, BoundSpec::Absolute(eb))
                    .expect("compress")
                    .bytes
                    .len()
            })
            .collect();
        assert!(sizes[1] > sizes[0], "{}: tighter bound must cost bytes", codec.name());
    }
}
