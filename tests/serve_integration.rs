//! The CI serve leg: a real daemon on a Unix socket at two worker
//! shards, a mixed workload driven over it, and request/response
//! byte-identity with the one-shot CLI path for every chunk policy.
//!
//! What "byte-identity" pins down: the service path (socket → admission
//! → shard worker) and the one-shot path (`lcpio-cli compress`) must
//! funnel into the same serial codec call, so a checkpoint compressed
//! over the wire is indistinguishable from one compressed in-process.

use std::path::PathBuf;

use lcpio::cli;
use lcpio::codec::policy::CodecId;
use lcpio::codec::BoundSpec;
use lcpio::core::policy::interleaved_cesm_hacc;
use lcpio::core::PolicyKind;
use lcpio::serve::{
    drive, plan_and_compress, Client, CompressOptions, Endpoint, ServeConfig, Server,
    WorkloadConfig,
};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lcpio-serve-integration-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn socket_compress_is_byte_identical_to_one_shot_for_every_policy() {
    let dir = scratch_dir("identity");
    let cfg = ServeConfig { workers: 2, ..ServeConfig::default() };
    let server =
        Server::bind(&Endpoint::Unix(dir.join("serve.sock")), cfg).expect("bind unix");
    let mut client = Client::connect(server.endpoint()).expect("connect");

    // The adaptive policy's home turf: mixed CESM/HACC content.
    let data = interleaved_cesm_hacc(4096, 2, 11);
    let dims = vec![data.len()];
    let bound = BoundSpec::Absolute(1e-3);

    for policy in [PolicyKind::Fixed, PolicyKind::Heuristic, PolicyKind::Adaptive] {
        let opts = CompressOptions {
            codec: Some(CodecId::Sz),
            bound: Some(bound),
            policy: Some(policy),
        };
        let resp = client.compress(&data, &dims, opts).expect("compress over socket");
        assert!(resp.is_ok(), "{policy:?}: {}", resp.message);

        // Reference: the same plan executed in-process.
        let (reference, ref_codec, _, _) =
            plan_and_compress(&cfg, &data, &dims, CodecId::Sz, bound, policy)
                .expect("reference compress");
        assert_eq!(
            resp.payload, reference,
            "{policy:?}: socket bytes differ from the in-process plan"
        );
        assert_eq!(resp.codec, Some(ref_codec), "{policy:?}: planned codec drifted");

        // Round-trip through the service: decompress must restore the
        // field bit-exactly to what the container encodes.
        let back = client.decompress(&resp.payload).expect("decompress over socket");
        assert!(back.is_ok(), "{policy:?}: {}", back.message);
        assert_eq!(back.dims, dims, "{policy:?}");
        let restored = back.elements().expect("elements");
        let worst = data
            .iter()
            .zip(&restored)
            .map(|(a, b)| (*a as f64 - *b as f64).abs())
            .fold(0.0, f64::max);
        assert!(worst <= 1e-3, "{policy:?}: bound violated over the socket ({worst})");
    }

    // For the fixed policy, the one-shot CLI must produce the same
    // container byte-for-byte.
    let field = dir.join("field.lcpf");
    let out = dir.join("field.sz");
    cli::write_field(&field, &data, &dims).expect("write field");
    let cmd = cli::parse(&[
        "compress".into(),
        "--codec".into(),
        "sz".into(),
        "--eb".into(),
        "1e-3".into(),
        "-i".into(),
        field.display().to_string(),
        "-o".into(),
        out.display().to_string(),
    ])
    .expect("parse compress");
    let mut transcript = Vec::new();
    cli::run(cmd, &mut transcript).expect("run compress");
    let cli_bytes = std::fs::read(&out).expect("read CLI output");

    let opts = CompressOptions {
        codec: Some(CodecId::Sz),
        bound: Some(bound),
        policy: Some(PolicyKind::Fixed),
    };
    let resp = client.compress(&data, &dims, opts).expect("compress over socket");
    assert_eq!(
        resp.payload, cli_bytes,
        "fixed-policy socket output differs from `lcpio-cli compress`"
    );

    server.shutdown();
    let stats = server.wait();
    assert_eq!(stats.errors, 0, "no request on this path may error");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mixed_workload_over_unix_socket_completes_cleanly() {
    let dir = scratch_dir("workload");
    let cfg = ServeConfig { workers: 2, ..ServeConfig::default() };
    let server = Server::bind(&Endpoint::Unix(dir.join("serve.sock")), cfg).expect("bind unix");

    let workload = WorkloadConfig {
        requests: 30,
        clients: 3,
        chunk_elements: 4096,
        policy: PolicyKind::Adaptive,
        ..WorkloadConfig::default()
    };
    let report = drive(server.endpoint(), &workload).expect("drive workload");
    assert_eq!(report.requests, 30);
    assert_eq!(report.ok, 30, "busy={} errors={}", report.busy, report.errors);
    assert!(report.req_per_s > 0.0);
    assert!(report.p99_us >= report.p50_us);
    assert!(report.bytes_in > 0 && report.bytes_out > 0);
    assert!(report.energy_uj > 0, "every served request is energy-priced");

    server.shutdown();
    let stats = server.wait();
    assert_eq!(stats.requests, 30);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.compress + stats.decompress + stats.info, 30, "op mix accounting");
    let _ = std::fs::remove_dir_all(&dir);
}
