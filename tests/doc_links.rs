//! Markdown link check: every intra-repo link in every tracked `*.md`
//! file must point at a path that exists. Dead links fail the build (the
//! CI `docs` job runs this test), so the navigation docs — README,
//! ARCHITECTURE, DESIGN, EXPERIMENTS — cannot silently rot as files move.

use std::path::{Path, PathBuf};

/// All markdown files in the repo, skipping build output and VCS innards.
fn markdown_files(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && name != ".git" && name != "node_modules" {
                    stack.push(path);
                }
            } else if name.ends_with(".md") {
                found.push(path);
            }
        }
    }
    found.sort();
    found
}

/// Extract `[text](dest)` destinations from one markdown body, skipping
/// fenced code blocks (command examples routinely contain brackets).
fn link_targets(md: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in md.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            // Find the next "](" pair, then take the balanced-paren-free
            // destination up to the closing ')'.
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                if let Some(close) = line[i + 2..].find(')') {
                    targets.push(line[i + 2..i + 2 + close].to_string());
                    i += 2 + close;
                }
            }
            i += 1;
        }
    }
    targets
}

#[test]
fn intra_repo_markdown_links_resolve() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let files = markdown_files(&root);
    assert!(
        files.iter().any(|f| f.ends_with("README.md"))
            && files.iter().any(|f| f.ends_with("ARCHITECTURE.md")),
        "README.md and ARCHITECTURE.md must exist at the repo root"
    );

    let mut dead = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let body = std::fs::read_to_string(file).expect("read markdown");
        for target in link_targets(&body) {
            // External and in-page links are out of scope.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
                || target.is_empty()
            {
                continue;
            }
            // Strip any #anchor and treat the rest as a path relative to
            // the linking file.
            let path_part = target.split('#').next().unwrap_or("");
            if path_part.is_empty() {
                continue;
            }
            let resolved = file.parent().expect("md file has a parent").join(path_part);
            checked += 1;
            if !resolved.exists() {
                dead.push(format!(
                    "{} -> {}",
                    file.strip_prefix(&root).unwrap_or(file).display(),
                    target
                ));
            }
        }
    }
    assert!(checked > 10, "expected to find intra-repo links to check, found {checked}");
    assert!(dead.is_empty(), "dead intra-repo markdown links:\n  {}", dead.join("\n  "));
}
