//! Property tests for the word-level ZFP kernels: the 64-bit-buffered
//! bitstream against its retained bit-at-a-time reference, and the
//! stride-table transform kernels against the generic lane walker.

use lcpio::zfp::bitstream::reference::{RefReadStream, RefWriteStream};
use lcpio::zfp::bitstream::{ReadStream, WriteStream};
use lcpio::zfp::transform;
use proptest::prelude::*;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random interleavings of write_bit / write_bits (widths 0–64) /
    /// pad_to produce byte-identical output and identical running bit_len
    /// and write_bits return values on both stream implementations.
    #[test]
    fn write_stream_matches_reference(seed in any::<u64>(), ops in 1usize..300) {
        let mut s = seed | 1;
        let mut w = WriteStream::new();
        let mut r = RefWriteStream::new();
        for _ in 0..ops {
            let x = xorshift(&mut s);
            match x % 8 {
                0 => {
                    let bit = x & 16 != 0;
                    w.write_bit(bit);
                    r.write_bit(bit);
                }
                7 => {
                    // pad forward up to 70 bits past the current end.
                    let target = r.bit_len() + (x >> 8) as usize % 70;
                    w.pad_to(target);
                    r.pad_to(target);
                }
                _ => {
                    let n = (x >> 32) as usize % 65;
                    let v = xorshift(&mut s);
                    prop_assert_eq!(w.write_bits(v, n), r.write_bits(v, n));
                }
            }
            prop_assert_eq!(w.bit_len(), r.bit_len());
        }
        prop_assert_eq!(w.into_bytes(), r.into_bytes());
    }

    /// Random interleavings of read_bit / read_bits / seek return identical
    /// values and positions on both readers, including reads that run past
    /// the end of the buffer (which must yield zeros).
    #[test]
    fn read_stream_matches_reference(
        seed in any::<u64>(),
        buf in proptest::collection::vec(any::<u8>(), 0..200),
        ops in 1usize..300,
    ) {
        let mut s = seed | 1;
        let mut r = ReadStream::new(&buf);
        let mut rr = RefReadStream::new(&buf);
        let limit = buf.len() * 8 + 130; // roam past the end on purpose
        for _ in 0..ops {
            let x = xorshift(&mut s);
            match x % 4 {
                0 => prop_assert_eq!(r.read_bit(), rr.read_bit()),
                3 => {
                    let to = (x >> 8) as usize % limit;
                    r.seek(to);
                    rr.seek(to);
                }
                _ => {
                    let n = (x >> 32) as usize % 65;
                    prop_assert_eq!(r.read_bits(n), rr.read_bits(n));
                }
            }
            prop_assert_eq!(r.bit_pos(), rr.bit_pos());
        }
    }

    /// peek_bits / advance / scan_unary agree with what a reference reader
    /// observes bit by bit: peeking never moves the cursor, and a unary
    /// scan consumes through the first 1 bit (or all n zeros).
    #[test]
    fn peek_and_scan_match_reference(
        seed in any::<u64>(),
        buf in proptest::collection::vec(any::<u8>(), 0..100),
        ops in 1usize..200,
    ) {
        let mut s = seed | 1;
        let mut r = ReadStream::new(&buf);
        let mut rr = RefReadStream::new(&buf);
        for _ in 0..ops {
            let x = xorshift(&mut s);
            let n = (x >> 32) as usize % 65;
            if x.is_multiple_of(2) {
                // Peek, verify against a lookahead, then advance.
                let peeked = r.peek_bits(n);
                let mut look = rr.clone();
                prop_assert_eq!(peeked, look.read_bits(n));
                prop_assert_eq!(r.bit_pos(), rr.bit_pos());
                r.advance(n);
                rr.seek(rr.bit_pos() + n);
            } else {
                let chunk = rr.read_bits(n);
                let expect = if chunk != 0 {
                    let z = chunk.trailing_zeros() as usize;
                    (z + 1, z)
                } else {
                    (n, n)
                };
                rr.seek(rr.bit_pos() - n + expect.0);
                prop_assert_eq!(r.scan_unary(n), expect);
            }
            prop_assert_eq!(r.bit_pos(), rr.bit_pos());
        }
    }

    /// The dimension-specialized transform kernels are exact drop-ins for
    /// the generic lane-walking path, forward and inverse, for d = 1, 2, 3.
    #[test]
    fn specialized_transform_matches_generic(seed in any::<u64>(), d in 1usize..4) {
        let mut s = seed | 1;
        let n = 4usize.pow(d as u32);
        let mut fast: Vec<i64> = (0..n).map(|_| (xorshift(&mut s) as i64) >> 31).collect();
        let mut slow = fast.clone();
        transform::forward(&mut fast, d);
        transform::forward_generic(&mut slow, d);
        prop_assert_eq!(&fast, &slow);
        transform::inverse(&mut fast, d);
        transform::inverse_generic(&mut slow, d);
        prop_assert_eq!(&fast, &slow);
    }
}
