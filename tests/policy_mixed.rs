//! Mixed-codec `LCW1` streaming containers, through the public `lcpio`
//! API: round-trip properties of the per-chunk policy layer (thread-count
//! invariance, restart-path agreement) and failure injection against its
//! codec-tag field (truncation at every offset, forged and unknown tags).
//!
//! The policy set under test always includes the heuristic and adaptive
//! planners plus whatever `LCPIO_POLICY` selects, so the CI legs that
//! export `LCPIO_POLICY=adaptive` (alone and with
//! `LCPIO_SZ_FORCE_SCALAR=1`) re-run the whole suite under the
//! environment-selected policy too.

use lcpio::core::pipeline::{
    decode_stream, run_restart, run_restart_streamed, run_sequential, run_streaming,
    PipelineConfig, RestartConfig, SliceSource, VecSink,
};
use lcpio::core::PolicyKind;
use lcpio::wire::{Envelope, EnvelopeBuilder};

/// Blocks that alternate smooth (SZ-friendly) and noisy large-range
/// (ZFP-leaning under an absolute bound) data, so non-fixed policies
/// genuinely mix codecs across chunks.
fn mixed_workload(chunk: usize, chunks: usize) -> Vec<f32> {
    (0..chunk * chunks)
        .map(|i| {
            let block = i / chunk;
            let x = (i % chunk) as f32;
            if block.is_multiple_of(2) { (x * 0.02).sin() } else { (x * 7919.0).sin() * 1e4 }
        })
        .collect()
}

/// Heuristic + adaptive, plus the environment-selected policy (fixed by
/// default, adaptive under the dedicated CI legs).
fn policies() -> Vec<PolicyKind> {
    let mut v = vec![PolicyKind::Heuristic, PolicyKind::Adaptive];
    let env = PolicyKind::from_env();
    if !v.contains(&env) {
        v.push(env);
    }
    v
}

fn config(policy: PolicyKind, wire: bool) -> PipelineConfig {
    PipelineConfig {
        chunk_elements: 512,
        wire_format: wire,
        policy,
        ..PipelineConfig::default()
    }
}

fn stream(data: &[f32], cfg: &PipelineConfig) -> Vec<u8> {
    let mut sink = VecSink::default();
    run_sequential(data, cfg, &mut sink).expect("pipeline");
    sink.bytes
}

#[test]
fn mixed_container_output_is_invariant_across_thread_counts() {
    let data = mixed_workload(512, 6);
    for policy in policies() {
        for wire in [false, true] {
            let cfg = config(policy, wire);
            let reference = stream(&data, &cfg);
            for (threads, writers) in [(1, 1), (2, 1), (3, 2)] {
                let cfg = PipelineConfig { compress_threads: threads, writers, ..cfg.clone() };
                let mut sink = VecSink::default();
                run_streaming(&data, &cfg, &mut sink).expect("streaming pipeline");
                assert_eq!(
                    sink.bytes, reference,
                    "{policy:?} wire={wire} threads={threads} writers={writers}: \
                     output differs from the sequential reference"
                );
            }
            // The container round-trips within the absolute bound.
            let back = decode_stream(&reference).expect("decode");
            assert_eq!(back.len(), data.len());
            let bound = 1e-3f32;
            for (a, b) in data.iter().zip(&back) {
                assert!((a - b).abs() <= bound * 1.001, "{a} vs {b}");
            }
        }
    }
}

#[test]
fn restart_paths_agree_on_mixed_containers() {
    let data = mixed_workload(512, 6);
    for policy in policies() {
        let bytes = stream(&data, &config(policy, true));
        let sequential = decode_stream(&bytes).expect("decode");
        let cfg = RestartConfig { queue_depth: 2, workers: 2, ..RestartConfig::default() };
        let (positioned, _) =
            run_restart(&SliceSource::new(&bytes), &cfg).expect("positioned restart");
        let (streamed, _) =
            run_restart_streamed(&mut &bytes[..], &cfg).expect("streamed restart");
        for (a, b) in sequential.iter().zip(&positioned) {
            assert_eq!(a.to_bits(), b.to_bits(), "{policy:?}: positioned restart differs");
        }
        for (a, b) in sequential.iter().zip(&streamed) {
            assert_eq!(a.to_bits(), b.to_bits(), "{policy:?}: streamed restart differs");
        }
    }
}

#[test]
fn mixed_wire_container_survives_truncation_at_every_offset() {
    // Tag-carrying containers keep the strict truncation contract: every
    // strict prefix is a typed error on both decode paths, never a panic.
    let data = mixed_workload(512, 2);
    let bytes = stream(&data, &config(PolicyKind::Adaptive, true));
    for len in 0..bytes.len() {
        assert!(
            decode_stream(&bytes[..len]).is_err(),
            "prefix of {len}/{} bytes decoded instead of erroring",
            bytes.len()
        );
        assert!(
            run_restart_streamed(&mut &bytes[..len], &RestartConfig::default()).is_err(),
            "streamed restart accepted a {len}-byte prefix"
        );
    }
}

#[test]
fn forged_codec_tags_are_rejected_on_every_decode_path() {
    let data = mixed_workload(512, 4);
    let honest = stream(&data, &config(PolicyKind::Heuristic, true));
    let env = Envelope::parse(&honest).expect("valid envelope");
    let idx = env.index(&honest).expect("valid index");
    let frames: Vec<Vec<u8>> =
        idx.entries.iter().map(|e| honest[e.off..e.off + e.len].to_vec()).collect();
    let frame_refs: Vec<&[u8]> = frames.iter().map(Vec::as_slice).collect();
    let params = env.params().expect("LCS1 params").to_vec();
    let tags = env.codec_tags().expect("well-formed").expect("tagged").to_vec();
    assert!(
        tags.contains(&1) && tags.contains(&2),
        "workload failed to mix codecs: tags {tags:?}"
    );
    let rebuild = |t: &[u8]| {
        EnvelopeBuilder::new(env.container).params(&params).codec_tags(t).build(&frame_refs)
    };

    // The honest rebuild decodes — the forgeries differ only in the tags.
    decode_stream(&rebuild(&tags)).expect("honest rebuild decodes");

    let mut unknown = tags.clone();
    unknown[0] = 9;
    let swapped: Vec<u8> =
        tags.iter().map(|&t| match t { 1 => 2, 2 => 1, other => other }).collect();
    let short = &tags[..tags.len() - 1];
    for (label, forged, needle) in [
        ("unknown id", rebuild(&unknown), "unknown codec id"),
        ("swapped tags", rebuild(&swapped), "codec tag mismatch"),
        ("short tag list", rebuild(short), "wire envelope"),
    ] {
        let err = decode_stream(&forged).expect_err(label);
        assert!(err.to_string().contains(needle), "{label}: wrong error {err}");
        let err = run_restart_streamed(&mut &forged[..], &RestartConfig::default())
            .expect_err(label);
        assert!(
            err.to_string().contains(needle) || err.to_string().contains("codec tag"),
            "{label} (streamed): wrong error {err}"
        );
    }
}

#[test]
fn fixed_policy_wire_output_is_tagless_and_byte_stable() {
    // The fixed policy must keep emitting exactly the pre-policy format:
    // no codec-tag field, and byte-identical output whether the policy
    // enum or the legacy default constructed the config.
    let data = mixed_workload(512, 4);
    let implicit = stream(
        &data,
        &PipelineConfig { chunk_elements: 512, wire_format: true, ..PipelineConfig::default() },
    );
    let explicit = stream(&data, &config(PolicyKind::Fixed, true));
    assert_eq!(implicit, explicit);
    let env = Envelope::parse(&explicit).expect("valid envelope");
    assert_eq!(env.codec_tags().expect("well-formed"), None, "fixed output must carry no tags");
}
