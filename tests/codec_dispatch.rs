//! Enforces the codec-abstraction boundary: outside the backend crates and
//! their adapters, nothing may call `sz::compress*` / `zfp::compress*`
//! directly — all compression dispatches through `lcpio_codec::registry()`.
//! Also pins the README's supported-container table to the registry.

use std::fs;
use std::path::{Path, PathBuf};

/// Directories whose sources are *allowed* to name the backends: the
/// backends themselves, the adapter crate, and the vendored shims.
const ALLOWED_DIRS: &[&str] = &["crates/sz", "crates/zfp", "crates/codec", "crates/shims"];

/// Files exempt from the rule, each for a documented reason:
/// - `ablation_sz_predictor.rs` / `ablation_zfp_modes.rs`: ablations that
///   deliberately drive backend-internal knobs the trait does not expose.
/// - `ext_registry_dispatch.rs`: the bench that *measures* direct-vs-registry
///   dispatch needs both paths by definition.
/// - `ext_sz_kernels.rs`: kernel A/B bench that flips the backend-internal
///   SIMD dispatch switch and predictor/lossless knobs the trait hides.
/// - this file, which spells the forbidden patterns out in `concat!` pieces
///   but is excluded by name for robustness.
const EXEMPT_FILES: &[&str] = &[
    "ablation_sz_predictor.rs",
    "ablation_zfp_modes.rs",
    "ext_registry_dispatch.rs",
    "ext_sz_kernels.rs",
    "codec_dispatch.rs",
];

fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable dir") {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        let rel = path.strip_prefix(root).expect("under root");
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if path.is_dir() {
            if rel_str == "target" || rel_str.starts_with('.') {
                continue;
            }
            if ALLOWED_DIRS.iter().any(|d| rel_str == *d) {
                continue;
            }
            collect_rs_files(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let name = path.file_name().expect("file name").to_string_lossy();
            if EXEMPT_FILES.iter().any(|f| *f == name) {
                continue;
            }
            out.push(path);
        }
    }
}

/// True if `line` contains `needle` at a position not preceded by "de"
/// (so "decompress..." never trips a "compress..." pattern).
fn contains_not_decompress(line: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(needle) {
        let abs = start + pos;
        if abs < 2 || &line[abs - 2..abs] != "de" {
            return true;
        }
        start = abs + 1;
    }
    false
}

#[test]
fn no_direct_backend_compress_calls_outside_adapters() {
    // Built from pieces so this file can never match its own patterns.
    let direct_calls = [
        concat!("sz:", ":compress"),  // also catches lcpio_sz::compress*
        concat!("zfp:", ":compress"), // also catches lcpio_zfp::compress*
        concat!(":", ":compress_pointwise_rel"),
    ];
    let backend_crates =
        [concat!("lcpio", "_sz"), concat!("lcpio", "_zfp"), "lcpio::sz", "lcpio::zfp"];

    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    collect_rs_files(&root, &root, &mut files);
    assert!(
        files.len() > 20,
        "walker found only {} files — broken exclusion logic?",
        files.len()
    );

    let mut violations = Vec::new();
    for path in &files {
        let src = fs::read_to_string(path).expect("readable source");
        let rel = path.strip_prefix(&root).expect("under root").display();
        for (lineno, line) in src.lines().enumerate() {
            for pat in &direct_calls {
                if contains_not_decompress(line, pat) {
                    violations.push(format!("{rel}:{}: `{}`", lineno + 1, line.trim()));
                }
            }
            // Importing a backend compress function under a bare name would
            // dodge the path patterns above — forbid that too.
            let trimmed = line.trim_start();
            if trimmed.starts_with("use ")
                && backend_crates.iter().any(|c| trimmed.contains(c))
                && contains_not_decompress(trimmed, "compress")
            {
                violations.push(format!("{rel}:{}: `{}`", lineno + 1, line.trim()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "direct backend compress calls outside crates/{{sz,zfp,codec,shims}} — \
         route these through lcpio_codec::registry():\n{}",
        violations.join("\n")
    );
}

#[test]
fn readme_container_table_matches_registry() {
    let readme = fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("README.md"),
    )
    .expect("README.md");
    let table = lcpio::codec::render_container_table();
    assert!(
        readme.contains(&table),
        "README.md's supported-container table is out of sync with \
         CodecRegistry::list(); paste this verbatim:\n{table}"
    );
}
