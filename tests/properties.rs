//! Property-based integration tests over the public API: compressor
//! error-bound guarantees on arbitrary inputs, and energy-model invariants
//! over arbitrary work profiles and frequencies.

use lcpio::codec::{registry, BoundSpec, Codec};
use lcpio::powersim::{simulate, Chip, Machine, WorkProfile};
use lcpio::sz;
use proptest::prelude::*;

fn sz_codec() -> &'static dyn Codec {
    registry().by_name("sz").expect("sz is registered")
}

fn finite_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        8 => -1e6f32..1e6,
        1 => -1e-3f32..1e-3,
        1 => Just(0.0f32),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sz_error_bound_holds_for_arbitrary_1d_data(
        data in proptest::collection::vec(finite_f32(), 1..512),
        eb_exp in -5i32..0,
    ) {
        let eb = 10f64.powi(eb_exp);
        let out = sz_codec().compress(&data, &[data.len()], BoundSpec::Absolute(eb)).unwrap();
        let (rec, _) = registry().decompress_auto(&out.bytes, 1).unwrap();
        for (a, b) in data.iter().zip(&rec) {
            prop_assert!((*a as f64 - *b as f64).abs() <= eb * 1.001 + 1e-12);
        }
    }

    #[test]
    fn sz_error_bound_holds_for_arbitrary_2d_data(
        ny in 1usize..24,
        nx in 1usize..24,
        seed in any::<u64>(),
        eb_exp in -4i32..-1,
    ) {
        let eb = 10f64.powi(eb_exp);
        let mut state = seed | 1;
        let data: Vec<f32> = (0..ny * nx)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / 1e4).sin() * 50.0
            })
            .collect();
        let out = sz_codec().compress(&data, &[ny, nx], BoundSpec::Absolute(eb)).unwrap();
        let (rec, dims) = registry().decompress_auto(&out.bytes, 1).unwrap();
        prop_assert_eq!(dims, vec![ny, nx]);
        for (a, b) in data.iter().zip(&rec) {
            prop_assert!((*a as f64 - *b as f64).abs() <= eb * 1.001 + 1e-12);
        }
    }

    #[test]
    fn sz_chunked_bound_holds_and_values_are_thread_count_invariant(
        nz in 1usize..30,
        ny in 1usize..12,
        nx in 1usize..12,
        seed in any::<u64>(),
        eb_exp in -4i32..-1,
    ) {
        let eb = 10f64.powi(eb_exp);
        let mut state = seed | 1;
        let data: Vec<f32> = (0..nz * ny * nx)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / 1e4).sin() * 50.0
            })
            .collect();
        let mut prev: Option<(Vec<u8>, Vec<f32>)> = None;
        for threads in [1usize, 2, 4] {
            let out = sz_codec()
                .compress_chunked(&data, &[nz, ny, nx], BoundSpec::Absolute(eb), threads)
                .unwrap();
            let (rec, dims) = registry().decompress_auto(&out.bytes, threads).unwrap();
            prop_assert_eq!(dims, vec![nz, ny, nx]);
            for (a, b) in data.iter().zip(&rec) {
                prop_assert!((*a as f64 - *b as f64).abs() <= eb * 1.001 + 1e-12);
            }
            if let Some((pb, pr)) = &prev {
                // Container bytes and reconstructed values must not depend
                // on the worker count.
                prop_assert_eq!(pb, &out.bytes);
                prop_assert_eq!(pr, &rec);
            }
            prev = Some((out.bytes, rec));
        }
    }

    #[test]
    fn sz_chunked_decode_is_bit_identical_to_per_chunk_serial(
        nz in 7usize..40,
        nx in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let data: Vec<f32> = (0..nz * nx)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / 1e4).sin() * 50.0
            })
            .collect();
        let out = sz_codec()
            .compress_chunked(&data, &[nz, nx], BoundSpec::Absolute(1e-3), 2)
            .unwrap();
        let (rec, _) = registry().decompress_auto(&out.bytes, 2).unwrap();
        // Each embedded chunk is a complete serial SZ container, so the
        // registry can sniff and decode it standalone.
        let info = sz::parallel::parse_chunked(&out.bytes).unwrap();
        let mut serial: Vec<f32> = Vec::new();
        for &(_, _, chunk) in &info.chunks {
            let (vals, _) = registry().decompress_auto(chunk, 1).unwrap();
            serial.extend_from_slice(&vals);
        }
        prop_assert_eq!(rec, serial);
    }

    #[test]
    fn zfp_error_bound_holds_for_arbitrary_3d_data(
        nz in 1usize..10,
        ny in 1usize..10,
        nx in 1usize..10,
        seed in any::<u32>(),
        eb_exp in -4i32..0,
    ) {
        let eb = 10f64.powi(eb_exp);
        let data: Vec<f32> = (0..nz * ny * nx)
            .map(|i| (((i as u32).wrapping_mul(seed | 1) >> 16) as f32 / 655.36).sin())
            .collect();
        let out = registry()
            .by_name("zfp")
            .expect("zfp is registered")
            .compress(&data, &[nz, ny, nx], BoundSpec::Absolute(eb))
            .unwrap();
        let (rec, _) = registry().decompress_auto(&out.bytes, 1).unwrap();
        for (a, b) in data.iter().zip(&rec) {
            prop_assert!((*a as f64 - *b as f64).abs() <= eb, "{a} vs {b} (eb {eb})");
        }
    }

    #[test]
    fn energy_model_invariants(
        cycles in 1e6f64..1e12,
        mem in 0f64..1e11,
        io in 0f64..1e11,
        f_lo in 0.8f64..1.4,
        df in 0.05f64..0.8,
    ) {
        for chip in Chip::ALL {
            let m = Machine::for_chip(chip);
            let p = WorkProfile { compute_cycles: cycles, memory_bytes: mem, io_bytes: io, ..Default::default() };
            let f_hi = (f_lo + df).min(m.cpu.f_max_ghz);
            let lo = simulate(&m, m.cpu.snap(f_lo), &p);
            let hi = simulate(&m, m.cpu.snap(f_hi), &p);
            // Higher frequency: never slower, never lower average power.
            prop_assert!(hi.runtime_s <= lo.runtime_s + 1e-12);
            prop_assert!(hi.avg_power_w >= lo.avg_power_w - 1e-9);
            // Energy, runtime, power are positive and consistent.
            prop_assert!(lo.energy_j > 0.0 && hi.energy_j > 0.0);
            prop_assert!((lo.energy_j - lo.avg_power_w * lo.runtime_s).abs() < 1e-6 * lo.energy_j.max(1.0));
        }
    }

    #[test]
    fn work_profile_scaling_scales_energy_linearly(
        cycles in 1e6f64..1e11,
        mem in 1e6f64..1e10,
        k in 1.0f64..100.0,
    ) {
        let m = Machine::for_chip(Chip::Broadwell);
        let p = WorkProfile { compute_cycles: cycles, memory_bytes: mem, ..Default::default() };
        let one = simulate(&m, 1.5, &p);
        let big = simulate(&m, 1.5, &p.scaled(k));
        prop_assert!((big.energy_j / one.energy_j - k).abs() < 1e-6 * k);
        prop_assert!((big.runtime_s / one.runtime_s - k).abs() < 1e-6 * k);
    }
}
