//! Forward-compatibility contract of the `LCW1` wire envelope, exercised
//! through the product decode surfaces (registry auto-decompress and the
//! core streaming-container decoder):
//!
//! - unknown TLV fields are skipped, not fatal;
//! - a higher *minor* version decodes (new minors only add fields);
//! - a higher *major* version fails with a typed version error.

use lcpio::codec::{registry, BoundSpec, CodecError};
use lcpio::wire::{tag, Envelope, EnvelopeBuilder, WireError, VERSION_MAJOR, VERSION_MINOR};

fn field() -> Vec<f32> {
    (0..2048).map(|i| (i as f32 * 0.01).sin() * 10.0).collect()
}

/// A wire-wrapped chunked SZ stream (the container with the richest TLV
/// set: element type, dims, and chunk table).
fn wired_szlp() -> Vec<u8> {
    let stream = registry()
        .by_name("sz")
        .expect("registered")
        .compress_chunked(&field(), &[32, 64], BoundSpec::Absolute(1e-3), 2)
        .expect("compress")
        .bytes;
    lcpio::codec::wire::wrap(&stream).expect("wrap")
}

/// Re-serialize `stream`'s envelope through `mutate`, keeping every frame
/// payload byte-for-byte. The builder re-emits container and frame-count
/// itself, so those tags are not copied from the parsed field list.
fn rebuild(stream: &[u8], mutate: impl FnOnce(EnvelopeBuilder) -> EnvelopeBuilder) -> Vec<u8> {
    let env = Envelope::parse(stream).expect("parse");
    let idx = env.index(stream).expect("index");
    let mut b = EnvelopeBuilder::new(env.container).major(env.major).minor(env.minor);
    for f in &env.fields {
        if f.tag != tag::CONTAINER && f.tag != tag::FRAME_COUNT {
            b = b.raw_field(f.tag, f.value.to_vec());
        }
    }
    let frames: Vec<&[u8]> = idx.entries.iter().map(|e| &stream[e.off..e.off + e.len]).collect();
    mutate(b).build(&frames)
}

#[test]
fn unknown_tlv_field_is_skipped_on_decode() {
    let wired = wired_szlp();
    let (reference, ref_dims) = registry().decompress_auto(&wired, 1).expect("decode");
    // A tag no current decoder knows, carrying arbitrary bytes.
    let modified = rebuild(&wired, |b| b.raw_field(0x7F, vec![0xDE, 0xAD, 0xBE, 0xEF]));
    assert_ne!(wired, modified);
    let (vals, dims) = registry().decompress_auto(&modified, 1).expect("unknown TLV must decode");
    assert_eq!(dims, ref_dims);
    assert_eq!(
        vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
}

#[test]
fn higher_minor_version_decodes_and_round_trips() {
    let wired = wired_szlp();
    let (reference, _) = registry().decompress_auto(&wired, 1).expect("decode");
    let modified =
        rebuild(&wired, |b| b.minor(VERSION_MINOR + 9).raw_field(0x60, vec![1, 2, 3]));
    let env = Envelope::parse(&modified).expect("parse");
    assert_eq!(env.minor, VERSION_MINOR + 9);
    let (vals, _) = registry().decompress_auto(&modified, 1).expect("higher minor must decode");
    assert_eq!(vals.len(), reference.len());
    // Round-trip: a decoder-side rebuild of the same envelope at the
    // current minor still carries identical payloads.
    let back = rebuild(&modified, |b| b.minor(VERSION_MINOR));
    let (vals2, _) = registry().decompress_auto(&back, 1).expect("decode rebuilt");
    assert_eq!(
        vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        vals2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
}

#[test]
fn higher_major_version_is_a_typed_error() {
    let wired = wired_szlp();
    let modified = rebuild(&wired, |b| b.major(VERSION_MAJOR + 1));
    let err = registry().decompress_auto(&modified, 1).expect_err("major bump must fail");
    match err {
        CodecError::Wire(WireError::UnsupportedMajor { have, supported }) => {
            assert_eq!(have, VERSION_MAJOR + 1);
            assert_eq!(supported, VERSION_MAJOR);
        }
        other => panic!("expected UnsupportedMajor, got {other:?}"),
    }
}

#[test]
fn core_stream_honors_the_same_compat_rules() {
    // The streaming-pipeline container rides the same envelope, so the
    // compat rules hold through `decode_stream` too.
    let data = field();
    let cfg = lcpio::core::pipeline::PipelineConfig {
        chunk_elements: 512,
        wire_format: true,
        ..lcpio::core::pipeline::PipelineConfig::default()
    };
    let mut sink = lcpio::core::pipeline::VecSink::default();
    lcpio::core::pipeline::run_sequential(&data, &cfg, &mut sink).expect("pipeline");
    let reference = lcpio::core::pipeline::decode_stream(&sink.bytes).expect("decode");

    let with_unknown =
        rebuild(&sink.bytes, |b| b.minor(VERSION_MINOR + 1).raw_field(0x44, vec![9; 16]));
    let vals =
        lcpio::core::pipeline::decode_stream(&with_unknown).expect("compat stream must decode");
    assert_eq!(
        vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );

    let major_bump = rebuild(&sink.bytes, |b| b.major(VERSION_MAJOR + 1));
    let err = lcpio::core::pipeline::decode_stream(&major_bump).expect_err("major bump");
    assert!(err.to_string().contains("major version"), "{err}");
}
