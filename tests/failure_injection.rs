//! Failure injection: corrupted, truncated, and bit-flipped streams must
//! never panic, loop, or allocate unboundedly — they must either decode to
//! *something* or return a structured error.

use lcpio::codec::{registry, BoundSpec};
use lcpio::{sz, zfp};
use proptest::prelude::*;

// Fixture streams come from the registry (the product's only compression
// entry point); the corruption fuzzing below still hits the *backend*
// decoders directly so magic-byte mutations cannot short-circuit into the
// registry's unknown-magic error and mask a deep-path panic.

fn fixture(name: &str, bound: BoundSpec, threads: usize) -> Vec<u8> {
    let data: Vec<f32> = (0..2048).map(|i| (i as f32 * 0.01).sin() * 10.0).collect();
    let codec = registry().by_name(name).expect("registered");
    if threads > 1 {
        codec.compress_chunked(&data, &[32, 64], bound, threads).expect("compress").bytes
    } else {
        codec.compress(&data, &[32, 64], bound).expect("compress").bytes
    }
}

fn sz_stream() -> Vec<u8> {
    fixture("sz", BoundSpec::Absolute(1e-3), 1)
}

fn sz_chunked_stream() -> Vec<u8> {
    fixture("sz", BoundSpec::Absolute(1e-3), 2)
}

fn sz_pwrel_stream() -> Vec<u8> {
    fixture("sz", BoundSpec::PointwiseRelative(1e-3), 1)
}

fn zfp_stream() -> Vec<u8> {
    fixture("zfp", BoundSpec::Absolute(1e-3), 1)
}

fn zfp_chunked_stream() -> Vec<u8> {
    fixture("zfp", BoundSpec::Absolute(1e-3), 2)
}

/// An `LCS1` streaming-pipeline container, legacy or `LCW1`-framed.
fn lcs_stream(wire: bool) -> Vec<u8> {
    let data: Vec<f32> = (0..2048).map(|i| (i as f32 * 0.01).sin() * 10.0).collect();
    let cfg = lcpio::core::pipeline::PipelineConfig {
        chunk_elements: 512,
        wire_format: wire,
        ..lcpio::core::pipeline::PipelineConfig::default()
    };
    let mut sink = lcpio::core::pipeline::VecSink::default();
    lcpio::core::pipeline::run_sequential(&data, &cfg, &mut sink).expect("pipeline");
    sink.bytes
}

/// How a container must behave when cut mid-stream.
enum Truncation {
    /// Every strict prefix is invalid (lengths are cross-checked against
    /// the bytes present), so every cut must yield a typed error.
    Strict,
    /// The payload is self-terminating, so a cut past the terminator can
    /// still decode; the only requirement is "no panic, no hang".
    Lenient,
}

/// Shared cut-at-every-offset harness: decode every strict prefix of
/// `stream` and check the container's truncation contract.
fn assert_survives_every_truncation<T, E: std::fmt::Debug>(
    label: &str,
    stream: &[u8],
    mode: Truncation,
    decode: impl Fn(&[u8]) -> Result<T, E>,
) {
    for len in 0..stream.len() {
        let res = decode(&stream[..len]);
        if matches!(mode, Truncation::Strict) {
            assert!(
                res.is_err(),
                "{label}: prefix of {len}/{} bytes decoded instead of erroring",
                stream.len()
            );
        }
        // In both modes, reaching the next iteration means no panic.
        drop(res);
    }
}

#[test]
fn sz_survives_every_truncation_length() {
    // Any prefix must fail cleanly (or, for lengths past the payload
    // terminator, decode) — never panic.
    assert_survives_every_truncation("SZL1", &sz_stream(), Truncation::Lenient, |s| {
        sz::decompress(s)
    });
}

#[test]
fn sz_chunked_survives_every_truncation_length() {
    // A strict prefix can never be a valid container (the chunk table and
    // payload lengths must line up exactly).
    assert_survives_every_truncation("SZLP", &sz_chunked_stream(), Truncation::Strict, |s| {
        sz::decompress_chunked::<f32>(s, 1)
    });
}

#[test]
fn sz_pwrel_survives_every_truncation_length() {
    // The header, sign-bitmap section, and inner SZ stream are all
    // length-prefixed, so any strict prefix must fail cleanly.
    assert_survives_every_truncation("SZPR", &sz_pwrel_stream(), Truncation::Strict, |s| {
        sz::decompress_pointwise_rel::<f32>(s)
    });
}

#[test]
fn zfp_survives_every_truncation_length() {
    assert_survives_every_truncation("ZFL1", &zfp_stream(), Truncation::Lenient, |s| {
        zfp::decompress(s)
    });
}

#[test]
fn zfp_chunked_survives_every_truncation_length() {
    // A strict prefix loses payload bytes the chunk table promises.
    assert_survives_every_truncation("ZFLP", &zfp_chunked_stream(), Truncation::Strict, |s| {
        zfp::decompress_chunked::<f32>(s, 1)
    });
}

#[test]
fn lcs_stream_survives_every_truncation_length() {
    // The streaming container records its element count up front, so a
    // header-only prefix (missing frames) is as invalid as a mid-frame cut.
    assert_survives_every_truncation("LCS1", &lcs_stream(false), Truncation::Strict, |s| {
        lcpio::core::pipeline::decode_stream(s)
    });
}

#[test]
fn wire_lcs_stream_survives_every_truncation_length() {
    assert_survives_every_truncation("LCW1/LCS1", &lcs_stream(true), Truncation::Strict, |s| {
        lcpio::core::pipeline::decode_stream(s)
    });
}

#[test]
fn wire_wrapped_codec_containers_survive_every_truncation_length() {
    // Every legacy codec container re-framed as an LCW1 envelope: the
    // envelope's validated frame index must catch every cut, through the
    // product decode surface (`decompress_auto`).
    for (label, legacy) in [
        ("LCW1/SZL1", sz_stream()),
        ("LCW1/SZLP", sz_chunked_stream()),
        ("LCW1/SZPR", sz_pwrel_stream()),
        ("LCW1/ZFL1", zfp_stream()),
        ("LCW1/ZFLP", zfp_chunked_stream()),
    ] {
        let wired = lcpio::codec::wire::wrap(&legacy).expect("wrap");
        assert_survives_every_truncation(label, &wired, Truncation::Strict, |s| {
            registry().decompress_auto(s, 1)
        });
    }
}

#[test]
fn sz_survives_single_byte_corruption_everywhere() {
    let stream = sz_stream();
    for pos in 0..stream.len() {
        let mut s = stream.clone();
        s[pos] ^= 0xFF;
        let _ = sz::decompress(&s); // must not panic
    }
}

#[test]
fn sz_chunked_survives_single_byte_corruption_everywhere() {
    let stream = sz_chunked_stream();
    for pos in 0..stream.len() {
        let mut s = stream.clone();
        s[pos] ^= 0xFF;
        let _ = sz::decompress_chunked::<f32>(&s, 2); // must not panic
    }
}

#[test]
fn sz_pwrel_survives_single_byte_corruption_everywhere() {
    let stream = sz_pwrel_stream();
    for pos in 0..stream.len() {
        let mut s = stream.clone();
        s[pos] ^= 0xFF;
        let _ = sz::decompress_pointwise_rel::<f32>(&s); // must not panic
    }
}

#[test]
fn sz_pwrel_survives_corrupted_sign_bitmap() {
    // The sign bitmap starts right after the 13-byte header and the 8-byte
    // section length prefix. Flipping bits there flips signs in the output
    // (or trips a length check) but must never panic.
    let stream = sz_pwrel_stream();
    let bitmap_start = 21;
    assert!(stream.len() > bitmap_start + 8, "stream too short for the test");
    for pos in bitmap_start..(bitmap_start + 8) {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut s = stream.clone();
            s[pos] ^= mask;
            let _ = sz::decompress_pointwise_rel::<f32>(&s); // must not panic
        }
    }
}

#[test]
fn sz_pwrel_rejects_forged_magic_and_type_tag() {
    let stream = sz_pwrel_stream();

    // Wrong magic: every other container magic in the workspace must be
    // refused, not misinterpreted.
    for magic in [b"SZL1", b"SZLP", b"ZFLP", b"XXXX"] {
        let mut s = stream.clone();
        s[..4].copy_from_slice(magic);
        assert!(sz::decompress_pointwise_rel::<f32>(&s).is_err());
    }

    // An f32 payload presented with a forged f64 type tag (and vice versa)
    // must be a type mismatch, never a reinterpretation.
    let mut s = stream.clone();
    s[4] ^= 0xFF;
    assert!(sz::decompress_pointwise_rel::<f32>(&s).is_err());
    assert!(sz::decompress_pointwise_rel::<f64>(&stream).is_err());
}

#[test]
fn zfp_survives_single_byte_corruption_everywhere() {
    let stream = zfp_stream();
    for pos in 0..stream.len() {
        let mut s = stream.clone();
        s[pos] ^= 0xA5;
        let _ = zfp::decompress(&s);
    }
}

#[test]
fn zfp_chunked_survives_single_byte_corruption_everywhere() {
    let stream = zfp_chunked_stream();
    for pos in 0..stream.len() {
        let mut s = stream.clone();
        s[pos] ^= 0xA5;
        let _ = zfp::decompress_chunked::<f32>(&s, 2); // must not panic
    }
}

#[test]
fn zfp_chunked_oversized_dims_rejected_without_allocating() {
    // Forge a container whose header claims a gigantic array backed by a
    // tiny payload: the decoder must reject it up front instead of
    // allocating the claimed output size.
    let mut s = Vec::new();
    s.extend_from_slice(b"ZFLP");
    s.push(0); // f32 tag
    s.push(3); // rank
    for d in [1u64 << 20, 1 << 20, 1 << 20] {
        s.extend_from_slice(&d.to_le_bytes());
    }
    s.extend_from_slice(&1u32.to_le_bytes()); // one chunk
    s.extend_from_slice(&0u64.to_le_bytes()); // a = 0
    s.extend_from_slice(&(1u64 << 20).to_le_bytes()); // b = full extent
    s.extend_from_slice(&8u64.to_le_bytes()); // 8 payload bytes
    s.extend_from_slice(&[0u8; 8]);
    assert!(zfp::decompress_chunked::<f32>(&s, 1).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn registry_decompress_auto_never_panics_on_noise(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048)
    ) {
        // The product decode surface: arbitrary bytes either decode or
        // return a structured error, for f32 and f64 alike.
        let _ = registry().decompress_auto(&bytes, 1);
        let _ = registry().decompress_auto_f64(&bytes, 1);
    }

    #[test]
    fn sz_decompress_never_panics_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = sz::decompress(&bytes);
    }

    #[test]
    fn zfp_decompress_never_panics_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = zfp::decompress(&bytes);
    }

    #[test]
    fn sz_chunked_decompress_never_panics_on_noise(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048)
    ) {
        let mut s = b"SZLP".to_vec();
        s.extend_from_slice(&bytes);
        let _ = sz::decompress_chunked::<f32>(&s, 1);
    }

    #[test]
    fn sz_chunked_decompress_never_panics_on_mutated_valid_stream(
        flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8)
    ) {
        let mut s = sz_chunked_stream();
        for (pos, mask) in flips {
            let idx = pos as usize % s.len();
            s[idx] ^= mask;
        }
        let _ = sz::decompress_chunked::<f32>(&s, 2);
    }

    #[test]
    fn sz_decompress_never_panics_on_mutated_valid_stream(
        flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8)
    ) {
        let mut s = sz_stream();
        for (pos, mask) in flips {
            let idx = pos as usize % s.len();
            s[idx] ^= mask;
        }
        let _ = sz::decompress(&s);
    }

    #[test]
    fn zfp_decompress_never_panics_on_mutated_valid_stream(
        flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8)
    ) {
        let mut s = zfp_stream();
        for (pos, mask) in flips {
            let idx = pos as usize % s.len();
            s[idx] ^= mask;
        }
        let _ = zfp::decompress(&s);
    }

    #[test]
    fn sz_pwrel_decompress_never_panics_on_noise(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048)
    ) {
        let mut s = b"SZPR".to_vec();
        s.extend_from_slice(&bytes);
        let _ = sz::decompress_pointwise_rel::<f32>(&s);
    }

    #[test]
    fn sz_pwrel_decompress_never_panics_on_mutated_valid_stream(
        flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8)
    ) {
        let mut s = sz_pwrel_stream();
        for (pos, mask) in flips {
            let idx = pos as usize % s.len();
            s[idx] ^= mask;
        }
        let _ = sz::decompress_pointwise_rel::<f32>(&s);
    }

    #[test]
    fn wire_envelope_never_panics_on_noise(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048)
    ) {
        // Arbitrary bytes behind the LCW1 magic: both the registry surface
        // and the streaming-container decoder must error, never panic.
        let mut s = b"LCW1".to_vec();
        s.extend_from_slice(&bytes);
        let _ = registry().decompress_auto(&s, 1);
        let _ = lcpio::core::pipeline::decode_stream(&s);
    }

    #[test]
    fn wire_envelope_never_panics_on_mutated_valid_stream(
        flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8)
    ) {
        let mut s = lcpio::codec::wire::wrap(&sz_chunked_stream()).expect("wrap");
        for (pos, mask) in flips {
            let idx = pos as usize % s.len();
            s[idx] ^= mask;
        }
        let _ = registry().decompress_auto(&s, 1);
    }

    #[test]
    fn zfp_chunked_decompress_never_panics_on_noise(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048)
    ) {
        let mut s = b"ZFLP".to_vec();
        s.extend_from_slice(&bytes);
        let _ = zfp::decompress_chunked::<f32>(&s, 1);
    }

    #[test]
    fn zfp_chunked_decompress_never_panics_on_mutated_valid_stream(
        flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8)
    ) {
        let mut s = zfp_chunked_stream();
        for (pos, mask) in flips {
            let idx = pos as usize % s.len();
            s[idx] ^= mask;
        }
        let _ = zfp::decompress_chunked::<f32>(&s, 2);
    }
}
