#![warn(missing_docs)]
//! # lcpio-trace — stage-level observability for the compressed-I/O pipeline
//!
//! The paper attributes energy and runtime to pipeline *phases*
//! (compression vs. data writing, §V–VI); this crate gives the
//! reproduction the matching instrument: named **spans** (wall-time
//! aggregates with count/min/max) and monotonic **counters**, collected
//! into a process-global registry and exported as a machine-readable JSON
//! report.
//!
//! Two build configurations, selected by the `enabled` cargo feature:
//!
//! * **disabled** (default) — every entry point is an inline no-op; the
//!   span guard and stopwatch are zero-sized, so the optimizer erases the
//!   instrumentation entirely. Codec hot paths pay nothing.
//! * **enabled** — spans and counters aggregate under a global mutex.
//!   Callers keep the cost negligible by instrumenting at *stage*
//!   granularity (one span per pipeline stage or chunk, one counter add
//!   per compression call) and by batching per-block timings through
//!   [`Stopwatch`], which accumulates locally and commits once.
//!
//! Naming convention: dotted lowercase paths, `<crate>.<stage>[.<detail>]`
//! — e.g. `sz.huffman`, `zfp.coder`, `powersim.energy.compute_uj`.
//! Energies are recorded in microjoules (`_uj`), times in nanoseconds
//! (`_ns` inside span stats), sizes in bytes.
//!
//! ```
//! let _guard = lcpio_trace::span("doc.example");
//! lcpio_trace::counter_add("doc.bytes_in", 4096);
//! let report = lcpio_trace::snapshot();
//! // With the `enabled` feature the report carries the span + counter;
//! // without it the report is empty — either way this compiles and runs.
//! let json = report.to_json();
//! assert!(json.contains("spans"));
//! ```

use std::collections::BTreeMap;

/// Aggregated wall-time statistics for one named span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of times the span was entered.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u64,
    /// Shortest single entry (ns).
    pub min_ns: u64,
    /// Longest single entry (ns).
    pub max_ns: u64,
}

impl SpanStat {
    /// Fold one observed duration into the aggregate.
    pub fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
    }

    /// Merge another aggregate into this one.
    pub fn merge(&mut self, other: &SpanStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Longest/shortest entry ratio — the chunk-imbalance figure of merit.
    /// Returns 1.0 for empty or zero-minimum aggregates.
    pub fn imbalance(&self) -> f64 {
        if self.count == 0 || self.min_ns == 0 {
            1.0
        } else {
            self.max_ns as f64 / self.min_ns as f64
        }
    }
}

/// A point-in-time copy of the global registry: every span aggregate and
/// counter value, sorted by name for deterministic output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Span aggregates keyed by span name.
    pub spans: BTreeMap<String, SpanStat>,
    /// Counter values keyed by counter name.
    pub counters: BTreeMap<String, u64>,
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Report {
    /// True when nothing was recorded (always the case with the `enabled`
    /// feature off).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty()
    }

    /// Look up a span aggregate by name.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.get(name)
    }

    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Render as a JSON object with `"spans"` and `"counters"` members.
    /// Hand-rolled so the crate stays dependency-free; names are escaped,
    /// output order is the registry's sorted order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"spans\": {");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                json_escape(name),
                s.count,
                s.total_ns,
                s.min_ns,
                s.max_ns
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(name), v));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}");
        out
    }
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{Report, SpanStat};
    use std::collections::BTreeMap;
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    #[derive(Default)]
    struct State {
        spans: BTreeMap<&'static str, SpanStat>,
        counters: BTreeMap<&'static str, u64>,
    }

    fn state() -> &'static Mutex<State> {
        static STATE: OnceLock<Mutex<State>> = OnceLock::new();
        STATE.get_or_init(|| Mutex::new(State::default()))
    }

    /// True — spans and counters are being collected.
    pub fn collecting() -> bool {
        true
    }

    /// RAII guard: measures from construction to drop, then folds the
    /// duration into the global aggregate for `name`.
    #[must_use = "a span records on drop; binding to _ discards it immediately"]
    pub struct Span {
        name: &'static str,
        start: Instant,
    }

    /// Enter a span.
    pub fn span(name: &'static str) -> Span {
        Span { name, start: Instant::now() }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let ns = self.start.elapsed().as_nanos() as u64;
            let mut st = state().lock().expect("trace registry lock");
            st.spans.entry(self.name).or_default().record(ns);
        }
    }

    /// Add to a monotonic counter.
    pub fn counter_add(name: &'static str, v: u64) {
        let mut st = state().lock().expect("trace registry lock");
        *st.counters.entry(name).or_insert(0) += v;
    }

    /// A locally-accumulating stopwatch for per-block loops: `lap` cost is
    /// two `Instant::now()` calls with no locking; the global registry is
    /// touched once, at [`Stopwatch::commit`].
    #[derive(Default)]
    pub struct Stopwatch {
        agg: SpanStat,
    }

    impl Stopwatch {
        /// New stopped stopwatch.
        pub fn new() -> Self {
            Stopwatch { agg: SpanStat::default() }
        }

        /// Time one closure invocation as a single lap.
        #[inline]
        pub fn lap<R>(&mut self, f: impl FnOnce() -> R) -> R {
            let t0 = Instant::now();
            let r = f();
            self.agg.record(t0.elapsed().as_nanos() as u64);
            r
        }

        /// Merge the accumulated laps into the global span `name`.
        pub fn commit(self, name: &'static str) {
            if self.agg.count == 0 {
                return;
            }
            let mut st = state().lock().expect("trace registry lock");
            st.spans.entry(name).or_default().merge(&self.agg);
        }
    }

    /// Copy the registry out.
    pub fn snapshot() -> Report {
        let st = state().lock().expect("trace registry lock");
        Report {
            spans: st.spans.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            counters: st.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    /// Clear every span and counter.
    pub fn reset() {
        let mut st = state().lock().expect("trace registry lock");
        st.spans.clear();
        st.counters.clear();
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::Report;

    /// False — the `enabled` feature is off; nothing is collected.
    #[inline(always)]
    pub fn collecting() -> bool {
        false
    }

    /// Zero-sized no-op span guard.
    ///
    /// The explicit [`Drop`] keeps `drop(span)` call sites — used to end a
    /// span before the enclosing scope — valid under `clippy::drop_non_drop`
    /// in both feature configurations.
    pub struct Span;

    impl Drop for Span {
        #[inline(always)]
        fn drop(&mut self) {}
    }

    /// Enter a span (no-op).
    #[inline(always)]
    pub fn span(_name: &'static str) -> Span {
        Span
    }

    /// Add to a counter (no-op).
    #[inline(always)]
    pub fn counter_add(_name: &'static str, _v: u64) {}

    /// Zero-sized no-op stopwatch.
    #[derive(Default)]
    pub struct Stopwatch;

    impl Stopwatch {
        /// New stopwatch (no-op).
        #[inline(always)]
        pub fn new() -> Self {
            Stopwatch
        }

        /// Run the closure without timing it.
        #[inline(always)]
        pub fn lap<R>(&mut self, f: impl FnOnce() -> R) -> R {
            f()
        }

        /// Discard (no-op).
        #[inline(always)]
        pub fn commit(self, _name: &'static str) {}
    }

    /// Empty report.
    #[inline(always)]
    pub fn snapshot() -> Report {
        Report::default()
    }

    /// No-op.
    #[inline(always)]
    pub fn reset() {}
}

pub use imp::{collecting, counter_add, reset, snapshot, span, Span, Stopwatch};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_stat_record_and_merge() {
        let mut a = SpanStat::default();
        a.record(10);
        a.record(30);
        assert_eq!(a.count, 2);
        assert_eq!(a.total_ns, 40);
        assert_eq!(a.min_ns, 10);
        assert_eq!(a.max_ns, 30);
        let mut b = SpanStat::default();
        b.record(5);
        b.merge(&a);
        assert_eq!(b.count, 3);
        assert_eq!(b.total_ns, 45);
        assert_eq!(b.min_ns, 5);
        assert_eq!(b.max_ns, 30);
        assert_eq!(b.imbalance(), 6.0);
        assert_eq!(SpanStat::default().imbalance(), 1.0);
    }

    #[test]
    fn report_json_is_well_formed() {
        let mut r = Report::default();
        r.spans.insert("sz.huffman".to_string(), SpanStat { count: 2, total_ns: 100, min_ns: 40, max_ns: 60 });
        r.counters.insert("sz.bytes_in".to_string(), 4096);
        let json = r.to_json();
        assert!(json.contains("\"sz.huffman\""));
        assert!(json.contains("\"total_ns\": 100"));
        assert!(json.contains("\"sz.bytes_in\": 4096"));
        // Braces balance.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_report_json() {
        let json = Report::default().to_json();
        assert!(json.contains("\"spans\": {}"));
        assert!(json.contains("\"counters\": {}"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }

    #[test]
    fn api_is_callable_in_both_configurations() {
        reset();
        {
            let _g = span("test.span");
            counter_add("test.counter", 7);
            let mut sw = Stopwatch::new();
            let v = sw.lap(|| 41 + 1);
            assert_eq!(v, 42);
            sw.commit("test.stopwatch");
        }
        let rep = snapshot();
        if collecting() {
            assert_eq!(rep.counter("test.counter"), Some(7));
            assert!(rep.span("test.span").is_some());
            assert!(rep.span("test.stopwatch").is_some());
        } else {
            assert!(rep.is_empty());
        }
    }
}
