//! Blocking client for the compression service.
//!
//! One [`Client`] is one connection. The convenience methods
//! ([`Client::compress`], [`Client::decompress`], [`Client::info`],
//! [`Client::ping`], [`Client::shutdown`]) assign request ids and wrap
//! [`Client::call`], which sends any [`Request`] and blocks for its
//! [`Response`].

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use lcpio_codec::policy::CodecId;
use lcpio_codec::BoundSpec;
use lcpio_core::PolicyKind;

use crate::protocol::{self, Op, ProtoError, Request, Response};
use crate::server::Endpoint;

/// How long a client waits on one response before giving up with an I/O
/// error (a guard against a hung server, not a protocol feature).
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(120);

/// Client-side failure: transport trouble, a frame that does not parse,
/// or a connection the server closed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(io::Error),
    /// The server's bytes do not decode as a response frame.
    Proto(ProtoError),
    /// The server closed the connection before a full response arrived
    /// (for example after a malformed frame, or mid-drain).
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// Compress-request tuning. Every field is optional; `None` leaves the
/// decision to the server's configured defaults (the `lcpio-cli serve`
/// flags).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompressOptions {
    /// Codec to request (`None` ⇒ server default).
    pub codec: Option<CodecId>,
    /// Error bound to request (`None` ⇒ server default).
    pub bound: Option<BoundSpec>,
    /// Chunk policy to request (`None` ⇒ server default).
    pub policy: Option<PolicyKind>,
}

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// One blocking connection to a compression service.
///
/// # Examples
///
/// Boot an in-process server on an ephemeral TCP port, compress a field
/// over the socket, restore it, and drain the server:
///
/// ```
/// use lcpio_serve::{Client, CompressOptions, Endpoint, ServeConfig, Server};
///
/// let server = Server::bind(
///     &Endpoint::Tcp("127.0.0.1:0".to_string()),
///     ServeConfig::default(),
/// ).unwrap();
///
/// let mut client = Client::connect(server.endpoint()).unwrap();
/// let field: Vec<f32> = (0..512).map(|i| (i as f32 * 0.05).sin()).collect();
///
/// let comp = client.compress(&field, &[512], CompressOptions::default()).unwrap();
/// assert!(comp.is_ok());
/// assert!(comp.payload.len() < field.len() * 4); // it actually compressed
///
/// let back = client.decompress(&comp.payload).unwrap();
/// assert_eq!(back.dims, vec![512]);
/// let restored = back.elements().unwrap();
/// assert!(restored.iter().zip(&field).all(|(r, x)| (r - x).abs() <= 1e-3 * 1.001));
///
/// client.shutdown().unwrap();
/// server.wait();
/// ```
pub struct Client {
    stream: Stream,
    buf: Vec<u8>,
    next_id: u64,
}

impl Client {
    /// Connect to either endpoint kind.
    pub fn connect(endpoint: &Endpoint) -> Result<Client, ClientError> {
        match endpoint {
            Endpoint::Unix(path) => Client::connect_unix(path),
            Endpoint::Tcp(addr) => Client::connect_tcp(addr),
        }
    }

    /// Connect to a Unix-domain socket.
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<Client, ClientError> {
        let s = UnixStream::connect(path)?;
        s.set_read_timeout(Some(RESPONSE_TIMEOUT))?;
        Ok(Client::new(Stream::Unix(s)))
    }

    /// Connect to a TCP address (`host:port`).
    pub fn connect_tcp(addr: &str) -> Result<Client, ClientError> {
        let s = TcpStream::connect(addr)?;
        s.set_read_timeout(Some(RESPONSE_TIMEOUT))?;
        Ok(Client::new(Stream::Tcp(s)))
    }

    fn new(stream: Stream) -> Client {
        Client { stream, buf: Vec::new(), next_id: 1 }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Send one request and block for its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.stream.write_all(&request.encode())?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Read the next response frame off the connection (without sending
    /// anything — useful after pipelining requests by hand).
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match protocol::frame_len(&self.buf)? {
                Some(n) if self.buf.len() >= n => {
                    let frame: Vec<u8> = self.buf.drain(..n).collect();
                    let (resp, _) = Response::decode(&frame)?;
                    return Ok(resp);
                }
                _ => {}
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(ClientError::Disconnected),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Compress `data` shaped by `dims` on the server.
    pub fn compress(
        &mut self,
        data: &[f32],
        dims: &[usize],
        opts: CompressOptions,
    ) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        let mut req = Request::compress(
            id,
            data,
            dims,
            opts.codec.unwrap_or(CodecId::Sz),
            opts.bound.unwrap_or(BoundSpec::Absolute(1e-3)),
            opts.policy.unwrap_or(PolicyKind::Fixed),
        );
        // `None` options are omitted from the frame entirely, so the
        // server's defaults (not the placeholder values above) apply.
        req.codec = opts.codec;
        req.bound = opts.bound;
        req.policy = opts.policy;
        self.call(&req)
    }

    /// Decompress a container on the server; the response payload holds
    /// raw little-endian `f32` elements with a `DIMS` field.
    pub fn decompress(&mut self, container: &[u8]) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        self.call(&Request::decompress(id, container))
    }

    /// Describe a container without decoding it.
    pub fn info(&mut self, container: &[u8]) -> Result<Response, ClientError> {
        let id = self.fresh_id();
        self.call(&Request::info(id, container))
    }

    /// Liveness probe. `Ok(true)` means the server answered `OK`.
    pub fn ping(&mut self) -> Result<bool, ClientError> {
        let id = self.fresh_id();
        Ok(self.call(&Request::control(id, Op::Ping))?.is_ok())
    }

    /// Ask the server to drain and exit. Returns once the server has
    /// acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.call(&Request::control(id, Op::Shutdown))?;
        Ok(())
    }
}
