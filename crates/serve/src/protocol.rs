//! The `LCRQ`/`LCRS` request/response framing — the wire surface of
//! `lcpio-serve`, specified normatively in
//! [`PROTOCOL.md`](https://example.invalid/lcpio) at the repo root.
//!
//! Both directions share one frame shape, reusing the LCW1 envelope's
//! building blocks ([`lcpio_wire::varint`] LEB128 integers, `(tag, len,
//! value)` TLV headers, skip-unknown forward compatibility):
//!
//! ```text
//! offset 0   magic            b"LCRQ" (request) / b"LCRS" (response)
//!        4   version major    u8  (peer rejects newer majors)
//!        5   version minor    u8  (peer accepts any minor)
//!        6   header length    varint, bytes of the TLV block
//!        ..  TLV block        sequence of (u8 tag, varint len, value)
//!        ..  payload length   varint
//!        ..  payload          raw bytes
//! ```
//!
//! Requests carry an operation ([`Op`]) plus operation-specific fields;
//! responses carry a [`status`] code plus result metadata. Payloads are
//! the bulk data: raw little-endian `f32` elements on a compress request,
//! a self-describing compressed container (LCW1 or legacy) on a compress
//! response or decompress request.
//!
//! Validation mirrors `lcpio-wire`: every length is checked against a
//! hard ceiling *before* any allocation ([`MAX_HEADER_LEN`],
//! [`MAX_PAYLOAD_LEN`], [`MAX_RANK`]), known TLV tags may appear at most
//! once, unknown tags are skipped, and every failure mode is a distinct
//! [`ProtoError`] variant that maps onto a typed [`status`] code.

use lcpio_codec::policy::CodecId;
use lcpio_codec::BoundSpec;
use lcpio_core::PolicyKind;
use lcpio_wire::varint;

/// Request-frame magic.
pub const REQUEST_MAGIC: [u8; 4] = *b"LCRQ";

/// Response-frame magic.
pub const RESPONSE_MAGIC: [u8; 4] = *b"LCRS";

/// Highest protocol major version this build speaks (and the one it
/// writes). A frame with a newer major fails with
/// [`ProtoError::UnsupportedMajor`].
pub const VERSION_MAJOR: u8 = 1;

/// Minor version written by this build. Peers accept any minor: new
/// minors may only add TLV fields, which old peers skip.
pub const VERSION_MINOR: u8 = 0;

/// Ceiling on the TLV header block in bytes. Real headers are tens of
/// bytes; a forged multi-megabyte claim is rejected before any buffering.
pub const MAX_HEADER_LEN: usize = 1 << 16;

/// Hard ceiling on a frame payload. Servers may configure a lower
/// admission cap (`ServeConfig::max_payload`); this constant bounds what
/// the codec layer will ever buffer for one frame.
pub const MAX_PAYLOAD_LEN: usize = 1 << 30;

/// Ceiling on array rank in the `DIMS` field (mirrors
/// [`lcpio_wire::MAX_RANK`]).
pub const MAX_RANK: usize = lcpio_wire::MAX_RANK;

/// Request operations (the value of the [`reqtag::OP`] field).
pub mod op {
    /// Compress the payload (raw little-endian `f32`s shaped by `DIMS`).
    pub const COMPRESS: u8 = 1;
    /// Decompress the payload (any registry container, LCW1 or legacy).
    pub const DECOMPRESS: u8 = 2;
    /// Describe the payload container without decoding it.
    pub const INFO: u8 = 3;
    /// Liveness probe; empty payload, empty response.
    pub const PING: u8 = 4;
    /// Begin a graceful drain: in-flight requests complete, new requests
    /// are rejected with [`super::status::SHUTTING_DOWN`], then the
    /// server exits.
    pub const SHUTDOWN: u8 = 5;

    /// Every operation with its spec name, in wire order.
    pub const ALL: &[(u8, &str)] = &[
        (COMPRESS, "COMPRESS"),
        (DECOMPRESS, "DECOMPRESS"),
        (INFO, "INFO"),
        (PING, "PING"),
        (SHUTDOWN, "SHUTDOWN"),
    ];
}

/// Request TLV tags. Unknown tags are skipped on decode (forward
/// compatibility); known tags may appear at most once.
pub mod reqtag {
    /// Required. Operation code (1 byte, see [`super::op`]).
    pub const OP: u8 = 0x01;
    /// Optional. Client-chosen request id (varint), echoed in the
    /// response. Defaults to 0.
    pub const REQUEST_ID: u8 = 0x02;
    /// Optional (compress). Requested codec id (1 byte, `1` = SZ, `2` =
    /// ZFP; the codec-tag values of `lcpio-codec`). Absent ⇒ the server's
    /// configured default codec applies.
    pub const CODEC: u8 = 0x03;
    /// Optional (compress). Error bound: 1 mode byte (`0` absolute, `1`
    /// value-range-relative, `2` pointwise-relative) + 8 bytes `f64` LE.
    /// Absent ⇒ the server's configured default bound applies.
    pub const BOUND: u8 = 0x04;
    /// Required for compress. Array dims: varint rank (≤
    /// [`super::MAX_RANK`]), then one varint per extent.
    pub const DIMS: u8 = 0x05;
    /// Optional (compress). Chunk policy (1 byte: `0` fixed, `1`
    /// heuristic, `2` adaptive). Absent ⇒ the server's configured default
    /// policy applies.
    pub const POLICY: u8 = 0x06;

    /// Every request tag with its spec name, in wire order.
    pub const ALL: &[(u8, &str)] = &[
        (OP, "OP"),
        (REQUEST_ID, "REQUEST_ID"),
        (CODEC, "CODEC"),
        (BOUND, "BOUND"),
        (DIMS, "DIMS"),
        (POLICY, "POLICY"),
    ];
}

/// Response TLV tags. Unknown tags are skipped on decode (forward
/// compatibility); known tags may appear at most once.
pub mod resptag {
    /// Required. Status code (1 byte, see [`super::status`]).
    pub const STATUS: u8 = 0x01;
    /// Optional. Echo of the request's `REQUEST_ID` (varint).
    pub const REQUEST_ID: u8 = 0x02;
    /// Optional. Server-side service latency in microseconds (varint),
    /// from dequeue to completion.
    pub const LATENCY_US: u8 = 0x03;
    /// Optional. Modeled compression/decompression energy in microjoules
    /// (varint) at the planned DVFS frequency.
    pub const ENERGY_UJ: u8 = 0x04;
    /// Optional. Human-readable detail (UTF-8): error context, or the
    /// container description on an `INFO` response.
    pub const MESSAGE: u8 = 0x05;
    /// Optional (decompress). Dims of the restored field: varint rank,
    /// then one varint per extent.
    pub const DIMS: u8 = 0x06;
    /// Optional (compress). Codec id actually used after policy planning
    /// (1 byte).
    pub const CODEC: u8 = 0x07;

    /// Every response tag with its spec name, in wire order.
    pub const ALL: &[(u8, &str)] = &[
        (STATUS, "STATUS"),
        (REQUEST_ID, "REQUEST_ID"),
        (LATENCY_US, "LATENCY_US"),
        (ENERGY_UJ, "ENERGY_UJ"),
        (MESSAGE, "MESSAGE"),
        (DIMS, "DIMS"),
        (CODEC, "CODEC"),
    ];
}

/// Response status codes (the value of the [`resptag::STATUS`] field).
pub mod status {
    /// Success.
    pub const OK: u8 = 0;
    /// The request frame is structurally invalid (bad varint, malformed
    /// TLV, duplicate or missing required field).
    pub const MALFORMED: u8 = 1;
    /// The request's major version is newer than this server speaks.
    pub const UNSUPPORTED_VERSION: u8 = 2;
    /// A header/payload length exceeds a hard ceiling or the server's
    /// configured admission cap.
    pub const LIMIT: u8 = 3;
    /// The `OP` field names no operation this server knows.
    pub const UNKNOWN_OP: u8 = 4;
    /// The frame parsed but the request is semantically invalid (dims do
    /// not match the payload, unknown codec/policy/bound ids, ...).
    pub const BAD_REQUEST: u8 = 5;
    /// The codec backend rejected or failed the work (corrupt container,
    /// unsupported bound, ...).
    pub const CODEC: u8 = 6;
    /// Admission control rejected the request: every worker-shard queue
    /// the request could join is full. Retry later.
    pub const BUSY: u8 = 7;
    /// The server is draining; no new work is accepted.
    pub const SHUTTING_DOWN: u8 = 8;

    /// Every status with its spec name, in wire order.
    pub const ALL: &[(u8, &str)] = &[
        (OK, "OK"),
        (MALFORMED, "MALFORMED"),
        (UNSUPPORTED_VERSION, "UNSUPPORTED_VERSION"),
        (LIMIT, "LIMIT"),
        (UNKNOWN_OP, "UNKNOWN_OP"),
        (BAD_REQUEST, "BAD_REQUEST"),
        (CODEC, "CODEC"),
        (BUSY, "BUSY"),
        (SHUTTING_DOWN, "SHUTTING_DOWN"),
    ];

    /// The spec name of a status code (`"?"` for unknown values).
    pub fn name(code: u8) -> &'static str {
        ALL.iter().find(|(c, _)| *c == code).map(|(_, n)| *n).unwrap_or("?")
    }
}

/// Typed protocol decode error. Every failure mode is a distinct variant
/// so the server can map it onto the right [`status`] code (see
/// [`ProtoError::status`]) and tests can tell a cut frame from a forged
/// one from a version skew.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer ends before `section` is complete.
    Truncated {
        /// Frame section the bytes ran out in.
        section: &'static str,
    },
    /// First four bytes are neither `LCRQ` nor `LCRS`.
    BadMagic([u8; 4]),
    /// Frame major version is newer than this peer understands.
    UnsupportedMajor {
        /// Major version in the frame.
        have: u8,
        /// Highest major this build speaks.
        supported: u8,
    },
    /// Structurally invalid data (bad varint, malformed field, ...).
    Malformed {
        /// What was malformed.
        what: &'static str,
    },
    /// A header/payload field exceeds its hard ceiling.
    LimitExceeded {
        /// Which ceiling was hit.
        what: &'static str,
    },
    /// A known TLV tag appeared more than once.
    DuplicateField {
        /// The repeated tag.
        tag: u8,
    },
    /// A required TLV field is missing.
    MissingField {
        /// The absent tag.
        tag: u8,
    },
    /// The request `OP` byte names no known operation.
    UnknownOp(u8),
    /// The frame parsed but its fields are semantically invalid.
    BadRequest {
        /// What was invalid.
        what: &'static str,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated { section } => write!(f, "frame truncated in {section}"),
            ProtoError::BadMagic(m) => {
                write!(f, "not a protocol frame (magic {:?})", String::from_utf8_lossy(m))
            }
            ProtoError::UnsupportedMajor { have, supported } => {
                write!(f, "frame major version {have} is newer than supported {supported}")
            }
            ProtoError::Malformed { what } => write!(f, "malformed frame: {what}"),
            ProtoError::LimitExceeded { what } => write!(f, "{what} exceeds hard limit"),
            ProtoError::DuplicateField { tag } => {
                write!(f, "TLV field 0x{tag:02x} appears more than once")
            }
            ProtoError::MissingField { tag } => {
                write!(f, "required TLV field 0x{tag:02x} missing")
            }
            ProtoError::UnknownOp(v) => write!(f, "unknown operation {v}"),
            ProtoError::BadRequest { what } => write!(f, "bad request: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl ProtoError {
    /// The [`status`] code a server should answer this decode error with.
    pub fn status(&self) -> u8 {
        match self {
            ProtoError::Truncated { .. }
            | ProtoError::Malformed { .. }
            | ProtoError::DuplicateField { .. }
            | ProtoError::MissingField { .. }
            | ProtoError::BadMagic(_) => status::MALFORMED,
            ProtoError::UnsupportedMajor { .. } => status::UNSUPPORTED_VERSION,
            ProtoError::LimitExceeded { .. } => status::LIMIT,
            ProtoError::UnknownOp(_) => status::UNKNOWN_OP,
            ProtoError::BadRequest { .. } => status::BAD_REQUEST,
        }
    }
}

/// A request operation, decoded from the [`reqtag::OP`] byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Compress raw `f32` elements into a container.
    Compress,
    /// Decompress a container back into elements.
    Decompress,
    /// Describe a container.
    Info,
    /// Liveness probe.
    Ping,
    /// Graceful drain.
    Shutdown,
}

impl Op {
    /// Decode a wire op byte (`None` for unknown values — the server
    /// turns that into a typed [`status::UNKNOWN_OP`], never a panic).
    pub fn from_u8(v: u8) -> Option<Op> {
        match v {
            op::COMPRESS => Some(Op::Compress),
            op::DECOMPRESS => Some(Op::Decompress),
            op::INFO => Some(Op::Info),
            op::PING => Some(Op::Ping),
            op::SHUTDOWN => Some(Op::Shutdown),
            _ => None,
        }
    }

    /// The wire byte.
    pub fn as_u8(self) -> u8 {
        match self {
            Op::Compress => op::COMPRESS,
            Op::Decompress => op::DECOMPRESS,
            Op::Info => op::INFO,
            Op::Ping => op::PING,
            Op::Shutdown => op::SHUTDOWN,
        }
    }
}

/// Encode a policy kind as its wire byte.
pub fn policy_to_u8(kind: PolicyKind) -> u8 {
    match kind {
        PolicyKind::Fixed => 0,
        PolicyKind::Heuristic => 1,
        PolicyKind::Adaptive => 2,
    }
}

/// Decode a policy wire byte (`None` for unknown values).
pub fn policy_from_u8(v: u8) -> Option<PolicyKind> {
    match v {
        0 => Some(PolicyKind::Fixed),
        1 => Some(PolicyKind::Heuristic),
        2 => Some(PolicyKind::Adaptive),
        _ => None,
    }
}

fn bound_to_bytes(bound: BoundSpec) -> [u8; 9] {
    let (mode, eb) = match bound {
        BoundSpec::Absolute(eb) => (0u8, eb),
        BoundSpec::ValueRangeRelative(r) => (1, r),
        BoundSpec::PointwiseRelative(r) => (2, r),
    };
    let mut out = [0u8; 9];
    out[0] = mode;
    out[1..].copy_from_slice(&eb.to_le_bytes());
    out
}

fn bound_from_bytes(raw: &[u8]) -> Result<BoundSpec, ProtoError> {
    if raw.len() != 9 {
        return Err(ProtoError::Malformed { what: "BOUND field length" });
    }
    let eb = f64::from_le_bytes(raw[1..9].try_into().expect("8 bytes"));
    if !eb.is_finite() || eb <= 0.0 {
        return Err(ProtoError::BadRequest { what: "error bound must be finite and positive" });
    }
    match raw[0] {
        0 => Ok(BoundSpec::Absolute(eb)),
        1 => Ok(BoundSpec::ValueRangeRelative(eb)),
        2 => Ok(BoundSpec::PointwiseRelative(eb)),
        _ => Err(ProtoError::BadRequest { what: "unknown bound mode" }),
    }
}

fn dims_to_bytes(dims: &[usize]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + dims.len() * 2);
    varint::write_u64(&mut out, dims.len() as u64);
    for &d in dims {
        varint::write_u64(&mut out, d as u64);
    }
    out
}

fn dims_from_bytes(raw: &[u8]) -> Result<Vec<usize>, ProtoError> {
    let mut pos = 0usize;
    let rank = read_varint(raw, &mut pos, "dims rank")?;
    if rank as usize > MAX_RANK {
        return Err(ProtoError::LimitExceeded { what: "dims rank" });
    }
    let mut dims = Vec::with_capacity(rank as usize);
    for _ in 0..rank {
        let d = read_varint(raw, &mut pos, "dims extent")?;
        dims.push(
            usize::try_from(d).map_err(|_| ProtoError::LimitExceeded { what: "dims extent" })?,
        );
    }
    if pos != raw.len() {
        return Err(ProtoError::Malformed { what: "trailing bytes in DIMS field" });
    }
    Ok(dims)
}

/// Read a varint out of `buf` at `pos`, mapping wire errors onto protocol
/// errors with a section label.
fn read_varint(buf: &[u8], pos: &mut usize, section: &'static str) -> Result<u64, ProtoError> {
    varint::read(buf, pos).map_err(|e| match e {
        lcpio_wire::WireError::Truncated { .. } => ProtoError::Truncated { section },
        lcpio_wire::WireError::Overflow { .. } => ProtoError::Malformed { what: "varint overflow" },
        _ => ProtoError::Malformed { what: "varint" },
    })
}

/// A decoded compression-service request.
///
/// The compress-tuning fields are `None` when the corresponding TLV was
/// absent from the frame — the server then applies its configured
/// defaults; [`Request::encode`] emits only the fields that are set.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// The operation.
    pub op: Op,
    /// Requested codec (compress only; `None` ⇒ server default).
    pub codec: Option<CodecId>,
    /// Error bound (compress only; `None` ⇒ server default).
    pub bound: Option<BoundSpec>,
    /// Chunk policy (compress only; `None` ⇒ server default).
    pub policy: Option<PolicyKind>,
    /// Array dims (compress only; empty otherwise).
    pub dims: Vec<usize>,
    /// Bulk payload.
    pub payload: Vec<u8>,
}

impl Request {
    /// A compress request for `data`-shaped-by-`dims` at the given codec,
    /// bound and policy.
    pub fn compress(
        id: u64,
        data: &[f32],
        dims: &[usize],
        codec: CodecId,
        bound: BoundSpec,
        policy: PolicyKind,
    ) -> Request {
        let mut payload = Vec::with_capacity(data.len() * 4);
        for &v in data {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        Request {
            id,
            op: Op::Compress,
            codec: Some(codec),
            bound: Some(bound),
            policy: Some(policy),
            dims: dims.to_vec(),
            payload,
        }
    }

    /// A decompress request for a compressed container.
    pub fn decompress(id: u64, container: &[u8]) -> Request {
        Request { payload: container.to_vec(), ..Request::control(id, Op::Decompress) }
    }

    /// An info request for a compressed container.
    pub fn info(id: u64, container: &[u8]) -> Request {
        Request { payload: container.to_vec(), ..Request::control(id, Op::Info) }
    }

    /// A payload-less control request (`Ping`/`Shutdown`).
    pub fn control(id: u64, op: Op) -> Request {
        Request {
            id,
            op,
            codec: None,
            bound: None,
            policy: None,
            dims: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// The request's `f32` elements, decoded from the payload (compress
    /// requests carry raw little-endian elements).
    pub fn elements(&self) -> Result<Vec<f32>, ProtoError> {
        if !self.payload.len().is_multiple_of(4) {
            return Err(ProtoError::BadRequest { what: "payload is not whole f32 elements" });
        }
        let n: usize = self
            .dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or(ProtoError::LimitExceeded { what: "dims product" })?;
        if n * 4 != self.payload.len() {
            return Err(ProtoError::BadRequest { what: "dims do not match payload length" });
        }
        Ok(self
            .payload
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Serialize to one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut header = Vec::with_capacity(64);
        push_tlv(&mut header, reqtag::OP, &[self.op.as_u8()]);
        if self.id != 0 {
            let mut v = Vec::new();
            varint::write_u64(&mut v, self.id);
            push_tlv(&mut header, reqtag::REQUEST_ID, &v);
        }
        if let Some(codec) = self.codec {
            push_tlv(&mut header, reqtag::CODEC, &[codec.as_u8()]);
        }
        if let Some(bound) = self.bound {
            push_tlv(&mut header, reqtag::BOUND, &bound_to_bytes(bound));
        }
        if !self.dims.is_empty() {
            push_tlv(&mut header, reqtag::DIMS, &dims_to_bytes(&self.dims));
        }
        if let Some(policy) = self.policy {
            push_tlv(&mut header, reqtag::POLICY, &[policy_to_u8(policy)]);
        }
        encode_frame(REQUEST_MAGIC, &header, &self.payload)
    }

    /// Decode one request frame from the front of `buf`, returning the
    /// request and the bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Request, usize), ProtoError> {
        let (fields, payload, used) = decode_frame(buf, REQUEST_MAGIC, reqtag::ALL)?;
        let op_raw = fields
            .one_byte(reqtag::OP)?
            .ok_or(ProtoError::MissingField { tag: reqtag::OP })?;
        let op = Op::from_u8(op_raw).ok_or(ProtoError::UnknownOp(op_raw))?;
        let id = fields.varint(reqtag::REQUEST_ID)?.unwrap_or(0);
        let codec = match fields.one_byte(reqtag::CODEC)? {
            None => None,
            Some(v) => match CodecId::from_u8(v) {
                Some(CodecId::Raw) | None => {
                    return Err(ProtoError::BadRequest { what: "unknown codec id" })
                }
                Some(c) => Some(c),
            },
        };
        let bound = match fields.get(reqtag::BOUND) {
            Some(raw) => Some(bound_from_bytes(raw)?),
            None => None,
        };
        let policy = match fields.one_byte(reqtag::POLICY)? {
            None => None,
            Some(v) => Some(
                policy_from_u8(v).ok_or(ProtoError::BadRequest { what: "unknown policy id" })?,
            ),
        };
        let dims = match fields.get(reqtag::DIMS) {
            Some(raw) => dims_from_bytes(raw)?,
            None => Vec::new(),
        };
        if op == Op::Compress && dims.is_empty() {
            return Err(ProtoError::MissingField { tag: reqtag::DIMS });
        }
        Ok((Request { id, op, codec, bound, policy, dims, payload }, used))
    }
}

/// A decoded compression-service response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// Status code (see [`status`]).
    pub status: u8,
    /// Server-side service latency in microseconds.
    pub latency_us: u64,
    /// Modeled energy in microjoules.
    pub energy_uj: u64,
    /// Human-readable detail (errors, `INFO` description).
    pub message: String,
    /// Dims of a restored field (decompress responses).
    pub dims: Vec<usize>,
    /// Codec actually used after policy planning (compress responses).
    pub codec: Option<CodecId>,
    /// Bulk payload (container bytes or raw elements).
    pub payload: Vec<u8>,
}

impl Response {
    /// An empty-payload response with the given status.
    pub fn of_status(id: u64, status_code: u8, message: impl Into<String>) -> Response {
        Response {
            id,
            status: status_code,
            latency_us: 0,
            energy_uj: 0,
            message: message.into(),
            dims: Vec::new(),
            codec: None,
            payload: Vec::new(),
        }
    }

    /// True when the status is [`status::OK`].
    pub fn is_ok(&self) -> bool {
        self.status == status::OK
    }

    /// The response's `f32` elements, decoded from the payload
    /// (decompress responses carry raw little-endian elements).
    pub fn elements(&self) -> Result<Vec<f32>, ProtoError> {
        if !self.payload.len().is_multiple_of(4) {
            return Err(ProtoError::Malformed { what: "payload is not whole f32 elements" });
        }
        Ok(self
            .payload
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Serialize to one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut header = Vec::with_capacity(64);
        push_tlv(&mut header, resptag::STATUS, &[self.status]);
        if self.id != 0 {
            let mut v = Vec::new();
            varint::write_u64(&mut v, self.id);
            push_tlv(&mut header, resptag::REQUEST_ID, &v);
        }
        if self.latency_us != 0 {
            let mut v = Vec::new();
            varint::write_u64(&mut v, self.latency_us);
            push_tlv(&mut header, resptag::LATENCY_US, &v);
        }
        if self.energy_uj != 0 {
            let mut v = Vec::new();
            varint::write_u64(&mut v, self.energy_uj);
            push_tlv(&mut header, resptag::ENERGY_UJ, &v);
        }
        if !self.message.is_empty() {
            push_tlv(&mut header, resptag::MESSAGE, self.message.as_bytes());
        }
        if !self.dims.is_empty() {
            push_tlv(&mut header, resptag::DIMS, &dims_to_bytes(&self.dims));
        }
        if let Some(codec) = self.codec {
            push_tlv(&mut header, resptag::CODEC, &[codec.as_u8()]);
        }
        encode_frame(RESPONSE_MAGIC, &header, &self.payload)
    }

    /// Decode one response frame from the front of `buf`, returning the
    /// response and the bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Response, usize), ProtoError> {
        let (fields, payload, used) = decode_frame(buf, RESPONSE_MAGIC, resptag::ALL)?;
        let status_code = fields
            .one_byte(resptag::STATUS)?
            .ok_or(ProtoError::MissingField { tag: resptag::STATUS })?;
        let id = fields.varint(resptag::REQUEST_ID)?.unwrap_or(0);
        let latency_us = fields.varint(resptag::LATENCY_US)?.unwrap_or(0);
        let energy_uj = fields.varint(resptag::ENERGY_UJ)?.unwrap_or(0);
        let message = match fields.get(resptag::MESSAGE) {
            Some(raw) => String::from_utf8(raw.to_vec())
                .map_err(|_| ProtoError::Malformed { what: "MESSAGE is not UTF-8" })?,
            None => String::new(),
        };
        let dims = match fields.get(resptag::DIMS) {
            Some(raw) => dims_from_bytes(raw)?,
            None => Vec::new(),
        };
        let codec = match fields.one_byte(resptag::CODEC)? {
            None => None,
            Some(v) => Some(
                CodecId::from_u8(v).ok_or(ProtoError::Malformed { what: "unknown codec id" })?,
            ),
        };
        Ok((
            Response { id, status: status_code, latency_us, energy_uj, message, dims, codec, payload },
            used,
        ))
    }
}

fn push_tlv(out: &mut Vec<u8>, tag: u8, value: &[u8]) {
    out.push(tag);
    varint::write_u64(out, value.len() as u64);
    out.extend_from_slice(value);
}

fn encode_frame(magic: [u8; 4], header: &[u8], payload: &[u8]) -> Vec<u8> {
    debug_assert!(header.len() <= MAX_HEADER_LEN && payload.len() <= MAX_PAYLOAD_LEN);
    let mut out = Vec::with_capacity(6 + header.len() + payload.len() + 12);
    out.extend_from_slice(&magic);
    out.push(VERSION_MAJOR);
    out.push(VERSION_MINOR);
    varint::write_u64(&mut out, header.len() as u64);
    out.extend_from_slice(header);
    varint::write_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    out
}

/// Decoded TLV block: known fields (at most once each) by tag.
struct Fields<'a> {
    entries: Vec<(u8, &'a [u8])>,
}

impl<'a> Fields<'a> {
    fn get(&self, tag: u8) -> Option<&'a [u8]> {
        self.entries.iter().find(|(t, _)| *t == tag).map(|(_, v)| *v)
    }

    fn one_byte(&self, tag: u8) -> Result<Option<u8>, ProtoError> {
        match self.get(tag) {
            None => Ok(None),
            Some([b]) => Ok(Some(*b)),
            Some(_) => Err(ProtoError::Malformed { what: "one-byte field length" }),
        }
    }

    fn varint(&self, tag: u8) -> Result<Option<u64>, ProtoError> {
        match self.get(tag) {
            None => Ok(None),
            Some(raw) => {
                let mut pos = 0;
                let v = read_varint(raw, &mut pos, "varint field")?;
                if pos != raw.len() {
                    return Err(ProtoError::Malformed { what: "trailing bytes in varint field" });
                }
                Ok(Some(v))
            }
        }
    }
}

/// Shared frame decoder: magic + version check, bounded header, TLV walk
/// (skip unknown, reject duplicate known), bounded payload. Returns the
/// known fields, the payload, and the total bytes consumed.
fn decode_frame<'a>(
    buf: &'a [u8],
    magic: [u8; 4],
    known: &[(u8, &str)],
) -> Result<(Fields<'a>, Vec<u8>, usize), ProtoError> {
    if buf.len() < 4 {
        return Err(ProtoError::Truncated { section: "magic" });
    }
    let got: [u8; 4] = buf[..4].try_into().expect("4 bytes");
    if got != magic {
        return Err(ProtoError::BadMagic(got));
    }
    if buf.len() < 6 {
        return Err(ProtoError::Truncated { section: "version" });
    }
    if buf[4] > VERSION_MAJOR {
        return Err(ProtoError::UnsupportedMajor { have: buf[4], supported: VERSION_MAJOR });
    }
    let mut pos = 6usize;
    let header_len = read_varint(buf, &mut pos, "header length")?;
    if header_len as usize > MAX_HEADER_LEN {
        return Err(ProtoError::LimitExceeded { what: "header length" });
    }
    let header_end = pos
        .checked_add(header_len as usize)
        .ok_or(ProtoError::Malformed { what: "header length overflow" })?;
    if buf.len() < header_end {
        return Err(ProtoError::Truncated { section: "TLV header" });
    }
    let header = &buf[pos..header_end];
    let mut entries: Vec<(u8, &[u8])> = Vec::new();
    let mut hpos = 0usize;
    while hpos < header.len() {
        let tag = header[hpos];
        hpos += 1;
        let len = read_varint(header, &mut hpos, "TLV length")?;
        let end = hpos
            .checked_add(len as usize)
            .ok_or(ProtoError::Malformed { what: "TLV length overflow" })?;
        if end > header.len() {
            return Err(ProtoError::Truncated { section: "TLV value" });
        }
        let value = &header[hpos..end];
        hpos = end;
        if known.iter().any(|(t, _)| *t == tag) {
            if entries.iter().any(|(t, _)| *t == tag) {
                return Err(ProtoError::DuplicateField { tag });
            }
            entries.push((tag, value));
        }
        // Unknown tags are skipped: forward compatibility.
    }
    pos = header_end;
    let payload_len = read_varint(buf, &mut pos, "payload length")?;
    if payload_len as usize > MAX_PAYLOAD_LEN {
        return Err(ProtoError::LimitExceeded { what: "payload length" });
    }
    let payload_end = pos
        .checked_add(payload_len as usize)
        .ok_or(ProtoError::Malformed { what: "payload length overflow" })?;
    if buf.len() < payload_end {
        return Err(ProtoError::Truncated { section: "payload" });
    }
    let payload = buf[pos..payload_end].to_vec();
    Ok((Fields { entries }, payload, payload_end))
}

/// The number of bytes the frame at the front of `buf` occupies, or
/// `None` if more bytes are needed to tell. Checks only what framing
/// requires — magic, major version, and the two length prefixes; all
/// other errors are deferred to the full decode. A [`ProtoError`] here
/// means the frame boundary is unknowable (forged lengths, junk
/// prefix): answer once with the typed status and close the
/// connection.
pub fn frame_len(buf: &[u8]) -> Result<Option<usize>, ProtoError> {
    // Reject junk as soon as the prefix can be judged: waiting for more
    // bytes of a frame that can never become valid would turn garbage
    // into a slow-loris stall instead of a typed error.
    if buf.len() >= 4 {
        let got: [u8; 4] = buf[..4].try_into().expect("4-byte slice");
        if got != REQUEST_MAGIC && got != RESPONSE_MAGIC {
            return Err(ProtoError::BadMagic(got));
        }
    }
    if buf.len() >= 5 && buf[4] > VERSION_MAJOR {
        return Err(ProtoError::UnsupportedMajor { have: buf[4], supported: VERSION_MAJOR });
    }
    if buf.len() < 6 {
        return Ok(None);
    }
    let mut pos = 6usize;
    let header_len = match varint::read_partial(&buf[pos..]) {
        Ok(varint::Partial::Ready(v, n)) => {
            pos += n;
            v
        }
        Ok(varint::Partial::NeedMore) => return Ok(None),
        Err(_) => return Err(ProtoError::Malformed { what: "header length varint" }),
    };
    if header_len as usize > MAX_HEADER_LEN {
        return Err(ProtoError::LimitExceeded { what: "header length" });
    }
    pos = match pos.checked_add(header_len as usize) {
        Some(p) => p,
        None => return Err(ProtoError::Malformed { what: "header length overflow" }),
    };
    if buf.len() < pos {
        return Ok(None);
    }
    let payload_len = match varint::read_partial(&buf[pos..]) {
        Ok(varint::Partial::Ready(v, n)) => {
            pos += n;
            v
        }
        Ok(varint::Partial::NeedMore) => return Ok(None),
        Err(_) => return Err(ProtoError::Malformed { what: "payload length varint" }),
    };
    if payload_len as usize > MAX_PAYLOAD_LEN {
        return Err(ProtoError::LimitExceeded { what: "payload length" });
    }
    match pos.checked_add(payload_len as usize) {
        Some(end) => Ok(Some(end)),
        None => Err(ProtoError::Malformed { what: "payload length overflow" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_every_op() {
        let data: Vec<f32> = (0..64).map(|i| i as f32 * 0.5).collect();
        let reqs = vec![
            Request::compress(
                7,
                &data,
                &[8, 8],
                CodecId::Zfp,
                BoundSpec::Absolute(1e-4),
                PolicyKind::Adaptive,
            ),
            Request::decompress(8, b"SZL1fakebytes"),
            Request::info(9, b"ZFL1fake"),
            Request::control(0, Op::Ping),
            Request::control(11, Op::Shutdown),
        ];
        for req in reqs {
            let bytes = req.encode();
            let (back, used) = Request::decode(&bytes).expect("roundtrip");
            assert_eq!(used, bytes.len());
            assert_eq!(back, req);
            assert_eq!(frame_len(&bytes).unwrap(), Some(bytes.len()));
        }
    }

    #[test]
    fn response_roundtrips() {
        let resp = Response {
            id: 42,
            status: status::OK,
            latency_us: 1234,
            energy_uj: 99,
            message: "hi".to_string(),
            dims: vec![16, 4],
            codec: Some(CodecId::Sz),
            payload: vec![1, 2, 3],
        };
        let bytes = resp.encode();
        let (back, used) = Response::decode(&bytes).expect("roundtrip");
        assert_eq!(used, bytes.len());
        assert_eq!(back, resp);
        let err = Response::of_status(0, status::BUSY, "queue full");
        let bytes = err.encode();
        let (back, _) = Response::decode(&bytes).expect("roundtrip");
        assert_eq!(back.status, status::BUSY);
        assert!(!back.is_ok());
        assert_eq!(back.message, "queue full");
    }

    #[test]
    fn elements_guard_dims_payload_mismatch() {
        let req = Request::compress(
            1,
            &[1.0, 2.0, 3.0, 4.0],
            &[4],
            CodecId::Sz,
            BoundSpec::Absolute(1e-3),
            PolicyKind::Fixed,
        );
        assert_eq!(req.elements().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
        let mut forged = req.clone();
        forged.dims = vec![5];
        assert_eq!(
            forged.elements().unwrap_err(),
            ProtoError::BadRequest { what: "dims do not match payload length" }
        );
        let mut overflow = req;
        overflow.dims = vec![usize::MAX, usize::MAX];
        assert_eq!(
            overflow.elements().unwrap_err(),
            ProtoError::LimitExceeded { what: "dims product" }
        );
    }

    #[test]
    fn forged_frames_are_typed_errors() {
        // Bad magic.
        assert_eq!(
            Request::decode(b"NOPE\x01\x00\x00\x00").unwrap_err(),
            ProtoError::BadMagic(*b"NOPE")
        );
        // Newer major.
        assert_eq!(
            Request::decode(b"LCRQ\x02\x00\x00\x00").unwrap_err(),
            ProtoError::UnsupportedMajor { have: 2, supported: VERSION_MAJOR }
        );
        // Oversized header claim rejected before buffering.
        let mut oversized = b"LCRQ\x01\x00".to_vec();
        varint::write_u64(&mut oversized, (MAX_HEADER_LEN + 1) as u64);
        assert_eq!(
            Request::decode(&oversized).unwrap_err(),
            ProtoError::LimitExceeded { what: "header length" }
        );
        assert_eq!(
            frame_len(&oversized).unwrap_err(),
            ProtoError::LimitExceeded { what: "header length" }
        );
        // Oversized payload claim.
        let mut frame = b"LCRQ\x01\x00".to_vec();
        varint::write_u64(&mut frame, 3);
        frame.extend_from_slice(&[reqtag::OP, 1, op::PING]);
        varint::write_u64(&mut frame, (MAX_PAYLOAD_LEN + 1) as u64);
        assert_eq!(
            Request::decode(&frame).unwrap_err(),
            ProtoError::LimitExceeded { what: "payload length" }
        );
        // Missing OP.
        let mut frame = b"LCRQ\x01\x00".to_vec();
        varint::write_u64(&mut frame, 0);
        varint::write_u64(&mut frame, 0);
        assert_eq!(
            Request::decode(&frame).unwrap_err(),
            ProtoError::MissingField { tag: reqtag::OP }
        );
        // Unknown op.
        let mut frame = b"LCRQ\x01\x00".to_vec();
        varint::write_u64(&mut frame, 3);
        frame.extend_from_slice(&[reqtag::OP, 1, 200]);
        varint::write_u64(&mut frame, 0);
        assert_eq!(Request::decode(&frame).unwrap_err(), ProtoError::UnknownOp(200));
        // Duplicate field.
        let mut frame = b"LCRQ\x01\x00".to_vec();
        varint::write_u64(&mut frame, 6);
        frame.extend_from_slice(&[reqtag::OP, 1, op::PING, reqtag::OP, 1, op::PING]);
        varint::write_u64(&mut frame, 0);
        assert_eq!(
            Request::decode(&frame).unwrap_err(),
            ProtoError::DuplicateField { tag: reqtag::OP }
        );
    }

    #[test]
    fn truncation_at_every_offset_is_a_typed_error() {
        let req = Request::compress(
            3,
            &[1.0f32; 32],
            &[32],
            CodecId::Sz,
            BoundSpec::Absolute(1e-3),
            PolicyKind::Heuristic,
        );
        let bytes = req.encode();
        for cut in 0..bytes.len() {
            let err = Request::decode(&bytes[..cut]).expect_err("cut frame must not decode");
            // Any typed error is fine; a panic is not.
            let _ = err.to_string();
            // frame_len either asks for more bytes or (once both length
            // prefixes are visible) knows the full frame length.
            if let Some(n) = frame_len(&bytes[..cut]).expect("no forged lengths here") {
                assert_eq!(n, bytes.len());
            }
        }
    }

    #[test]
    fn unknown_tlv_tags_are_skipped_and_minor_versions_accepted() {
        let req = Request::control(5, Op::Ping);
        let mut bytes = req.encode();
        // Rewrite: bump the minor and splice an unknown TLV into the
        // header block.
        bytes[5] = VERSION_MINOR + 3;
        // Header currently: OP tlv (3 bytes) + REQUEST_ID tlv (3 bytes).
        // Re-encode by hand with an extra unknown field 0x7f.
        let mut frame = b"LCRQ\x01\x09".to_vec();
        let mut header = Vec::new();
        push_tlv(&mut header, reqtag::OP, &[op::PING]);
        let mut idv = Vec::new();
        varint::write_u64(&mut idv, 5);
        push_tlv(&mut header, reqtag::REQUEST_ID, &idv);
        push_tlv(&mut header, 0x7f, b"future");
        varint::write_u64(&mut frame, header.len() as u64);
        frame.extend_from_slice(&header);
        varint::write_u64(&mut frame, 0);
        let (back, _) = Request::decode(&frame).expect("unknown tag skipped");
        assert_eq!(back.op, Op::Ping);
        assert_eq!(back.id, 5);
    }

    #[test]
    fn status_names_cover_all_codes() {
        for (code, name) in status::ALL {
            assert_eq!(status::name(*code), *name);
        }
        assert_eq!(status::name(200), "?");
    }

    #[test]
    fn errors_display_without_panicking() {
        let cases = vec![
            ProtoError::Truncated { section: "payload" },
            ProtoError::BadMagic(*b"XXXX"),
            ProtoError::UnsupportedMajor { have: 9, supported: 1 },
            ProtoError::Malformed { what: "x" },
            ProtoError::LimitExceeded { what: "y" },
            ProtoError::DuplicateField { tag: 1 },
            ProtoError::MissingField { tag: 2 },
            ProtoError::UnknownOp(77),
            ProtoError::BadRequest { what: "z" },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
            assert!(status::ALL.iter().any(|(c, _)| *c == e.status()));
        }
    }
}
