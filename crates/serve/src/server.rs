//! The daemon: socket listeners, per-connection frame readers/writers, a
//! sharded worker pool with bounded admission queues, and graceful drain.
//!
//! Data flow for one request (the diagram in `ARCHITECTURE.md` §"Service
//! path" mirrors this):
//!
//! ```text
//! connection reader ── frame_len/decode ──► admission ──► shard queue ──► worker
//!        │                    │ (typed error)     │ (BUSY)        (codec + scratch)
//!        └────────────────────┴──────────────────┴───────► reply channel ──► writer
//!                                                           (seq-ordered commit)
//! ```
//!
//! Each connection gets a reader thread and a writer thread. The reader
//! assigns every frame a connection-local sequence number and hands
//! compress/decompress/info work to a worker shard; ping/shutdown and all
//! rejections are answered inline. Workers send `(seq, Response)` pairs
//! down the connection's reply channel, and the writer commits them back
//! to the socket in sequence order (the same reorder-commit discipline as
//! the write pipeline's `writers`), so responses line up with requests
//! even when shards finish out of order.
//!
//! Each shard owns its own [`SzCodec`]/[`ZfpCodec`] instance, so SZ
//! scratch buffers (`SzScratchPool`) are reused across requests without
//! cross-shard lock contention. Admission control is a bounded
//! `VecDeque` per shard: when every shard is at `queue_depth`, the
//! request is answered [`crate::protocol::status::BUSY`] immediately instead of queueing
//! without bound — the same backpressure stance as the bounded channels
//! in the write/restart pipelines.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use lcpio_codec::policy::{ChunkPlan, CodecId};
use lcpio_codec::{registry, BoundSpec, Codec, CodecStats, SzCodec, ZfpCodec};
use lcpio_core::policy::{build_policy, compressor_of};
use lcpio_core::records::Compressor;
use lcpio_core::{CostModel, PolicyKind};
use lcpio_powersim::{simulate, Chip, Machine};
use lcpio_trace as trace;

use crate::protocol::{self, Op, Request, Response};

/// How often blocked loops (accept, idle reads, worker waits) wake up to
/// check the shutdown flag.
const TICK: Duration = Duration::from_millis(25);

/// Worker-side service-time shaping, the serve-side analogue of the
/// pipeline's `FailurePlan`. All-zero by default. The failure suite uses
/// it to make queue-full and drain states deterministically reachable;
/// the `ext_serve` bench uses it to model an I/O-bound request regime
/// (each request holding its worker for the modeled NFS-write phase of a
/// checkpoint) where shard concurrency — not per-core compute — sets
/// throughput.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Hold the worker this long before executing each
    /// compress/decompress/info request.
    pub worker_delay_ms: u64,
}

/// Server configuration, the programmatic form of the `lcpio-cli serve`
/// flags.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker shards (each: one thread + one bounded queue + its own
    /// codec scratch).
    pub workers: usize,
    /// Bounded queue capacity per shard; a request finding every shard
    /// full is answered [`protocol::status::BUSY`].
    pub queue_depth: usize,
    /// How long a connection may stall mid-frame before it is dropped
    /// (the slow-loris guard). Idle connections *between* frames are not
    /// timed out.
    pub read_timeout: Duration,
    /// Admission cap on one frame's payload, at most
    /// [`protocol::MAX_PAYLOAD_LEN`]; larger claims are answered
    /// [`protocol::status::LIMIT`] and the connection is closed.
    pub max_payload: usize,
    /// Codec applied when a compress request carries no `CODEC` TLV.
    pub default_codec: CodecId,
    /// Bound applied when a compress request carries no `BOUND` TLV.
    pub default_bound: BoundSpec,
    /// Policy applied when a compress request carries no `POLICY` TLV.
    pub default_policy: PolicyKind,
    /// Chip whose power model prices request energy.
    pub chip: Chip,
    /// Failure-injection hooks (none by default).
    pub fault: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_depth: 8,
            read_timeout: Duration::from_secs(30),
            max_payload: 1 << 26,
            default_codec: CodecId::Sz,
            default_bound: BoundSpec::Absolute(1e-3),
            default_policy: PolicyKind::Fixed,
            chip: Chip::Broadwell,
            fault: FaultPlan::default(),
        }
    }
}

/// Where the server listens (and where a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP socket at this `host:port` address.
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Either kind of connected stream, unified behind `Read`/`Write`.
enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, d: Duration) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(Some(d)),
            Conn::Tcp(s) => s.set_read_timeout(Some(d)),
        }
    }

    fn shutdown(&self) {
        let _ = match self {
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(true),
            Listener::Tcp(l) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        Ok(match self {
            Listener::Unix(l) => Conn::Unix(l.accept()?.0),
            Listener::Tcp(l) => Conn::Tcp(l.accept()?.0),
        })
    }
}

/// One queued unit of work: a decoded request plus where (and in which
/// slot) its response goes.
struct Job {
    seq: u64,
    request: Request,
    reply: mpsc::Sender<(u64, Response)>,
}

/// A worker shard: bounded queue + wakeup for one worker thread.
struct Shard {
    queue: Mutex<VecDeque<Job>>,
    cond: Condvar,
}

impl Shard {
    fn new() -> Shard {
        Shard { queue: Mutex::new(VecDeque::new()), cond: Condvar::new() }
    }
}

/// Monotonic service counters, shared across threads.
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    compress: AtomicU64,
    decompress: AtomicU64,
    info: AtomicU64,
    ping: AtomicU64,
    busy_rejected: AtomicU64,
    errors: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    energy_uj: AtomicU64,
}

/// A copy of the server's counters at one instant, from
/// [`Server::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Frames decoded into requests (including rejected ones).
    pub requests: u64,
    /// Compress requests executed.
    pub compress: u64,
    /// Decompress requests executed.
    pub decompress: u64,
    /// Info requests executed.
    pub info: u64,
    /// Ping requests answered.
    pub ping: u64,
    /// Requests rejected by admission control (`BUSY`).
    pub busy_rejected: u64,
    /// Requests answered with any non-`OK` status other than `BUSY`.
    pub errors: u64,
    /// Request payload bytes received.
    pub bytes_in: u64,
    /// Response payload bytes sent.
    pub bytes_out: u64,
    /// Total modeled energy across requests, microjoules.
    pub energy_uj: u64,
}

struct Shared {
    cfg: ServeConfig,
    shards: Vec<Shard>,
    next_shard: AtomicU64,
    shutdown: AtomicBool,
    counters: Counters,
}

impl Shared {
    fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            shard.cond.notify_all();
        }
    }

    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Admit a job onto the least-loaded shard, or reject it with a typed
    /// response when draining or when every queue is full.
    fn submit(&self, job: Job) -> Result<(), Response> {
        if self.draining() {
            return Err(Response::of_status(
                job.request.id,
                protocol::status::SHUTTING_DOWN,
                "server is draining",
            ));
        }
        let start = self.next_shard.fetch_add(1, Ordering::Relaxed) as usize;
        let mut best: Option<(usize, usize)> = None;
        for i in 0..self.shards.len() {
            let idx = (start + i) % self.shards.len();
            let len = self.shards[idx].queue.lock().expect("shard queue lock").len();
            if len < self.cfg.queue_depth && best.map(|(_, l)| len < l).unwrap_or(true) {
                best = Some((idx, len));
            }
        }
        match best {
            Some((idx, _)) => {
                let id = job.request.id;
                let shard = &self.shards[idx];
                let mut q = shard.queue.lock().expect("shard queue lock");
                if q.len() >= self.cfg.queue_depth {
                    drop(q);
                    self.counters.busy_rejected.fetch_add(1, Ordering::Relaxed);
                    trace::counter_add("serve.busy", 1);
                    return Err(Response::of_status(
                        id,
                        protocol::status::BUSY,
                        "every worker queue is full, retry later",
                    ));
                }
                q.push_back(job);
                drop(q);
                shard.cond.notify_one();
                Ok(())
            }
            None => {
                self.counters.busy_rejected.fetch_add(1, Ordering::Relaxed);
                trace::counter_add("serve.busy", 1);
                Err(Response::of_status(
                    job.request.id,
                    protocol::status::BUSY,
                    "every worker queue is full, retry later",
                ))
            }
        }
    }
}

/// A running compression service.
///
/// Bind one with [`Server::bind`], then either drive it from the same
/// process (tests, benches) or call [`Server::wait`] to park until a
/// client sends a `SHUTDOWN` request.
pub struct Server {
    shared: Arc<Shared>,
    endpoint: Endpoint,
    unix_path: Option<PathBuf>,
    listener_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind the service to `endpoint` and start its listener and worker
    /// threads. A stale Unix socket file at the path is removed first;
    /// `Tcp("127.0.0.1:0")` binds an ephemeral port, observable via
    /// [`Server::endpoint`].
    pub fn bind(endpoint: &Endpoint, cfg: ServeConfig) -> io::Result<Server> {
        let workers = cfg.workers.max(1);
        let cfg = ServeConfig {
            workers,
            queue_depth: cfg.queue_depth.max(1),
            max_payload: cfg.max_payload.min(protocol::MAX_PAYLOAD_LEN),
            ..cfg
        };
        let (listener, resolved, unix_path) = match endpoint {
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                (
                    Listener::Unix(UnixListener::bind(path)?),
                    Endpoint::Unix(path.clone()),
                    Some(path.clone()),
                )
            }
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let actual = l.local_addr()?.to_string();
                (Listener::Tcp(l), Endpoint::Tcp(actual), None)
            }
        };
        listener.set_nonblocking()?;

        let shared = Arc::new(Shared {
            cfg,
            shards: (0..workers).map(|_| Shard::new()).collect(),
            next_shard: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });

        let worker_threads = (0..workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared, idx))
            })
            .collect();

        let listener_shared = Arc::clone(&shared);
        let listener_thread = thread::spawn(move || accept_loop(&listener_shared, listener));

        Ok(Server {
            shared,
            endpoint: resolved,
            unix_path,
            listener_thread: Some(listener_thread),
            worker_threads,
        })
    }

    /// The resolved endpoint (for `Tcp(":0")`, the actual bound address).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Begin a graceful drain: stop accepting connections and admitting
    /// requests, let in-flight requests complete and flush. Equivalent to
    /// a client `SHUTDOWN` request.
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// A detached handle that can trigger shutdown from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Current service counters.
    pub fn stats(&self) -> StatsSnapshot {
        let c = &self.shared.counters;
        StatsSnapshot {
            connections: c.connections.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            compress: c.compress.load(Ordering::Relaxed),
            decompress: c.decompress.load(Ordering::Relaxed),
            info: c.info.load(Ordering::Relaxed),
            ping: c.ping.load(Ordering::Relaxed),
            busy_rejected: c.busy_rejected.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            bytes_in: c.bytes_in.load(Ordering::Relaxed),
            bytes_out: c.bytes_out.load(Ordering::Relaxed),
            energy_uj: c.energy_uj.load(Ordering::Relaxed),
        }
    }

    /// Block until the server has fully drained (shutdown initiated by
    /// [`Server::shutdown`], a [`ServerHandle`], or a client `SHUTDOWN`
    /// request; listener stopped; every queued request answered; all
    /// threads joined), then remove the Unix socket file. Returns the
    /// final counters.
    pub fn wait(mut self) -> StatsSnapshot {
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
        self.stats()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Not `wait()`ed: still stop the threads' work loops so they exit
        // soon, and clean up the socket path.
        self.shared.initiate_shutdown();
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Shutdown trigger detached from the [`Server`]'s lifetime, safe to move
/// into another thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin a graceful drain (see [`Server::shutdown`]).
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: Listener) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shared.draining() {
        match listener.accept() {
            Ok(conn) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                trace::counter_add("serve.connections", 1);
                let shared = Arc::clone(shared);
                conns.push(thread::spawn(move || handle_conn(&shared, conn)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(TICK),
            Err(_) => break,
        }
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Per-connection reader: frame assembly, protocol-level rejection,
/// inline control ops, and admission onto the shards. Spawns the
/// seq-ordered writer for its socket.
fn handle_conn(shared: &Arc<Shared>, conn: Conn) {
    if conn.set_read_timeout(TICK).is_err() {
        return;
    }
    let writer_conn = match conn.try_clone() {
        Ok(c) => c,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<(u64, Response)>();
    let counters_out = Arc::clone(shared);
    let writer = thread::spawn(move || writer_loop(writer_conn, rx, &counters_out));

    let mut conn = conn;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut seq = 0u64;
    // When the oldest buffered frame started arriving — the slow-loris
    // clock. `None` while the buffer is empty.
    let mut frame_started: Option<Instant> = None;
    let frame_budget = shared.cfg.max_payload + protocol::MAX_HEADER_LEN + 64;

    'conn: loop {
        // Drain every complete frame currently buffered.
        loop {
            match protocol::frame_len(&buf) {
                Ok(None) => break,
                Err(e) => {
                    // Forged lengths / bad varints: the frame boundary is
                    // unknowable, so answer once and close.
                    send_reject(shared, &tx, seq, 0, e.status(), &e.to_string());
                    break 'conn;
                }
                Ok(Some(n)) if n > frame_budget => {
                    send_reject(
                        shared,
                        &tx,
                        seq,
                        0,
                        protocol::status::LIMIT,
                        "frame exceeds the server's payload cap",
                    );
                    break 'conn;
                }
                Ok(Some(n)) => {
                    if buf.len() < n {
                        break;
                    }
                    let frame: Vec<u8> = buf.drain(..n).collect();
                    frame_started = if buf.is_empty() { None } else { Some(Instant::now()) };
                    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                    trace::counter_add("serve.requests", 1);
                    match Request::decode(&frame) {
                        Err(e) => {
                            // The boundary was sound, so the connection
                            // stays usable after a typed rejection.
                            send_reject(shared, &tx, seq, 0, e.status(), &e.to_string());
                            seq += 1;
                        }
                        Ok((req, _)) if req.payload.len() > shared.cfg.max_payload => {
                            // The frame boundary was sound, so this is a
                            // typed per-request rejection, not a close.
                            send_reject(
                                shared,
                                &tx,
                                seq,
                                req.id,
                                protocol::status::LIMIT,
                                "request payload exceeds the server's payload cap",
                            );
                            seq += 1;
                        }
                        Ok((req, _)) => {
                            shared
                                .counters
                                .bytes_in
                                .fetch_add(req.payload.len() as u64, Ordering::Relaxed);
                            trace::counter_add("serve.bytes_in", req.payload.len() as u64);
                            match req.op {
                                Op::Ping => {
                                    shared.counters.ping.fetch_add(1, Ordering::Relaxed);
                                    let _ = tx.send((
                                        seq,
                                        Response::of_status(req.id, protocol::status::OK, ""),
                                    ));
                                }
                                Op::Shutdown => {
                                    let _ = tx.send((
                                        seq,
                                        Response::of_status(req.id, protocol::status::OK, ""),
                                    ));
                                    shared.initiate_shutdown();
                                }
                                _ => {
                                    if let Err(resp) =
                                        shared.submit(Job { seq, request: req, reply: tx.clone() })
                                    {
                                        let _ = tx.send((seq, resp));
                                    }
                                }
                            }
                            seq += 1;
                        }
                    }
                }
            }
        }

        if shared.draining() && buf.is_empty() {
            break;
        }

        match conn.read(&mut chunk) {
            Ok(0) => break, // peer closed (possibly mid-request: tolerated)
            Ok(n) => {
                if buf.is_empty() {
                    frame_started = Some(Instant::now());
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if let Some(t0) = frame_started {
                    if t0.elapsed() >= shared.cfg.read_timeout {
                        // Slow loris: a partial frame stalled past the
                        // read timeout. No response is owed on a frame
                        // that never finished; drop the connection.
                        trace::counter_add("serve.slow_loris_drops", 1);
                        break;
                    }
                }
            }
            Err(_) => break,
        }
    }

    drop(tx);
    let _ = writer.join();
}

fn send_reject(
    shared: &Shared,
    tx: &mpsc::Sender<(u64, Response)>,
    seq: u64,
    id: u64,
    status: u8,
    message: &str,
) {
    shared.counters.errors.fetch_add(1, Ordering::Relaxed);
    trace::counter_add("serve.errors", 1);
    let _ = tx.send((seq, Response::of_status(id, status, message)));
}

/// Seq-ordered response writer: buffers out-of-order completions and
/// commits them to the socket in request order.
fn writer_loop(mut conn: Conn, rx: mpsc::Receiver<(u64, Response)>, shared: &Shared) {
    let mut pending: BTreeMap<u64, Response> = BTreeMap::new();
    let mut next = 0u64;
    while let Ok((seq, resp)) = rx.recv() {
        pending.insert(seq, resp);
        while let Some(resp) = pending.remove(&next) {
            next += 1;
            shared.counters.bytes_out.fetch_add(resp.payload.len() as u64, Ordering::Relaxed);
            trace::counter_add("serve.bytes_out", resp.payload.len() as u64);
            if conn.write_all(&resp.encode()).is_err() {
                // Peer went away mid-request; drain the channel so the
                // workers' sends don't error, then quit.
                while rx.recv().is_ok() {}
                conn.shutdown();
                return;
            }
        }
    }
    let _ = conn.flush();
    conn.shutdown();
}

/// One shard's worker: owns the codec instances (and therefore the SZ
/// scratch pool) for every request the shard executes.
fn worker_loop(shared: &Arc<Shared>, shard_idx: usize) {
    let sz = SzCodec::new();
    let zfp = ZfpCodec::new();
    let shard = &shared.shards[shard_idx];
    loop {
        let job = {
            let mut q = shard.queue.lock().expect("shard queue lock");
            loop {
                if let Some(job) = q.pop_front() {
                    break Some(job);
                }
                if shared.draining() {
                    break None;
                }
                let (guard, _) = shard.cond.wait_timeout(q, TICK).expect("shard queue lock");
                q = guard;
            }
        };
        let Some(job) = job else { return };
        if shared.cfg.fault.worker_delay_ms > 0 {
            thread::sleep(Duration::from_millis(shared.cfg.fault.worker_delay_ms));
        }
        let t0 = Instant::now();
        let mut resp = execute(&shared.cfg, &sz, &zfp, &job.request);
        resp.latency_us = t0.elapsed().as_micros() as u64;
        let c = &shared.counters;
        if resp.is_ok() {
            match job.request.op {
                Op::Compress => c.compress.fetch_add(1, Ordering::Relaxed),
                Op::Decompress => c.decompress.fetch_add(1, Ordering::Relaxed),
                _ => c.info.fetch_add(1, Ordering::Relaxed),
            };
            c.energy_uj.fetch_add(resp.energy_uj, Ordering::Relaxed);
            trace::counter_add("serve.energy_uj", resp.energy_uj);
        } else {
            c.errors.fetch_add(1, Ordering::Relaxed);
            trace::counter_add("serve.errors", 1);
        }
        // The reader may already be gone (disconnect mid-request): the
        // work still completes, the response is simply dropped.
        let _ = job.reply.send((job.seq, resp));
    }
}

/// Resolve the effective plan for a compress request: the requested (or
/// default) codec/bound/policy run through the policy layer, treating the
/// whole request as one chunk. A policy that picks the pipeline's `Raw`
/// fallback is mapped back to the requested codec — the service always
/// returns a self-describing registry container.
fn resolve_plan(
    cfg: &ServeConfig,
    data: &[f32],
    codec: CodecId,
    bound: BoundSpec,
    policy: PolicyKind,
) -> ChunkPlan {
    let compressor = compressor_of(codec).unwrap_or(Compressor::Sz);
    let plan = build_policy(policy, compressor, bound, cfg.chip, CostModel::default())
        .plan(data, 0);
    if compressor_of(plan.codec).is_none() {
        ChunkPlan { codec, ..plan }
    } else {
        plan
    }
}

/// Compress `data` exactly as the service would: policy-planned, then the
/// serial codec path (the same call the one-shot CLI `compress` makes, so
/// fixed-policy output is byte-identical to `lcpio-cli compress`).
/// Returns the container bytes, the codec actually used, the planned
/// frequency, and the codec stats.
///
/// Public because it is the *reference implementation* the integration
/// tests compare socket traffic against.
pub fn plan_and_compress(
    cfg: &ServeConfig,
    data: &[f32],
    dims: &[usize],
    codec: CodecId,
    bound: BoundSpec,
    policy: PolicyKind,
) -> Result<(Vec<u8>, CodecId, f64, CodecStats), lcpio_codec::CodecError> {
    let plan = resolve_plan(cfg, data, codec, bound, policy);
    let backend = registry().by_name(plan.codec.name()).expect("planned codec is registered");
    let encoded = backend.compress(data, dims, plan.bound)?;
    Ok((encoded.bytes, plan.codec, plan.f_ghz, encoded.stats))
}

fn execute(cfg: &ServeConfig, sz: &SzCodec, zfp: &ZfpCodec, req: &Request) -> Response {
    match req.op {
        Op::Compress => execute_compress(cfg, sz, zfp, req),
        Op::Decompress => execute_decompress(cfg, sz, zfp, req),
        Op::Info => execute_info(req),
        // Control ops are answered inline by the reader; answering here
        // too keeps `execute` total.
        Op::Ping | Op::Shutdown => Response::of_status(req.id, protocol::status::OK, ""),
    }
}

fn shard_backend<'a>(sz: &'a SzCodec, zfp: &'a ZfpCodec, codec: CodecId) -> &'a dyn Codec {
    match codec {
        CodecId::Zfp => zfp,
        _ => sz,
    }
}

fn execute_compress(cfg: &ServeConfig, sz: &SzCodec, zfp: &ZfpCodec, req: &Request) -> Response {
    let _span = trace::span("serve.compress");
    let data = match req.elements() {
        Ok(d) => d,
        Err(e) => return Response::of_status(req.id, e.status(), e.to_string()),
    };
    if data.is_empty() {
        return Response::of_status(req.id, protocol::status::BAD_REQUEST, "empty field");
    }
    let codec = req.codec.unwrap_or(cfg.default_codec);
    let bound = req.bound.unwrap_or(cfg.default_bound);
    let policy = req.policy.unwrap_or(cfg.default_policy);
    let plan = resolve_plan(cfg, &data, codec, bound, policy);
    let encoded = match shard_backend(sz, zfp, plan.codec).compress(&data, &req.dims, plan.bound) {
        Ok(e) => e,
        Err(e) => return Response::of_status(req.id, protocol::status::CODEC, e.to_string()),
    };
    let energy_uj = modeled_energy_uj(cfg, plan.codec, plan.f_ghz, &encoded.stats, false);
    Response {
        id: req.id,
        status: protocol::status::OK,
        latency_us: 0,
        energy_uj,
        message: String::new(),
        dims: Vec::new(),
        codec: Some(plan.codec),
        payload: encoded.bytes,
    }
}

fn execute_decompress(cfg: &ServeConfig, sz: &SzCodec, zfp: &ZfpCodec, req: &Request) -> Response {
    let _span = trace::span("serve.decompress");
    let bytes = &req.payload;
    if is_stream_container(bytes) {
        return match lcpio_core::pipeline::decode_stream(bytes) {
            Ok(data) => {
                let n = data.len();
                elements_response(req.id, &data, vec![n], 0)
            }
            Err(e) => Response::of_status(req.id, protocol::status::CODEC, e.to_string()),
        };
    }
    let (registered, _) = match registry().by_magic(bytes) {
        Ok(hit) => hit,
        Err(e) => return Response::of_status(req.id, protocol::status::CODEC, e.to_string()),
    };
    let codec_id =
        if registered.name() == "zfp" { CodecId::Zfp } else { CodecId::Sz };
    let legacy = if lcpio_codec::wire::is_wire(bytes) {
        match lcpio_codec::wire::unwrap(bytes) {
            Ok(l) => l,
            Err(e) => return Response::of_status(req.id, protocol::status::CODEC, e.to_string()),
        }
    } else {
        bytes.clone()
    };
    match shard_backend(sz, zfp, codec_id).decompress(&legacy, 1) {
        Ok((data, dims)) => {
            // Decompression work is modeled from what is observable here:
            // the element count and the container size (no per-stream
            // stats survive decode).
            let stats = CodecStats {
                elements: data.len() as u64,
                input_bytes: (data.len() * 4) as u64,
                output_bytes: req.payload.len() as u64,
                literal_elements: 0,
                coded_bits: (req.payload.len() * 8) as u64,
            };
            let f_max = Machine::for_chip(cfg.chip).cpu.f_max_ghz;
            let energy_uj = modeled_energy_uj(cfg, codec_id, f_max, &stats, true);
            elements_response(req.id, &data, dims, energy_uj)
        }
        Err(e) => Response::of_status(req.id, protocol::status::CODEC, e.to_string()),
    }
}

fn execute_info(req: &Request) -> Response {
    let _span = trace::span("serve.info");
    let bytes = &req.payload;
    let description = if bytes.len() < 4 {
        return Response::of_status(
            req.id,
            protocol::status::BAD_REQUEST,
            "container too short (need at least a 4-byte magic)",
        );
    } else if bytes[..4] == lcpio_core::pipeline::STREAM_MAGIC {
        "streaming pipeline container (LCS1)".to_string()
    } else if is_stream_container(bytes) {
        "LCW1 wire envelope (LCS1 streaming container)".to_string()
    } else {
        match registry().describe(bytes) {
            Some(d) => d.to_string(),
            None => {
                return Response::of_status(
                    req.id,
                    protocol::status::BAD_REQUEST,
                    "unrecognized container magic",
                )
            }
        }
    };
    let mut resp = Response::of_status(req.id, protocol::status::OK, String::new());
    resp.message = format!("{description}, {} bytes", bytes.len());
    resp
}

fn elements_response(id: u64, data: &[f32], dims: Vec<usize>, energy_uj: u64) -> Response {
    let mut payload = Vec::with_capacity(data.len() * 4);
    for &v in data {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    Response {
        id,
        status: protocol::status::OK,
        latency_us: 0,
        energy_uj,
        message: String::new(),
        dims,
        codec: None,
        payload,
    }
}

/// Price one request's compute phase on the configured chip at the
/// planned frequency. Reported in whole microjoules; the NFS write phase
/// is not included (the service returns bytes to the client instead of
/// writing them).
fn modeled_energy_uj(
    cfg: &ServeConfig,
    codec: CodecId,
    f_ghz: f64,
    stats: &CodecStats,
    decompress: bool,
) -> u64 {
    let Some(compressor) = compressor_of(codec) else { return 0 };
    let model = CostModel::default();
    let profile = if decompress {
        model.decompression_profile(compressor, stats, 1.0)
    } else {
        model.compression_profile(compressor, stats, 1.0)
    };
    let machine = Machine::for_chip(cfg.chip);
    let f = f_ghz.clamp(machine.cpu.f_min_ghz, machine.cpu.f_max_ghz);
    (simulate(&machine, f, &profile).energy_j * 1e6).round() as u64
}

/// True if `bytes` are an `LCS1` streaming container, legacy or wrapped
/// in an `LCW1` envelope (the same sniff the CLI decode path uses).
fn is_stream_container(bytes: &[u8]) -> bool {
    if bytes.len() >= 4 && bytes[..4] == lcpio_core::pipeline::STREAM_MAGIC {
        return true;
    }
    lcpio_wire::Envelope::sniff(bytes)
        && lcpio_wire::Envelope::parse(bytes)
            .map(|env| env.container == lcpio_core::pipeline::STREAM_MAGIC)
            .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn tcp_server(cfg: ServeConfig) -> Server {
        Server::bind(&Endpoint::Tcp("127.0.0.1:0".to_string()), cfg).expect("bind")
    }

    #[test]
    fn ping_compress_decompress_roundtrip() {
        let server = tcp_server(ServeConfig::default());
        let mut client = Client::connect(server.endpoint()).expect("connect");
        assert!(client.ping().expect("ping"));

        let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
        let comp = client.compress(&data, &[4096], Default::default()).expect("compress");
        assert!(comp.is_ok(), "{}", comp.message);
        assert_eq!(comp.codec, Some(CodecId::Sz));
        assert!(comp.latency_us > 0);
        assert!(comp.energy_uj > 0);

        let back = client.decompress(&comp.payload).expect("decompress");
        assert!(back.is_ok(), "{}", back.message);
        assert_eq!(back.dims, vec![4096]);
        let restored = back.elements().expect("elements");
        assert!(restored.iter().zip(&data).all(|(r, x)| (r - x).abs() <= 1e-3 * 1.001));

        let info = client.info(&comp.payload).expect("info");
        assert!(info.is_ok());
        assert!(info.message.contains("bytes"));

        client.shutdown().expect("shutdown");
        let stats = server.wait();
        assert_eq!(stats.compress, 1);
        assert_eq!(stats.decompress, 1);
        assert_eq!(stats.info, 1);
        assert_eq!(stats.ping, 1);
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn fixed_policy_socket_output_matches_reference() {
        let cfg = ServeConfig::default();
        let server = tcp_server(cfg);
        let mut client = Client::connect(server.endpoint()).expect("connect");
        let data: Vec<f32> = (0..2048).map(|i| (i as f32 * 0.02).cos()).collect();
        let resp = client.compress(&data, &[2048], Default::default()).expect("compress");
        assert!(resp.is_ok());
        let (reference, codec, _, _) = plan_and_compress(
            &cfg,
            &data,
            &[2048],
            CodecId::Sz,
            BoundSpec::Absolute(1e-3),
            PolicyKind::Fixed,
        )
        .expect("reference");
        assert_eq!(resp.payload, reference);
        assert_eq!(resp.codec, Some(codec));
        server.shutdown();
        server.wait();
    }

    #[test]
    fn server_defaults_apply_when_request_omits_fields() {
        let cfg = ServeConfig {
            default_codec: CodecId::Zfp,
            default_bound: BoundSpec::Absolute(1e-2),
            ..ServeConfig::default()
        };
        let server = tcp_server(cfg);
        let mut client = Client::connect(server.endpoint()).expect("connect");
        let data: Vec<f32> = (0..1024).map(|i| (i as f32 * 0.03).sin()).collect();
        let mut req = Request::compress(
            1,
            &data,
            &[1024],
            CodecId::Sz,
            BoundSpec::Absolute(1e-3),
            PolicyKind::Fixed,
        );
        req.codec = None;
        req.bound = None;
        req.policy = None;
        let resp = client.call(&req).expect("call");
        assert!(resp.is_ok(), "{}", resp.message);
        assert_eq!(resp.codec, Some(CodecId::Zfp));
        server.shutdown();
        server.wait();
    }
}
