//! Compression as a service: a long-running daemon that accepts
//! concurrent `compress` / `decompress` / `info` requests over Unix or
//! TCP sockets, schedules them onto a sharded worker pool with bounded
//! admission queues, and prices every request's energy through the
//! fitted power models — ROADMAP item 2, turning the one-shot CLI's
//! per-checkpoint energy/latency trade-off into a live per-request
//! scheduling decision.
//!
//! The wire surface is the `LCRQ`/`LCRS` frame pair specified in
//! `PROTOCOL.md` at the repo root and implemented in [`protocol`]: the
//! LCW1 envelope's varint + TLV building blocks, the same hard ceilings
//! and typed-error stance, with compressed payloads being ordinary
//! self-describing containers (LCW1 or legacy). [`server`] hosts the
//! daemon, [`client`] the blocking client API, and [`driver`] the
//! mixed-workload load generator behind the `ext_serve` bench and the
//! CI integration leg.
//!
//! # Examples
//!
//! ```
//! use lcpio_serve::{drive, Endpoint, ServeConfig, Server, WorkloadConfig};
//!
//! let server = Server::bind(
//!     &Endpoint::Tcp("127.0.0.1:0".to_string()),
//!     ServeConfig { workers: 2, ..ServeConfig::default() },
//! ).unwrap();
//!
//! let report = drive(
//!     server.endpoint(),
//!     &WorkloadConfig { requests: 12, clients: 2, chunk_elements: 2048, ..Default::default() },
//! ).unwrap();
//! assert_eq!(report.ok, 12);
//! assert!(report.req_per_s > 0.0);
//!
//! server.shutdown();
//! let stats = server.wait();
//! assert_eq!(stats.requests, 12);
//! ```

#![deny(missing_docs)]

pub mod client;
pub mod driver;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, CompressOptions};
pub use driver::{drive, WorkloadConfig, WorkloadReport};
pub use protocol::{Op, ProtoError, Request, Response};
pub use server::{
    plan_and_compress, Endpoint, FaultPlan, ServeConfig, Server, ServerHandle, StatsSnapshot,
};
