//! Mixed-workload client driver: the load generator behind
//! `lcpio-cli serve --drive`, the `ext_serve` bench, and the CI serve
//! integration leg.
//!
//! The workload interleaves compress, decompress, and info requests over
//! the CESM+HACC chunk stream from `lcpio_core::policy` — the same
//! mixed-content regime the adaptive policy is evaluated on — issued from
//! several concurrent client connections. The report carries sustained
//! request throughput and client-observed p50/p99 latency.

use std::sync::Mutex;
use std::time::Instant;

use lcpio_codec::policy::CodecId;
use lcpio_codec::{registry, BoundSpec};
use lcpio_core::policy::interleaved_cesm_hacc;
use lcpio_core::PolicyKind;

use crate::client::{Client, ClientError, CompressOptions};
use crate::server::Endpoint;

/// Shape of the driven workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Total requests across all clients.
    pub requests: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Elements per request chunk.
    pub chunk_elements: usize,
    /// Codec requested on compress requests.
    pub codec: CodecId,
    /// Error bound requested on compress requests.
    pub bound: BoundSpec,
    /// Chunk policy requested on compress requests.
    pub policy: PolicyKind,
    /// Workload RNG seed (chunk contents are deterministic in it).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            requests: 64,
            clients: 4,
            chunk_elements: 16 * 1024,
            codec: CodecId::Sz,
            bound: BoundSpec::Absolute(1e-3),
            policy: PolicyKind::Fixed,
            seed: 42,
        }
    }
}

/// What the driver observed, aggregated across every client.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkloadReport {
    /// Requests issued.
    pub requests: usize,
    /// Requests answered `OK`.
    pub ok: usize,
    /// Requests rejected `BUSY` by admission control.
    pub busy: usize,
    /// Requests answered with any other non-`OK` status.
    pub errors: usize,
    /// Wall-clock for the whole run, seconds.
    pub wall_s: f64,
    /// Sustained throughput: completed requests per second.
    pub req_per_s: f64,
    /// Median client-observed request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile client-observed request latency, microseconds.
    pub p99_us: u64,
    /// Request payload bytes sent.
    pub bytes_out: u64,
    /// Response payload bytes received.
    pub bytes_in: u64,
    /// Total modeled energy the server reported, microjoules.
    pub energy_uj: u64,
}

/// The number of distinct chunks the workload cycles through.
const WORKLOAD_CHUNKS: usize = 8;

/// Drive the mixed workload against a running server and aggregate the
/// outcome. Request `k` is: every third request a decompress of a
/// pre-compressed container, every seventh an info probe, the rest
/// compress requests over alternating CESM/HACC chunks.
pub fn drive(endpoint: &Endpoint, cfg: &WorkloadConfig) -> Result<WorkloadReport, ClientError> {
    let elements = interleaved_cesm_hacc(cfg.chunk_elements, WORKLOAD_CHUNKS, cfg.seed);
    let chunks: Vec<&[f32]> = elements.chunks(cfg.chunk_elements).collect();
    // Pre-compressed containers for the decompress share of the mix.
    let backend = registry().by_name(cfg.codec.name()).expect("driver codec registered");
    let containers: Vec<Vec<u8>> = chunks
        .iter()
        .map(|c| {
            backend.compress(c, &[c.len()], cfg.bound).expect("driver pre-compress").bytes
        })
        .collect();

    let clients = cfg.clients.max(1);
    let opts = CompressOptions {
        codec: Some(cfg.codec),
        bound: Some(cfg.bound),
        policy: Some(cfg.policy),
    };
    /// One completed request: (latency µs, status, energy µJ, bytes out, bytes in).
    type Outcome = (u64, u8, u64, u64, u64);
    let failures: Mutex<Option<ClientError>> = Mutex::new(None);
    let outcomes: Mutex<Vec<Outcome>> = Mutex::new(Vec::with_capacity(cfg.requests));

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..clients {
            let chunks = &chunks;
            let containers = &containers;
            let failures = &failures;
            let outcomes = &outcomes;
            scope.spawn(move || {
                let mut client = match Client::connect(endpoint) {
                    Ok(c) => c,
                    Err(e) => {
                        failures.lock().expect("driver lock").get_or_insert(e);
                        return;
                    }
                };
                let mut local = Vec::new();
                for k in (worker..cfg.requests).step_by(clients) {
                    let chunk = chunks[k % chunks.len()];
                    let container = &containers[k % containers.len()];
                    let req_t0 = Instant::now();
                    let result = if k % 3 == 2 {
                        client.decompress(container)
                    } else if k % 7 == 6 {
                        client.info(container)
                    } else {
                        client.compress(chunk, &[chunk.len()], opts)
                    };
                    let latency_us = req_t0.elapsed().as_micros() as u64;
                    match result {
                        Ok(resp) => local.push((
                            latency_us,
                            resp.status,
                            resp.energy_uj,
                            resp.payload.len() as u64,
                            if k % 3 == 2 || k % 7 == 6 {
                                container.len() as u64
                            } else {
                                (chunk.len() * 4) as u64
                            },
                        )),
                        Err(e) => {
                            failures.lock().expect("driver lock").get_or_insert(e);
                            return;
                        }
                    }
                }
                outcomes.lock().expect("driver lock").extend(local);
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);

    if let Some(e) = failures.into_inner().expect("driver lock") {
        return Err(e);
    }
    let outcomes = outcomes.into_inner().expect("driver lock");

    let mut latencies: Vec<u64> = outcomes.iter().map(|o| o.0).collect();
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    let ok = outcomes.iter().filter(|o| o.1 == crate::protocol::status::OK).count();
    let busy = outcomes.iter().filter(|o| o.1 == crate::protocol::status::BUSY).count();
    Ok(WorkloadReport {
        requests: outcomes.len(),
        ok,
        busy,
        errors: outcomes.len() - ok - busy,
        wall_s,
        req_per_s: outcomes.len() as f64 / wall_s,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        bytes_out: outcomes.iter().map(|o| o.4).sum(),
        bytes_in: outcomes.iter().map(|o| o.3).sum(),
        energy_uj: outcomes.iter().map(|o| o.2).sum(),
    })
}
