//! PROTOCOL.md must match the implementation: every operation, TLV tag,
//! and status code in the spec's tables exists in `protocol.rs` under the
//! same name and number, and vice versa — drift in either direction
//! fails here. The worked-example hexdump is also decoded and checked.

use std::collections::BTreeSet;

use lcpio_serve::protocol::{self, op, reqtag, resptag, status, Op, Request, Response};

fn spec_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../PROTOCOL.md");
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Extract `(code, NAME)` pairs from the markdown table rows of the
/// section introduced by `heading` (up to the next `## ` heading). Rows
/// look like `` | `0x01` | OP | ... | `` or `` | `1` | COMPRESS | ... | ``.
fn table_pairs(spec: &str, heading: &str) -> BTreeSet<(u8, String)> {
    let start = spec
        .find(heading)
        .unwrap_or_else(|| panic!("PROTOCOL.md is missing the `{heading}` section"));
    let body = &spec[start + heading.len()..];
    let end = body.find("\n## ").unwrap_or(body.len());
    let mut pairs = BTreeSet::new();
    for line in body[..end].lines() {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        // A data row is `| cell | cell | ... |` → first and last splits empty.
        if cells.len() < 4 || !cells[0].is_empty() {
            continue;
        }
        let code_cell = cells[1].trim_matches('`');
        let code = if let Some(hex) = code_cell.strip_prefix("0x") {
            u8::from_str_radix(hex, 16).ok()
        } else {
            code_cell.parse::<u8>().ok()
        };
        let Some(code) = code else { continue };
        let name = cells[2].trim_matches('`');
        if !name.is_empty() && name.chars().all(|c| c.is_ascii_uppercase() || c == '_') {
            pairs.insert((code, name.to_string()));
        }
    }
    assert!(!pairs.is_empty(), "no parseable rows under `{heading}` — table format drifted?");
    pairs
}

fn code_pairs(all: &[(u8, &str)]) -> BTreeSet<(u8, String)> {
    all.iter().map(|(c, n)| (*c, n.to_string())).collect()
}

#[test]
fn operations_match_spec() {
    let spec = table_pairs(&spec_text(), "## Operations");
    assert_eq!(spec, code_pairs(op::ALL), "spec vs protocol::op::ALL");
}

#[test]
fn request_fields_match_spec() {
    let spec = table_pairs(&spec_text(), "## Request fields");
    assert_eq!(spec, code_pairs(reqtag::ALL), "spec vs protocol::reqtag::ALL");
}

#[test]
fn response_fields_match_spec() {
    let spec = table_pairs(&spec_text(), "## Response fields");
    assert_eq!(spec, code_pairs(resptag::ALL), "spec vs protocol::resptag::ALL");
}

#[test]
fn status_codes_match_spec() {
    let spec = table_pairs(&spec_text(), "## Status codes");
    assert_eq!(spec, code_pairs(status::ALL), "spec vs protocol::status::ALL");
}

/// Pull every ```text fenced hexdump out of the worked-example section.
fn worked_example_frames(spec: &str) -> Vec<Vec<u8>> {
    let start = spec.find("## Worked example").expect("worked example section");
    let body = &spec[start..];
    let end = body[2..].find("\n## ").map(|i| i + 2).unwrap_or(body.len());
    let mut frames = Vec::new();
    let mut rest = &body[..end];
    while let Some(open) = rest.find("```text") {
        let after = &rest[open + 7..];
        let close = after.find("```").expect("unclosed fence in worked example");
        let hex: Vec<u8> = after[..close]
            .split_whitespace()
            .map(|tok| {
                u8::from_str_radix(tok, 16)
                    .unwrap_or_else(|e| panic!("bad hex byte {tok:?} in worked example: {e}"))
            })
            .collect();
        frames.push(hex);
        rest = &after[close + 3..];
    }
    assert_eq!(frames.len(), 2, "expected a request and a response hexdump");
    frames
}

#[test]
fn worked_example_decodes_as_documented() {
    let frames = worked_example_frames(&spec_text());

    let (req, used) = Request::decode(&frames[0]).expect("worked-example request decodes");
    assert_eq!(used, frames[0].len());
    assert_eq!(req.op, Op::Ping);
    assert_eq!(req.id, 42);
    assert!(req.payload.is_empty());
    // The spec's bytes are exactly what the implementation emits.
    assert_eq!(Request::control(42, Op::Ping).encode(), frames[0]);

    let (resp, used) = Response::decode(&frames[1]).expect("worked-example response decodes");
    assert_eq!(used, frames[1].len());
    assert_eq!(resp.status, status::OK);
    assert_eq!(resp.id, 42);
    assert!(resp.payload.is_empty());
    assert_eq!(Response::of_status(42, status::OK, "").encode(), frames[1]);
}

#[test]
fn spec_documents_the_live_constants() {
    let spec = spec_text();
    for needle in [
        "`LCRQ`",
        "`LCRS`",
        &format!("2^{}", protocol::MAX_HEADER_LEN.trailing_zeros()),
        &format!("2^{}", protocol::MAX_PAYLOAD_LEN.trailing_zeros()),
        &format!("`MAX_RANK` | {}", protocol::MAX_RANK),
    ] {
        assert!(spec.contains(needle.as_ref() as &str), "PROTOCOL.md lost mention of {needle}");
    }
}
