//! Failure injection for the service path: disconnects, forged and
//! truncated frames, oversized claims, slow-loris stalls, queue-full
//! admission rejection, and drain-with-in-flight-work — every abnormal
//! path must end in a typed response or a clean close, never a hang or a
//! crash.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use lcpio_serve::protocol::{self, status, Op, Request, Response};
use lcpio_serve::{Client, CompressOptions, Endpoint, FaultPlan, ServeConfig, Server};

fn tcp_server(cfg: ServeConfig) -> (Server, String) {
    let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".to_string()), cfg).expect("bind");
    let addr = match server.endpoint() {
        Endpoint::Tcp(a) => a.clone(),
        other => panic!("unexpected endpoint {other:?}"),
    };
    (server, addr)
}

fn raw_conn(addr: &str) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    s
}

/// Read exactly `n` response frames off a raw stream.
fn read_responses(stream: &mut TcpStream, n: usize) -> Vec<Response> {
    let mut buf = Vec::new();
    let mut out = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    while out.len() < n {
        if let Ok(Some(len)) = protocol::frame_len(&buf) {
            if buf.len() >= len {
                let frame: Vec<u8> = buf.drain(..len).collect();
                out.push(Response::decode(&frame).expect("response decode").0);
                continue;
            }
        }
        let got = stream.read(&mut chunk).expect("read");
        assert!(got > 0, "connection closed after {} of {} responses", out.len(), n);
        buf.extend_from_slice(&chunk[..got]);
    }
    out
}

fn sample_field(n: usize) -> Vec<f32> {
    (0..n).map(|i| (i as f32 * 0.02).sin()).collect()
}

#[test]
fn mid_request_disconnect_is_tolerated() {
    let cfg = ServeConfig {
        workers: 1,
        fault: FaultPlan { worker_delay_ms: 150 },
        ..ServeConfig::default()
    };
    let (server, addr) = tcp_server(cfg);

    // Send a whole compress request, then vanish while it is in flight.
    {
        let data = sample_field(1024);
        let req = Request::compress(
            7,
            &data,
            &[1024],
            lcpio_codec::CodecId::Sz,
            lcpio_codec::BoundSpec::Absolute(1e-3),
            lcpio_core::PolicyKind::Fixed,
        );
        let mut s = raw_conn(&addr);
        s.write_all(&req.encode()).expect("write");
        // Dropping the stream closes the socket with the response pending.
    }

    // The server keeps serving; the orphaned request still executes.
    let t0 = Instant::now();
    loop {
        let stats = server.stats();
        if stats.compress == 1 {
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(10), "orphaned request never completed");
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut client = Client::connect_tcp(&addr).expect("second connection");
    assert!(client.ping().expect("ping after disconnect"));
    server.shutdown();
    server.wait();
}

#[test]
fn forged_magic_gets_typed_error_then_close() {
    let (server, addr) = tcp_server(ServeConfig::default());
    let mut s = raw_conn(&addr);
    s.write_all(b"NOPE\x01\x00\x00\x00garbage").expect("write");
    let resp = &read_responses(&mut s, 1)[0];
    assert_eq!(resp.status, status::MALFORMED);
    assert!(resp.message.contains("magic"), "{}", resp.message);
    // After a frame whose boundary can't be trusted, the server closes.
    let mut rest = Vec::new();
    assert_eq!(s.read_to_end(&mut rest).expect("EOF"), 0);
    server.shutdown();
    server.wait();
}

#[test]
fn truncated_tlv_in_sound_frame_keeps_connection_usable() {
    let (server, addr) = tcp_server(ServeConfig::default());
    let mut s = raw_conn(&addr);

    // Outer lengths are consistent (frame boundary knowable), but the TLV
    // block inside is cut short: value claims 5 bytes, 2 present.
    let mut frame = b"LCRQ\x01\x00".to_vec();
    frame.push(4); // header length
    frame.extend_from_slice(&[0x01, 5, 0xAA, 0xBB]);
    frame.push(0); // payload length
    s.write_all(&frame).expect("write");
    let resp = &read_responses(&mut s, 1)[0];
    assert_eq!(resp.status, status::MALFORMED);

    // Same connection, well-formed follow-up: still served.
    s.write_all(&Request::control(9, Op::Ping).encode()).expect("write");
    let resp = &read_responses(&mut s, 1)[0];
    assert_eq!(resp.status, status::OK);
    assert_eq!(resp.id, 9);
    server.shutdown();
    server.wait();
}

#[test]
fn oversized_claims_are_limit_errors() {
    // Forged header length beyond the protocol ceiling.
    {
        let (server, addr) = tcp_server(ServeConfig::default());
        let mut s = raw_conn(&addr);
        let mut frame = b"LCRQ\x01\x00".to_vec();
        // varint for MAX_HEADER_LEN + 1
        let mut v = (protocol::MAX_HEADER_LEN + 1) as u64;
        while v >= 0x80 {
            frame.push((v as u8 & 0x7f) | 0x80);
            v >>= 7;
        }
        frame.push(v as u8);
        s.write_all(&frame).expect("write");
        let resp = &read_responses(&mut s, 1)[0];
        assert_eq!(resp.status, status::LIMIT);
        let mut rest = Vec::new();
        assert_eq!(s.read_to_end(&mut rest).expect("EOF"), 0);
        server.shutdown();
        server.wait();
    }
    // Payload larger than the server's configured admission cap.
    {
        let cfg = ServeConfig { max_payload: 4096, ..ServeConfig::default() };
        let (server, addr) = tcp_server(cfg);
        let mut s = raw_conn(&addr);
        let data = sample_field(4096); // 16 KiB > 4 KiB cap
        let req = Request::compress(
            3,
            &data,
            &[4096],
            lcpio_codec::CodecId::Sz,
            lcpio_codec::BoundSpec::Absolute(1e-3),
            lcpio_core::PolicyKind::Fixed,
        );
        s.write_all(&req.encode()).expect("write");
        let resp = &read_responses(&mut s, 1)[0];
        assert_eq!(resp.status, status::LIMIT);
        assert!(resp.message.contains("payload cap"), "{}", resp.message);
        server.shutdown();
        server.wait();
    }
}

#[test]
fn slow_loris_partial_header_hits_read_timeout() {
    let cfg = ServeConfig { read_timeout: Duration::from_millis(200), ..ServeConfig::default() };
    let (server, addr) = tcp_server(cfg);
    let mut s = raw_conn(&addr);
    // Dribble out a frame prefix and then stall forever.
    s.write_all(b"LCRQ\x01").expect("write");
    let t0 = Instant::now();
    let mut rest = Vec::new();
    // The server must close the connection (EOF), not wait for the rest.
    assert_eq!(s.read_to_end(&mut rest).expect("EOF"), 0);
    assert!(rest.is_empty(), "no response is owed on a frame that never finished");
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "slow-loris connection survived far past the read timeout"
    );
    server.shutdown();
    server.wait();
}

#[test]
fn queue_full_is_a_typed_busy_error() {
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 1,
        fault: FaultPlan { worker_delay_ms: 500 },
        ..ServeConfig::default()
    };
    let (server, addr) = tcp_server(cfg);
    let mut s = raw_conn(&addr);
    let data = sample_field(512);
    let mut batch = Vec::new();
    for id in 1..=3u64 {
        batch.extend_from_slice(
            &Request::compress(
                id,
                &data,
                &[512],
                lcpio_codec::CodecId::Sz,
                lcpio_codec::BoundSpec::Absolute(1e-3),
                lcpio_core::PolicyKind::Fixed,
            )
            .encode(),
        );
    }
    // One write: the worker is pinned for 500 ms per request, the queue
    // holds one, so of three pipelined requests at least one must be
    // rejected with the typed busy status — and responses still arrive in
    // request order.
    s.write_all(&batch).expect("write");
    let resps = read_responses(&mut s, 3);
    assert_eq!(resps.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 2, 3]);
    let busy = resps.iter().filter(|r| r.status == status::BUSY).count();
    let ok = resps.iter().filter(|r| r.status == status::OK).count();
    assert!(busy >= 1, "expected at least one BUSY rejection, got {resps:?}");
    assert_eq!(busy + ok, 3, "unexpected statuses in {resps:?}");
    for r in &resps {
        if r.status == status::BUSY {
            assert!(r.message.contains("retry"), "{}", r.message);
        }
    }
    server.shutdown();
    let stats = server.wait();
    assert_eq!(stats.busy_rejected as usize, busy);
}

#[test]
fn drain_completes_in_flight_work_and_rejects_new_requests() {
    let cfg = ServeConfig {
        workers: 1,
        fault: FaultPlan { worker_delay_ms: 300 },
        ..ServeConfig::default()
    };
    let (server, addr) = tcp_server(cfg);
    let mut s = raw_conn(&addr);
    let data = sample_field(512);
    let compress = |id: u64| {
        Request::compress(
            id,
            &data,
            &[512],
            lcpio_codec::CodecId::Sz,
            lcpio_codec::BoundSpec::Absolute(1e-3),
            lcpio_core::PolicyKind::Fixed,
        )
        .encode()
    };
    // Pipelined in one write: slow compress, shutdown, another compress.
    let mut batch = compress(1);
    batch.extend_from_slice(&Request::control(2, Op::Shutdown).encode());
    batch.extend_from_slice(&compress(3));
    s.write_all(&batch).expect("write");

    // In-flight work completes and flushes before the drain finishes.
    let first_two = read_responses(&mut s, 2);
    assert_eq!(first_two[0].id, 1);
    assert_eq!(first_two[0].status, status::OK, "{}", first_two[0].message);
    assert!(!first_two[0].payload.is_empty(), "in-flight compress result was dropped");
    assert_eq!(first_two[1].id, 2);
    assert_eq!(first_two[1].status, status::OK);

    // The request behind the shutdown is either rejected with the typed
    // draining status or the connection closes cleanly — never served.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let third = loop {
        if let Ok(Some(len)) = protocol::frame_len(&buf) {
            if buf.len() >= len {
                break Some(Response::decode(&buf[..len]).expect("decode").0);
            }
        }
        match s.read(&mut chunk) {
            Ok(0) => break None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break None,
        }
    };
    if let Some(resp) = third {
        assert_eq!(resp.status, status::SHUTTING_DOWN, "{resp:?}");
        assert_eq!(resp.id, 3);
    }

    let stats = server.wait();
    assert_eq!(stats.compress, 1, "exactly the pre-drain compress ran");
}

#[test]
fn unknown_op_and_bad_request_leave_connection_usable() {
    let (server, addr) = tcp_server(ServeConfig::default());
    let mut client = Client::connect_tcp(&addr).expect("connect");

    // Dims that do not match the payload: typed BAD_REQUEST.
    let mut req = Request::compress(
        5,
        &sample_field(256),
        &[256],
        lcpio_codec::CodecId::Sz,
        lcpio_codec::BoundSpec::Absolute(1e-3),
        lcpio_core::PolicyKind::Fixed,
    );
    req.dims = vec![999];
    let resp = client.call(&req).expect("call");
    assert_eq!(resp.status, status::BAD_REQUEST);
    assert!(resp.message.contains("dims"), "{}", resp.message);

    // Decompress of bytes that are no known container: typed CODEC error.
    let resp = client.decompress(b"XXXXnot a container").expect("call");
    assert_eq!(resp.status, status::CODEC);

    // The same connection still serves real work afterwards.
    let resp = client
        .compress(&sample_field(256), &[256], CompressOptions::default())
        .expect("compress");
    assert_eq!(resp.status, status::OK);
    server.shutdown();
    server.wait();
}
