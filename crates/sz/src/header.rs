//! Little-endian serialization helpers and the compressed-stream header.
//!
//! The format is deliberately explicit (no serde) so the byte layout is
//! stable and inspectable:
//!
//! ```text
//! magic  b"SZL1"
//! u8     flags (bit0: payload LZSS-compressed)
//! u32    payload length
//! ...    payload (header body + sections, possibly LZSS-wrapped)
//! ```

use crate::SzError;

/// Stream magic.
pub const MAGIC: [u8; 4] = *b"SZL1";

/// Flag bit: payload is LZSS-compressed.
pub const FLAG_LOSSLESS: u8 = 1;

/// Cursor-style little-endian writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume into bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append a u8.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a u32 (LE).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a u64 (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an f32 (LE bits).
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an f64 (LE bits).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed byte section.
    pub fn section(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.bytes(b);
    }
}

/// Cursor-style little-endian reader.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SzError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(SzError::Corrupt("section length overflows cursor"))?;
        if end > self.buf.len() {
            return Err(SzError::Corrupt("unexpected end of stream"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SzError> {
        self.take(n)
    }

    /// Read a u8.
    pub fn u8(&mut self) -> Result<u8, SzError> {
        Ok(self.take(1)?[0])
    }

    /// Read a u32 (LE).
    pub fn u32(&mut self) -> Result<u32, SzError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a u64 (LE).
    pub fn u64(&mut self) -> Result<u64, SzError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read an f32.
    pub fn f32(&mut self) -> Result<f32, SzError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read an f64.
    pub fn f64(&mut self) -> Result<f64, SzError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read a length-prefixed byte section.
    ///
    /// The claimed length is validated against the bytes actually remaining
    /// *before* it is narrowed to `usize`, so a forged 2^40 length can
    /// neither drive an oversized slice reservation on 64-bit targets nor
    /// silently truncate on 32-bit ones.
    pub fn section(&mut self) -> Result<&'a [u8], SzError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(SzError::Corrupt("section length exceeds remaining input"));
        }
        self.take(n as usize)
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEADBEEF);
        w.u64(u64::MAX - 3);
        w.f32(1.5);
        w.f64(-2.25e300);
        w.section(b"hello");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f32().unwrap(), 1.5);
        assert_eq!(r.f64().unwrap(), -2.25e300);
        assert_eq!(r.section().unwrap(), b"hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_an_error() {
        let mut w = Writer::new();
        w.u64(5);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..6]);
        assert!(r.u64().is_err());
    }

    #[test]
    fn section_with_bad_length_is_an_error() {
        let mut w = Writer::new();
        w.u64(1000); // claims 1000 bytes, provides none
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.section().is_err());
    }

    #[test]
    fn forged_huge_section_length_is_rejected_before_narrowing() {
        // Regression: a forged 2^40 section length used to be narrowed to
        // `usize` with `as` before any bounds check. The claim must be
        // validated as a u64 against the bytes actually remaining, so it
        // can neither reserve an absurd slice on 64-bit targets nor wrap
        // to a small in-bounds value on 32-bit ones.
        for forged in [1u64 << 40, u64::MAX, usize::MAX as u64, (u32::MAX as u64) + 1] {
            let mut w = Writer::new();
            w.u64(forged);
            w.bytes(&[0xAB; 32]); // far fewer bytes than claimed
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let err = r.section().expect_err("forged length must not parse");
            assert!(
                err.to_string().contains("section length exceeds remaining input"),
                "{err}"
            );
            // The cursor did not advance past the length prefix, so the
            // reader is still usable and no partial slice escaped.
            assert_eq!(r.remaining(), 32);
        }
    }
}
