//! Lorenzo predictors over reconstructed data.
//!
//! SZ predicts each value from already-*reconstructed* neighbours (not the
//! originals!) so the decompressor — which only has reconstructed values —
//! computes bit-identical predictions. Out-of-bounds neighbours are treated
//! as 0, matching SZ's behaviour on array borders.
//!
//! The d-dimensional Lorenzo predictor is the inclusion–exclusion sum of
//! the 2^d − 1 neighbours of the "lower corner" hypercube; it is exact for
//! polynomials of degree < d and extremely cheap, which is why it is SZ's
//! workhorse for smooth fields.

/// Order-1 1-D prediction: previous value.
#[inline]
pub fn lorenzo_1d(recon: &[f64], i: usize) -> f64 {
    if i >= 1 {
        recon[i - 1]
    } else {
        0.0
    }
}

/// Order-2 1-D prediction: linear extrapolation `2·r[i−1] − r[i−2]`.
#[inline]
pub fn lorenzo_1d_o2(recon: &[f64], i: usize) -> f64 {
    match i {
        0 => 0.0,
        1 => recon[0],
        _ => 2.0 * recon[i - 1] - recon[i - 2],
    }
}

/// 2-D Lorenzo prediction at row-major position (j, i) in an ny×nx grid.
#[inline]
pub fn lorenzo_2d(recon: &[f64], nx: usize, j: usize, i: usize) -> f64 {
    let at = |jj: isize, ii: isize| -> f64 {
        if jj < 0 || ii < 0 {
            0.0
        } else {
            recon[jj as usize * nx + ii as usize]
        }
    };
    let (j, i) = (j as isize, i as isize);
    at(j, i - 1) + at(j - 1, i) - at(j - 1, i - 1)
}

/// 3-D Lorenzo prediction at (k, j, i) in an nz×ny×nx grid.
#[inline]
pub fn lorenzo_3d(recon: &[f64], ny: usize, nx: usize, k: usize, j: usize, i: usize) -> f64 {
    let at = |kk: isize, jj: isize, ii: isize| -> f64 {
        if kk < 0 || jj < 0 || ii < 0 {
            0.0
        } else {
            recon[(kk as usize * ny + jj as usize) * nx + ii as usize]
        }
    };
    let (k, j, i) = (k as isize, j as isize, i as isize);
    at(k, j, i - 1) + at(k, j - 1, i) + at(k - 1, j, i)
        - at(k, j - 1, i - 1)
        - at(k - 1, j, i - 1)
        - at(k - 1, j - 1, i)
        + at(k - 1, j - 1, i - 1)
}

/// `out[idx] = row[i0 + idx] − row[i0 + idx − 1]` (left term 0 at i = 0).
#[inline]
fn diff_scan(row: &[f64], i0: usize, out: &mut [f64]) {
    let mut s = 0usize;
    if i0 == 0 {
        out[0] = row[0];
        s = 1;
    }
    for (idx, x) in out.iter_mut().enumerate().skip(s) {
        let i = i0 + idx;
        *x = row[i] - row[i - 1];
    }
}

/// Partial 3-D Lorenzo sums for row (k, j), columns `i0..i1`, written into
/// `out[..i1 − i0]`: every stencil term *except* the current row's left
/// neighbour. The full prediction at column `i` is
/// `out[i − i0] + recon[(k·ny + j)·nx + i − 1]` (left term 0 at i = 0).
///
/// The body is elementwise arithmetic over the previous row/plane — no
/// loop-carried dependence — so the compiler autovectorizes it; Lorenzo's
/// inherent serial scan is confined to the caller's single left-neighbour
/// add. The terms are associated differently than in [`lorenzo_3d`], so
/// predictions can differ by FP rounding; compressor and decompressor must
/// both use the same helper (they do), which keeps streams self-consistent.
#[allow(clippy::too_many_arguments)]
pub fn lorenzo_3d_row_partial(
    recon: &[f64],
    ny: usize,
    nx: usize,
    k: usize,
    j: usize,
    i0: usize,
    i1: usize,
    out: &mut [f64],
) {
    let n = i1 - i0;
    let out = &mut out[..n];
    if n == 0 {
        return;
    }
    let base = |kk: usize, jj: usize| (kk * ny + jj) * nx;
    match (j > 0, k > 0) {
        (false, false) => out.fill(0.0),
        (true, false) => diff_scan(&recon[base(k, j - 1)..][..nx], i0, out),
        (false, true) => diff_scan(&recon[base(k - 1, j)..][..nx], i0, out),
        (true, true) => {
            let u = &recon[base(k, j - 1)..][..nx]; // same plane, row above
            let p = &recon[base(k - 1, j)..][..nx]; // plane below, same row
            let d = &recon[base(k - 1, j - 1)..][..nx]; // plane below, row above
            let mut s = 0usize;
            if i0 == 0 {
                out[0] = u[0] + p[0] - d[0];
                s = 1;
            }
            for (idx, x) in out.iter_mut().enumerate().skip(s) {
                let i = i0 + idx;
                *x = (u[i] + p[i] - d[i]) - (u[i - 1] + p[i - 1] - d[i - 1]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lorenzo_1d_borders() {
        let r = [3.0, 5.0, 7.0];
        assert_eq!(lorenzo_1d(&r, 0), 0.0);
        assert_eq!(lorenzo_1d(&r, 1), 3.0);
        assert_eq!(lorenzo_1d(&r, 2), 5.0);
    }

    #[test]
    fn lorenzo_1d_o2_extrapolates_lines_exactly() {
        // r(i) = 2i + 1; prediction at i≥2 must be exact.
        let r: Vec<f64> = (0..10).map(|i| 2.0 * i as f64 + 1.0).collect();
        for i in 2..10 {
            assert_eq!(lorenzo_1d_o2(&r, i), r[i]);
        }
    }

    #[test]
    fn lorenzo_2d_exact_on_planes() {
        // v(j,i) = 3j + 2i + 1 is degree-1, so 2-D Lorenzo is exact away
        // from the borders.
        let (ny, nx) = (6, 7);
        let mut r = vec![0.0; ny * nx];
        for j in 0..ny {
            for i in 0..nx {
                r[j * nx + i] = 3.0 * j as f64 + 2.0 * i as f64 + 1.0;
            }
        }
        for j in 1..ny {
            for i in 1..nx {
                let p = lorenzo_2d(&r, nx, j, i);
                assert!((p - r[j * nx + i]).abs() < 1e-12, "({j},{i}) p={p}");
            }
        }
    }

    #[test]
    fn lorenzo_3d_exact_on_bilinear() {
        // Degree-2 terms like x·y are also captured by the 3-D stencil.
        let (nz, ny, nx) = (4, 5, 6);
        let mut r = vec![0.0; nz * ny * nx];
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    r[(k * ny + j) * nx + i] =
                        1.0 + 2.0 * k as f64 + 3.0 * j as f64 + 4.0 * i as f64
                            + 0.5 * (k * j) as f64;
                }
            }
        }
        for k in 1..nz {
            for j in 1..ny {
                for i in 1..nx {
                    let p = lorenzo_3d(&r, ny, nx, k, j, i);
                    let v = r[(k * ny + j) * nx + i];
                    assert!((p - v).abs() < 1e-9, "({k},{j},{i}) p={p} v={v}");
                }
            }
        }
    }

    #[test]
    fn row_partial_plus_left_matches_pointwise_stencil() {
        // partial + left must equal lorenzo_3d up to FP re-association.
        let (nz, ny, nx) = (3, 4, 9);
        let mut r = vec![0.0; nz * ny * nx];
        for (idx, v) in r.iter_mut().enumerate() {
            *v = ((idx as f64) * 0.37).sin() * 100.0 + idx as f64;
        }
        let mut rowp = vec![0.0; nx];
        for k in 0..nz {
            for j in 0..ny {
                // Exercise both full rows and segments (chunk interiors).
                for (i0, i1) in [(0usize, nx), (2, 7), (5, nx)] {
                    lorenzo_3d_row_partial(&r, ny, nx, k, j, i0, i1, &mut rowp);
                    for i in i0..i1 {
                        let left = if i > 0 { r[(k * ny + j) * nx + i - 1] } else { 0.0 };
                        let got = rowp[i - i0] + left;
                        let want = lorenzo_3d(&r, ny, nx, k, j, i);
                        assert!(
                            (got - want).abs() <= 1e-9 * (1.0 + want.abs()),
                            "(k={k},j={j},i={i}) got={got} want={want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lorenzo_3d_borders_use_zero() {
        let r = vec![1.0; 8]; // 2x2x2 of ones
        // At the origin all neighbours are out of bounds → prediction 0.
        assert_eq!(lorenzo_3d(&r, 2, 2, 0, 0, 0), 0.0);
        // At (1,1,1) all neighbours exist: 3·1 − 3·1 + 1 = 1.
        assert_eq!(lorenzo_3d(&r, 2, 2, 1, 1, 1), 1.0);
    }
}
