//! Compression statistics and work counters.
//!
//! Besides the usual ratio reporting, the stats double as the *work
//! profile* source for the power simulator: element counts, escape counts,
//! and entropy-coding volume determine how many frequency-scaled compute
//! cycles and how much memory traffic a compression job represents.

use serde::{Deserialize, Serialize};

/// Counters describing one compression run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Number of input elements.
    pub elements: u64,
    /// Input size in bytes (`elements * 4`).
    pub input_bytes: u64,
    /// Final compressed size in bytes (after lossless stage, with header).
    pub output_bytes: u64,
    /// Elements whose residual fit in the quantizer range.
    pub predictable: u64,
    /// Elements stored as IEEE literals.
    pub unpredictable: u64,
    /// Blocks that chose the regression predictor (block mode only).
    pub regression_blocks: u64,
    /// Blocks that chose the Lorenzo predictor (block mode only).
    pub lorenzo_blocks: u64,
    /// Distinct symbols in the Huffman table.
    pub huffman_table_entries: u64,
    /// Bits emitted by the Huffman coder.
    pub huffman_bits: u64,
}

impl CompressionStats {
    /// Compression ratio `input/output` (0 if output empty).
    pub fn ratio(&self) -> f64 {
        if self.output_bytes == 0 {
            0.0
        } else {
            self.input_bytes as f64 / self.output_bytes as f64
        }
    }

    /// Fraction of elements that were predictable.
    pub fn hit_rate(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.predictable as f64 / self.elements as f64
        }
    }

    /// Bits per element in the output.
    pub fn bits_per_element(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.output_bytes as f64 * 8.0 / self.elements as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_rates() {
        let s = CompressionStats {
            elements: 100,
            input_bytes: 400,
            output_bytes: 100,
            predictable: 90,
            unpredictable: 10,
            ..Default::default()
        };
        assert_eq!(s.ratio(), 4.0);
        assert!((s.hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(s.bits_per_element(), 8.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = CompressionStats::default();
        assert_eq!(s.ratio(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.bits_per_element(), 0.0);
    }
}
