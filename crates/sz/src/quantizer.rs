//! Error-bounded linear quantization of prediction residuals.
//!
//! SZ quantizes the difference between the predicted and the actual value
//! into uniform bins of width `2·eb`. Bin index 0 is reserved as the
//! "unpredictable" escape symbol: values whose residual falls outside the
//! bin range are stored as IEEE-754 literals instead. Reconstruction adds
//! `code · 2·eb` to the prediction, so every reconstructed value is within
//! `eb` of the original — the absolute error bound guarantee.

/// Linear quantizer with a configurable bin radius.
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    /// Absolute error bound (half the bin width).
    eb: f64,
    /// Number of bins on each side of zero. Symbol alphabet is
    /// `0 ..= 2*radius`, with 0 = escape and `radius` = zero residual.
    radius: u32,
    /// Cached `2·eb` (bin width) for the fast encode paths.
    twoeb: f64,
    /// Cached `radius − 0.5`: the escape threshold in residual space.
    radm: f64,
}

/// Round half away from zero without a branch on the common path: the
/// magic-constant trick (`(x + 1.5·2^52) − 1.5·2^52` rounds to nearest-even
/// at integer granularity) plus exact fix-ups for ties and signed zero.
///
/// Bit-identical to [`f64::round`] — including the sign of zero results —
/// for every finite `|x| < 2^51` (the magic constant stops being a
/// rounding device beyond that, hence the debug assertion).
#[inline]
pub fn round_nearest_away(x: f64) -> f64 {
    const MAGIC: f64 = 6_755_399_441_055_744.0; // 1.5 · 2^52
    const SIGN: u64 = 0x8000_0000_0000_0000;
    debug_assert!(x.abs() < 2251799813685248.0, "round_nearest_away needs |x| < 2^51");
    let y = (x + MAGIC) - MAGIC; // nearest integer, ties to even
    // y is within 0.5 of x, so the subtraction is exact (Sterbenz): a tie
    // is detectable as d == ±0.5 and everything else already matches
    // round-half-away.
    let d = x - y;
    let y = if d == 0.5 || d == -0.5 { x + 0.5f64.copysign(x) } else { y };
    // x < 0 implies y ≤ 0, so OR-ing x's sign bit only resurrects the sign
    // of a −0.0 result (f64::round preserves it; the magic trick does not).
    f64::from_bits(y.to_bits() | (x.to_bits() & SIGN))
}

/// Outcome of quantizing one residual.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantized {
    /// In-range residual; payload is the Huffman symbol (`1..=2*radius`).
    Code(u32),
    /// Residual too large; the original value must be stored verbatim.
    Unpredictable,
}

impl Quantizer {
    /// Default bin radius used by SZ (65536 bins total on each side covers
    /// virtually every predictable residual).
    pub const DEFAULT_RADIUS: u32 = 32768;

    /// Largest accepted bin radius. The decoder's Huffman table and its
    /// setup scans are O(2·radius), so the radius recorded in a stream
    /// header must be bounded independent of what the header claims — an
    /// unchecked value near `u32::MAX` costs gigabytes of allocation and
    /// minutes of table scans per chunk. 32× the default leaves ample
    /// headroom for custom configs while keeping that work trivial.
    pub const MAX_RADIUS: u32 = 1 << 20;

    /// Create a quantizer. `eb` must be positive and finite; `radius`
    /// must be in `1..=MAX_RADIUS`.
    pub fn new(eb: f64, radius: u32) -> Self {
        assert!(eb > 0.0 && eb.is_finite(), "error bound must be positive");
        assert!((1..=Self::MAX_RADIUS).contains(&radius));
        Quantizer { eb, radius, twoeb: 2.0 * eb, radm: radius as f64 - 0.5 }
    }

    /// The configured absolute error bound.
    pub fn error_bound(&self) -> f64 {
        self.eb
    }

    /// The configured bin radius.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// True when [`Quantizer::try_encode_fast`] (and the SIMD kernels built
    /// on the same arithmetic) reproduce [`Quantizer::try_encode`] bit for
    /// bit: the bin width `2·eb` must be finite (otherwise
    /// `q·(2·eb) ≠ (q·2)·eb`) and the radius small enough for exact
    /// f64 ↔ i32 symbol conversion.
    #[inline]
    pub fn fast_exact(&self) -> bool {
        self.twoeb.is_finite() && self.radius <= (1 << 30)
    }

    /// Number of symbols in the quantizer alphabet (escape + bins).
    pub fn alphabet_size(&self) -> usize {
        2 * self.radius as usize + 1
    }

    /// Symbol that encodes a zero residual.
    pub fn zero_symbol(&self) -> u32 {
        self.radius
    }

    /// Quantize `actual - predicted`.
    #[inline]
    pub fn quantize(&self, predicted: f64, actual: f64) -> Quantized {
        let diff = actual - predicted;
        if !diff.is_finite() {
            return Quantized::Unpredictable;
        }
        // Round-to-nearest bin of width 2·eb.
        let q = (diff / (2.0 * self.eb)).round();
        if q.abs() >= self.radius as f64 {
            return Quantized::Unpredictable;
        }
        Quantized::Code((q as i64 + self.radius as i64) as u32)
    }

    /// Fused quantize + reconstruct for the encoder hot loop: one residual
    /// scaling shared by both halves, no enum round-trip. Returns the
    /// symbol and the reconstructed value, or `None` when the residual
    /// escapes to a literal. Bit-identical to
    /// `quantize` followed by `reconstruct` (the bin index round-trips
    /// exactly through i64).
    #[inline]
    pub fn try_encode(&self, predicted: f64, actual: f64) -> Option<(u32, f64)> {
        let diff = actual - predicted;
        if !diff.is_finite() {
            return None;
        }
        let q = (diff / (2.0 * self.eb)).round();
        if q.abs() >= self.radius as f64 {
            return None;
        }
        let sym = (q as i64 + self.radius as i64) as u32;
        Some((sym, predicted + q * 2.0 * self.eb))
    }

    /// Fast-path fused quantize + reconstruct: one residual-space range
    /// check (`|x| < radius − 0.5` is exactly the escape condition under
    /// round-half-away, and non-finite residuals fail it too) followed by
    /// branch-free magic rounding. Requires [`Quantizer::fast_exact`];
    /// bit-identical to [`Quantizer::try_encode`] — symbols, reconstructed
    /// bit patterns, and escape decisions all match.
    #[inline]
    pub fn try_encode_fast(&self, predicted: f64, actual: f64) -> Option<(u32, f64)> {
        debug_assert!(self.fast_exact());
        let x = (actual - predicted) / self.twoeb;
        // Negated compare on purpose: a NaN residual fails `< radm` and
        // must take the escape branch, which `>=` would not preserve.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(x.abs() < self.radm) {
            return None;
        }
        let q = round_nearest_away(x);
        let sym = (q as i64 + self.radius as i64) as u32;
        Some((sym, predicted + q * self.twoeb))
    }

    /// Reconstruct a value from its prediction and symbol.
    #[inline]
    pub fn reconstruct(&self, predicted: f64, symbol: u32) -> f64 {
        let q = symbol as i64 - self.radius as i64;
        predicted + q as f64 * 2.0 * self.eb
    }

    /// True if `symbol` is a valid in-range code (not the escape).
    pub fn is_code(&self, symbol: u32) -> bool {
        symbol >= 1 && symbol <= 2 * self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_residual_gets_zero_symbol() {
        let q = Quantizer::new(1e-3, 512);
        match q.quantize(5.0, 5.0) {
            Quantized::Code(c) => assert_eq!(c, q.zero_symbol()),
            _ => panic!("zero residual must be predictable"),
        }
    }

    #[test]
    fn reconstruction_respects_error_bound() {
        let eb = 1e-2;
        let q = Quantizer::new(eb, 1024);
        for (pred, actual) in [(0.0, 0.37), (10.0, 9.81), (-5.0, -5.004), (1.0, 1.0)] {
            if let Quantized::Code(c) = q.quantize(pred, actual) {
                let rec = q.reconstruct(pred, c);
                assert!((rec - actual).abs() <= eb + 1e-12, "pred={pred} actual={actual} rec={rec}");
            } else {
                panic!("residual {} should be in range", actual - pred);
            }
        }
    }

    #[test]
    fn large_residual_is_unpredictable() {
        let q = Quantizer::new(1e-3, 16);
        assert_eq!(q.quantize(0.0, 1.0), Quantized::Unpredictable);
        assert_eq!(q.quantize(0.0, -1.0), Quantized::Unpredictable);
    }

    #[test]
    fn non_finite_residual_is_unpredictable() {
        let q = Quantizer::new(1e-3, 16);
        assert_eq!(q.quantize(0.0, f64::NAN), Quantized::Unpredictable);
        assert_eq!(q.quantize(0.0, f64::INFINITY), Quantized::Unpredictable);
    }

    #[test]
    fn alphabet_and_escape() {
        let q = Quantizer::new(0.5, 4);
        assert_eq!(q.alphabet_size(), 9);
        assert!(!q.is_code(0));
        assert!(q.is_code(1));
        assert!(q.is_code(8));
        assert!(!q.is_code(9));
    }

    #[test]
    #[should_panic(expected = "error bound must be positive")]
    fn zero_eb_rejected() {
        let _ = Quantizer::new(0.0, 8);
    }

    #[test]
    fn round_nearest_away_matches_round_on_tricky_values() {
        let tricky = [
            0.0f64,
            -0.0,
            0.25,
            -0.25,
            0.5,
            -0.5,
            0.49999999999999994, // largest f64 below 0.5
            -0.49999999999999994,
            1.5,
            -1.5,
            2.5,
            -2.5,
            3.5,
            -3.5,
            1e-308,
            -1e-320,
            f64::MIN_POSITIVE,
            1125899906842623.5, // 2^50 − 0.5
            -1125899906842623.5,
        ];
        for &x in &tricky {
            assert_eq!(
                round_nearest_away(x).to_bits(),
                x.round().to_bits(),
                "x = {x:e}"
            );
        }
        // Pseudo-random sweep over in-range magnitudes and both signs.
        let mut s = 0x1234_5678_9abc_def0u64;
        for _ in 0..200_000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let mag = (s >> 12) as f64 / (1u64 << 20) as f64; // < 2^32
            let x = if s & 1 == 0 { mag } else { -mag };
            assert_eq!(round_nearest_away(x).to_bits(), x.round().to_bits(), "x = {x:e}");
        }
    }

    #[test]
    fn try_encode_fast_matches_reference_at_escape_boundary() {
        let q = Quantizer::new(0.5, 16);
        assert!(q.fast_exact());
        // Residual x = diff / (2eb) = diff here; escape iff |round(x)| ≥ 16,
        // i.e. iff |x| ≥ 15.5. Probe exactly around the threshold and ties.
        for diff in [15.4999, 15.5, 15.5001, -15.5, 3.5, -3.5, 2.5, 0.5, -0.5, 0.0, -0.0] {
            let fast = q.try_encode_fast(0.0, diff);
            let slow = q.try_encode(0.0, diff);
            match (fast, slow) {
                (Some((fs, fr)), Some((ss, sr))) => {
                    assert_eq!(fs, ss, "diff {diff}");
                    assert_eq!(fr.to_bits(), sr.to_bits(), "diff {diff}");
                }
                (None, None) => {}
                (a, b) => panic!("diff {diff}: fast {a:?} vs reference {b:?}"),
            }
        }
        // Non-finite input escapes on both paths.
        assert_eq!(q.try_encode_fast(0.0, f64::NAN), None);
        assert_eq!(q.try_encode_fast(0.0, f64::INFINITY), None);
    }

    proptest! {
        #[test]
        fn prop_try_encode_fast_is_bit_identical(
            pred in -1e6f64..1e6,
            residual in -1e2f64..1e2,
            eb_exp in -6i32..0,
        ) {
            let eb = 10f64.powi(eb_exp);
            let q = Quantizer::new(eb, Quantizer::DEFAULT_RADIUS);
            prop_assert!(q.fast_exact());
            let actual = pred + residual;
            match (q.try_encode_fast(pred, actual), q.try_encode(pred, actual)) {
                (Some((fs, fr)), Some((ss, sr))) => {
                    prop_assert_eq!(fs, ss);
                    prop_assert_eq!(fr.to_bits(), sr.to_bits());
                }
                (None, None) => {}
                (a, b) => prop_assert!(false, "fast/reference disagree: {:?} vs {:?}", a, b),
            }
        }

        #[test]
        fn prop_error_bound_guarantee(
            pred in -1e6f64..1e6,
            residual in -1e3f64..1e3,
            eb_exp in -6i32..0,
        ) {
            let eb = 10f64.powi(eb_exp);
            let q = Quantizer::new(eb, Quantizer::DEFAULT_RADIUS);
            let actual = pred + residual;
            if let Quantized::Code(c) = q.quantize(pred, actual) {
                let rec = q.reconstruct(pred, c);
                // Allow tiny slack for f64 rounding in reconstruct().
                prop_assert!((rec - actual).abs() <= eb * (1.0 + 1e-9) + 1e-12);
            }
        }

        #[test]
        fn prop_try_encode_matches_two_step(
            pred in -1e6f64..1e6,
            residual in -1e4f64..1e4,
        ) {
            let q = Quantizer::new(1e-3, 1024);
            let actual = pred + residual;
            match (q.try_encode(pred, actual), q.quantize(pred, actual)) {
                (Some((sym, rec)), Quantized::Code(c)) => {
                    prop_assert_eq!(sym, c);
                    prop_assert_eq!(rec.to_bits(), q.reconstruct(pred, c).to_bits());
                }
                (None, Quantized::Unpredictable) => {}
                (a, b) => prop_assert!(false, "fused/two-step disagree: {:?} vs {:?}", a, b),
            }
        }

        #[test]
        fn prop_symbols_in_alphabet(
            pred in -1e3f64..1e3,
            actual in -1e3f64..1e3,
        ) {
            let q = Quantizer::new(1e-2, 256);
            if let Quantized::Code(c) = q.quantize(pred, actual) {
                prop_assert!(q.is_code(c), "symbol {c} out of range");
            }
        }
    }
}
