#![warn(missing_docs)]
//! # lcpio-sz — SZ-style error-bounded lossy compressor
//!
//! A from-scratch Rust implementation of the SZ lossy-compression pipeline
//! for scientific floating-point data (Di & Cappello et al.): value
//! prediction (Lorenzo stencils and SZ2-style per-block hyperplane
//! regression), error-bounded linear quantization, canonical Huffman coding
//! of the quantization bins, and an LZSS lossless backend.
//!
//! The headline guarantee is the **absolute error bound**: for every
//! element, `|decompressed − original| ≤ eb`. Value-range-relative bounds
//! resolve to absolute ones, and pointwise-relative bounds
//! (`|v̂ − v| ≤ r·|v|`) are available through [`compress_pointwise_rel`].
//! Both `f32` and `f64` fields are supported ([`compress_f64`]).
//!
//! ```
//! use lcpio_sz::{compress, decompress, ErrorBound, SzConfig};
//!
//! let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
//! let cfg = SzConfig::new(ErrorBound::Absolute(1e-3));
//! let out = compress(&data, &[4096], &cfg).unwrap();
//! let (restored, dims) = decompress(&out.bytes).unwrap();
//! assert_eq!(dims, vec![4096]);
//! for (a, b) in data.iter().zip(&restored) {
//!     assert!((a - b).abs() <= 1e-3 + 1e-6);
//! }
//! assert!(out.stats.ratio() > 4.0);
//! ```

pub mod bitio;
pub mod element;
pub mod header;
pub mod huffman;
pub mod kernels;
pub mod lossless;
pub mod parallel;
mod pipeline;
pub mod predictor;
pub mod pwrel;
pub mod quantizer;
pub mod regression;
pub mod stats;

pub use element::Element;
pub use parallel::{
    compress_chunked, compress_chunked_pooled, decompress_chunked, decompress_chunked_pooled,
    is_chunked, SzScratchPool, CHUNKED_MAGIC,
};
pub use pipeline::{
    compress, compress_f64, compress_typed, compress_typed_with, decompress, decompress_f64,
    decompress_typed, decompress_typed_with, stream_type_tag, SzScratch,
};
pub use pwrel::{compress_pointwise_rel, decompress_pointwise_rel};
pub use quantizer::Quantizer;
pub use stats::CompressionStats;

use serde::{Deserialize, Serialize};

/// How the compression error is bounded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ErrorBound {
    /// `|x̂ − x| ≤ eb` for every element (SZ "ABS" mode; the paper's mode).
    Absolute(f64),
    /// `|x̂ − x| ≤ r · (max − min)` over the dataset (SZ "REL" mode).
    ValueRangeRelative(f64),
}

/// Predictor selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictorMode {
    /// Global Lorenzo stencil (SZ 1.4 style).
    Lorenzo,
    /// Per-block adaptive choice between Lorenzo and hyperplane regression
    /// (SZ 2.x style). Falls back to Lorenzo for 1-D data.
    BlockAdaptive,
}

/// Compressor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SzConfig {
    /// Error-bound mode and magnitude.
    pub error_bound: ErrorBound,
    /// Predictor strategy (default: block-adaptive).
    pub mode: PredictorMode,
    /// Lorenzo order for 1-D data (1 or 2; default 2).
    pub lorenzo_order: u8,
    /// Quantizer bin radius (default [`Quantizer::DEFAULT_RADIUS`]).
    pub radius: u32,
    /// Run the LZSS lossless stage over the payload (default true).
    pub lossless: bool,
}

impl SzConfig {
    /// Default configuration for a given error bound.
    pub fn new(error_bound: ErrorBound) -> Self {
        SzConfig {
            error_bound,
            mode: PredictorMode::BlockAdaptive,
            lorenzo_order: 2,
            radius: Quantizer::DEFAULT_RADIUS,
            lossless: true,
        }
    }

    /// Builder-style predictor mode override.
    pub fn with_mode(mut self, mode: PredictorMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder-style lossless-stage toggle.
    pub fn with_lossless(mut self, on: bool) -> Self {
        self.lossless = on;
        self
    }

    /// Builder-style quantizer radius override. Values are clamped to
    /// `1..=Quantizer::MAX_RADIUS` at compression time.
    pub fn with_radius(mut self, radius: u32) -> Self {
        self.radius = radius;
        self
    }
}

/// A compressed buffer plus the statistics of the run that produced it.
#[derive(Debug, Clone)]
pub struct Compressed {
    /// The serialized compressed stream.
    pub bytes: Vec<u8>,
    /// Counters collected during compression.
    pub stats: CompressionStats,
}

/// Errors surfaced by compression or decompression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SzError {
    /// Dimensions empty, zero-sized, >4-D, or inconsistent with data length.
    InvalidDims,
    /// Error bound not positive/finite.
    InvalidErrorBound,
    /// The stream holds a different element type than requested
    /// (f32 vs f64 — check [`stream_type_tag`]).
    TypeMismatch,
    /// The compressed stream is malformed; the message names the section.
    Corrupt(&'static str),
    /// Invariant violation inside the compressor (a bug if ever seen).
    Internal(&'static str),
}

impl std::fmt::Display for SzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SzError::InvalidDims => write!(f, "invalid dimensions"),
            SzError::InvalidErrorBound => write!(f, "invalid error bound"),
            SzError::TypeMismatch => write!(f, "stream element type does not match"),
            SzError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
            SzError::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

impl std::error::Error for SzError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32 * 0.5).collect()
    }

    fn check_bound(orig: &[f32], rec: &[f32], eb: f64) {
        assert_eq!(orig.len(), rec.len());
        for (idx, (a, b)) in orig.iter().zip(rec).enumerate() {
            let err = (*a as f64 - *b as f64).abs();
            assert!(err <= eb * 1.0001 + 1e-9, "idx {idx}: {a} vs {b}, err {err} > {eb}");
        }
    }

    #[test]
    fn roundtrip_1d_ramp() {
        let data = ramp(1000);
        let cfg = SzConfig::new(ErrorBound::Absolute(1e-3));
        let out = compress(&data, &[1000], &cfg).unwrap();
        let (rec, dims) = decompress(&out.bytes).unwrap();
        assert_eq!(dims, vec![1000]);
        check_bound(&data, &rec, 1e-3);
        // A linear ramp is perfectly predictable by order-2 Lorenzo.
        assert!(out.stats.hit_rate() > 0.99);
        assert!(out.stats.ratio() > 20.0, "ratio {}", out.stats.ratio());
    }

    #[test]
    fn roundtrip_2d_smooth() {
        let (ny, nx) = (48, 64);
        let data: Vec<f32> = (0..ny * nx)
            .map(|idx| {
                let (j, i) = (idx / nx, idx % nx);
                ((i as f32) * 0.1).sin() * ((j as f32) * 0.07).cos() * 10.0
            })
            .collect();
        let cfg = SzConfig::new(ErrorBound::Absolute(1e-2));
        let out = compress(&data, &[ny, nx], &cfg).unwrap();
        let (rec, dims) = decompress(&out.bytes).unwrap();
        assert_eq!(dims, vec![ny, nx]);
        check_bound(&data, &rec, 1e-2);
        assert!(out.stats.ratio() > 3.0, "ratio {}", out.stats.ratio());
    }

    #[test]
    fn roundtrip_3d_both_modes() {
        let (nz, ny, nx) = (12, 13, 14);
        let data: Vec<f32> = (0..nz * ny * nx)
            .map(|idx| {
                let k = idx / (ny * nx);
                let j = (idx / nx) % ny;
                let i = idx % nx;
                (k as f32) * 0.3 + (j as f32) * 0.2 - (i as f32) * 0.1
            })
            .collect();
        for mode in [PredictorMode::Lorenzo, PredictorMode::BlockAdaptive] {
            let cfg = SzConfig::new(ErrorBound::Absolute(1e-3)).with_mode(mode);
            let out = compress(&data, &[nz, ny, nx], &cfg).unwrap();
            let (rec, _) = decompress(&out.bytes).unwrap();
            check_bound(&data, &rec, 1e-3);
        }
    }

    #[test]
    fn roundtrip_4d() {
        let dims = [3usize, 4, 5, 6];
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01).cos()).collect();
        let cfg = SzConfig::new(ErrorBound::Absolute(1e-4));
        let out = compress(&data, &dims, &cfg).unwrap();
        let (rec, d) = decompress(&out.bytes).unwrap();
        assert_eq!(d, dims.to_vec());
        check_bound(&data, &rec, 1e-4);
    }

    #[test]
    fn relative_bound_resolves_to_range() {
        let data: Vec<f32> = (0..500).map(|i| i as f32).collect(); // range 499
        let cfg = SzConfig::new(ErrorBound::ValueRangeRelative(1e-3));
        let out = compress(&data, &[500], &cfg).unwrap();
        let (rec, _) = decompress(&out.bytes).unwrap();
        check_bound(&data, &rec, 0.499 * 1.01);
    }

    #[test]
    fn random_data_roundtrips_via_literals() {
        // White noise with a tiny bound: most elements escape to literals,
        // and those must be restored exactly.
        let mut x = 123456789u32;
        let data: Vec<f32> = (0..2000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x as f32 / u32::MAX as f32 - 0.5) * 1e6
            })
            .collect();
        let cfg = SzConfig::new(ErrorBound::Absolute(1e-6)).with_radius(4);
        let out = compress(&data, &[2000], &cfg).unwrap();
        assert!(out.stats.unpredictable > 1000);
        let (rec, _) = decompress(&out.bytes).unwrap();
        check_bound(&data, &rec, 1e-6);
    }

    #[test]
    fn special_values_survive() {
        let data = vec![1.0f32, f32::NAN, f32::INFINITY, -2.5, f32::NEG_INFINITY, 0.0];
        let cfg = SzConfig::new(ErrorBound::Absolute(1e-3));
        let out = compress(&data, &[6], &cfg).unwrap();
        let (rec, _) = decompress(&out.bytes).unwrap();
        assert_eq!(rec.len(), 6);
        assert!(rec[1].is_nan());
        assert_eq!(rec[2], f32::INFINITY);
        assert_eq!(rec[4], f32::NEG_INFINITY);
        assert!((rec[0] - 1.0).abs() <= 2e-3);
        assert!((rec[3] + 2.5).abs() <= 2e-3);
    }

    #[test]
    fn tighter_bound_means_bigger_output() {
        let data: Vec<f32> = (0..10_000).map(|i| (i as f32 * 0.013).sin() * 100.0).collect();
        let loose = compress(&data, &[10_000], &SzConfig::new(ErrorBound::Absolute(1e-1)))
            .unwrap();
        let tight = compress(&data, &[10_000], &SzConfig::new(ErrorBound::Absolute(1e-5)))
            .unwrap();
        assert!(tight.bytes.len() > loose.bytes.len());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let data = ramp(64);
        let cfg = SzConfig::new(ErrorBound::Absolute(1e-3));
        let mut out = compress(&data, &[64], &cfg).unwrap();
        out.bytes[0] = b'X';
        assert!(matches!(decompress(&out.bytes), Err(SzError::Corrupt(_))));
    }

    #[test]
    fn truncated_stream_rejected() {
        let data = ramp(64);
        let cfg = SzConfig::new(ErrorBound::Absolute(1e-3));
        let out = compress(&data, &[64], &cfg).unwrap();
        let cut = &out.bytes[..out.bytes.len() / 2];
        assert!(decompress(cut).is_err());
    }

    #[test]
    fn dims_mismatch_rejected() {
        let data = ramp(10);
        let cfg = SzConfig::new(ErrorBound::Absolute(1e-3));
        assert_eq!(compress(&data, &[11], &cfg).unwrap_err(), SzError::InvalidDims);
        assert_eq!(compress(&data, &[], &cfg).unwrap_err(), SzError::InvalidDims);
    }

    #[test]
    fn lossless_stage_never_grows_output() {
        let data = ramp(4096);
        let with = compress(&data, &[4096], &SzConfig::new(ErrorBound::Absolute(1e-3)))
            .unwrap();
        let without = compress(
            &data,
            &[4096],
            &SzConfig::new(ErrorBound::Absolute(1e-3)).with_lossless(false),
        )
        .unwrap();
        assert!(with.bytes.len() <= without.bytes.len() + 1);
    }

    #[test]
    fn stats_are_consistent() {
        let data = ramp(512);
        let out = compress(&data, &[512], &SzConfig::new(ErrorBound::Absolute(1e-2)))
            .unwrap();
        let s = out.stats;
        assert_eq!(s.elements, 512);
        assert_eq!(s.input_bytes, 2048);
        assert_eq!(s.predictable + s.unpredictable, s.elements);
        assert_eq!(s.output_bytes as usize, out.bytes.len());
    }
}
