//! LZSS lossless backend.
//!
//! SZ finishes its pipeline by running a general-purpose lossless compressor
//! (Zstd in the reference implementation) over the entropy-coded stream to
//! squeeze out residual redundancy — repeated Huffman-code runs, literal
//! tables, and header padding. We implement LZSS with a 64 KiB window and
//! hash-chain match finding: the same algorithmic family, dependency-free.
//!
//! Token format (bit stream, MSB-first):
//! * `0` + 8 bits   — literal byte
//! * `1` + 16 bits offset + 8 bits length − [MIN_MATCH] — back-reference

use crate::bitio::{BitReader, BitWriter};

/// Window size for back-references (offset fits in 16 bits).
pub const WINDOW: usize = 1 << 16;
/// Minimum profitable match length (a match token costs 25 bits).
pub const MIN_MATCH: usize = 4;
/// Maximum match length encodable in 8 bits above MIN_MATCH.
pub const MAX_MATCH: usize = MIN_MATCH + 255;
/// Hash-chain search depth; bounds worst-case compression time.
const MAX_CHAIN: usize = 32;

/// Error from [`decompress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LzssCorrupt;

impl std::fmt::Display for LzssCorrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt LZSS stream")
    }
}

impl std::error::Error for LzssCorrupt {}

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let b = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (b.wrapping_mul(0x9E37_79B1) >> 17) as usize & (HASH_SIZE - 1)
}

const HASH_SIZE: usize = 1 << 15;

/// Compress `data`; output starts with the original length (u32 LE).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::with_capacity(data.len() / 2 + 16);
    let mut head = vec![u32::MAX; HASH_SIZE];
    let mut prev = vec![u32::MAX; data.len()];
    let mut i = 0usize;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash4(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != u32::MAX && chain < MAX_CHAIN {
                let c = cand as usize;
                if i - c <= WINDOW {
                    let limit = (data.len() - i).min(MAX_MATCH);
                    let mut l = 0;
                    while l < limit && data[c + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_off = i - c;
                        if l == limit {
                            break;
                        }
                    }
                } else {
                    break; // chain entries only get older
                }
                cand = prev[c];
                chain += 1;
            }
            // Insert current position into the chain.
            prev[i] = head[h];
            head[h] = i as u32;
        }
        if best_len >= MIN_MATCH {
            w.push_bit(true);
            w.push_bits((best_off - 1) as u64, 16);
            w.push_bits((best_len - MIN_MATCH) as u64, 8);
            // Insert the skipped positions so later matches can find them.
            let end = i + best_len;
            let mut p = i + 1;
            while p < end && p + MIN_MATCH <= data.len() {
                let h = hash4(data, p);
                prev[p] = head[h];
                head[h] = p as u32;
                p += 1;
            }
            i = end;
        } else {
            w.push_bit(false);
            w.push_bits(data[i] as u64, 8);
            i += 1;
        }
    }
    let mut out = (data.len() as u32).to_le_bytes().to_vec();
    out.extend_from_slice(&w.into_bytes());
    out
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(stream: &[u8]) -> Result<Vec<u8>, LzssCorrupt> {
    if stream.len() < 4 {
        return Err(LzssCorrupt);
    }
    let n = u32::from_le_bytes([stream[0], stream[1], stream[2], stream[3]]) as usize;
    // A match token costs 25 bits and can emit at most MAX_MATCH bytes, so
    // the output can never legitimately exceed ~83× the stream size; a
    // corrupt length field must not drive the allocation.
    if n > 4 + (stream.len() - 4).saturating_mul(MAX_MATCH * 8 / 25 + 1) {
        return Err(LzssCorrupt);
    }
    let mut out = Vec::with_capacity(n);
    let mut r = BitReader::new(&stream[4..]);
    while out.len() < n {
        let is_match = r.read_bit().map_err(|_| LzssCorrupt)?;
        if is_match {
            let off = r.read_bits(16).map_err(|_| LzssCorrupt)? as usize + 1;
            let len = r.read_bits(8).map_err(|_| LzssCorrupt)? as usize + MIN_MATCH;
            if off > out.len() {
                return Err(LzssCorrupt);
            }
            let start = out.len() - off;
            // Overlapping copies are byte-by-byte by construction.
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        } else {
            out.push(r.read_bits(8).map_err(|_| LzssCorrupt)? as u8);
        }
    }
    if out.len() != n {
        return Err(LzssCorrupt);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_empty() {
        assert_eq!(decompress(&compress(&[])).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn roundtrip_short_literals() {
        let data = b"abc";
        assert_eq!(decompress(&compress(data)).unwrap(), data);
    }

    #[test]
    fn compresses_repetitive_data() {
        let data: Vec<u8> = b"hello world, ".iter().cycle().take(10_000).copied().collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 4, "{} vs {}", c.len(), data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn handles_overlapping_matches() {
        // Classic RLE-through-LZ case: aaaa... encoded as offset-1 matches.
        let data = vec![b'a'; 1000];
        let c = compress(&data);
        assert!(c.len() < 40);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_data_roundtrips() {
        // Pseudo-random bytes: expansion is bounded by ~12.5% (1 flag bit
        // per literal) plus the 4-byte header.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + data.len() / 8 + 8);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn truncated_stream_detected() {
        let data = vec![7u8; 100];
        let mut c = compress(&data);
        c.truncate(c.len() - 2);
        assert_eq!(decompress(&c), Err(LzssCorrupt));
    }

    #[test]
    fn bogus_offset_detected() {
        // Handcraft: length 8, one match token with offset 5 at position 0.
        let mut w = BitWriter::new();
        w.push_bit(true);
        w.push_bits(4, 16); // offset 5
        w.push_bits(4, 8); // len 8
        let mut s = 8u32.to_le_bytes().to_vec();
        s.extend_from_slice(&w.into_bytes());
        assert_eq!(decompress(&s), Err(LzssCorrupt));
    }

    #[test]
    fn tiny_header_detected() {
        assert_eq!(decompress(&[1, 2]), Err(LzssCorrupt));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            prop_assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }

        #[test]
        fn prop_roundtrip_structured(
            seed in any::<u8>(),
            reps in 1usize..200,
            chunk in 1usize..64,
        ) {
            let data: Vec<u8> = (0..chunk)
                .map(|i| seed.wrapping_add(i as u8))
                .collect::<Vec<_>>()
                .repeat(reps);
            prop_assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }
    }
}
