//! SZ2-style per-block linear-regression predictor.
//!
//! For smooth-but-tilted regions the Lorenzo stencil wastes precision; SZ2
//! instead fits a hyperplane `v ≈ b0 + b1·i + b2·j + b3·k` to each small
//! block and predicts from the (stored) coefficients. Because the block
//! coordinates form a regular grid, the least-squares problem is separable:
//! after centering, each slope is an independent 1-D projection, so the fit
//! is O(block size) with no matrix solve.
//!
//! Coefficients are serialized as `f32`, making compressor and decompressor
//! predictions bit-identical.

/// Side length of regression blocks (SZ2 uses 6 for 3-D data).
pub const BLOCK_SIDE: usize = 6;

/// A fitted hyperplane for one block: `v(i,j,k) = c0 + c1·i + c2·j + c3·k`
/// with local (block-relative) coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockCoeffs {
    /// Intercept and up to three slopes (unused slopes are 0).
    pub c: [f32; 4],
}

impl BlockCoeffs {
    /// Predict the value at local coordinate (i, j, k).
    #[inline]
    pub fn predict(&self, i: usize, j: usize, k: usize) -> f64 {
        self.c[0] as f64
            + self.c[1] as f64 * i as f64
            + self.c[2] as f64 * j as f64
            + self.c[3] as f64 * k as f64
    }
}

/// Fit a hyperplane to a block of extent (nk, nj, ni) whose values are
/// provided row-major in `vals` (length nk·nj·ni).
///
/// Degenerate extents (length-1 axes) produce zero slopes along those axes.
pub fn fit_block(vals: &[f64], nk: usize, nj: usize, ni: usize) -> BlockCoeffs {
    debug_assert_eq!(vals.len(), nk * nj * ni);
    let n = vals.len() as f64;
    if vals.is_empty() {
        return BlockCoeffs { c: [0.0; 4] };
    }
    let mean = vals.iter().sum::<f64>() / n;
    let centroid = |e: usize| (e as f64 - 1.0) / 2.0;
    let (ci, cj, ck) = (centroid(ni), centroid(nj), centroid(nk));

    // Σ (x−x̄)² along one axis, times the number of repetitions over the
    // other two axes.
    let sq = |e: usize| -> f64 {
        (0..e).map(|x| (x as f64 - centroid(e)).powi(2)).sum::<f64>()
    };
    let (di, dj, dk) = (
        sq(ni) * (nj * nk) as f64,
        sq(nj) * (ni * nk) as f64,
        sq(nk) * (ni * nj) as f64,
    );

    let mut num = [0.0f64; 3]; // projections onto (i−ī), (j−j̄), (k−k̄)
    let mut idx = 0;
    for k in 0..nk {
        for j in 0..nj {
            for i in 0..ni {
                let d = vals[idx] - mean;
                num[0] += d * (i as f64 - ci);
                num[1] += d * (j as f64 - cj);
                num[2] += d * (k as f64 - ck);
                idx += 1;
            }
        }
    }
    let b1 = if di > 0.0 { num[0] / di } else { 0.0 };
    let b2 = if dj > 0.0 { num[1] / dj } else { 0.0 };
    let b3 = if dk > 0.0 { num[2] / dk } else { 0.0 };
    let b0 = mean - b1 * ci - b2 * cj - b3 * ck;
    BlockCoeffs { c: [b0 as f32, b1 as f32, b2 as f32, b3 as f32] }
}

/// Mean absolute prediction error of `coeffs` over a block.
pub fn block_abs_error(vals: &[f64], nk: usize, nj: usize, ni: usize, coeffs: &BlockCoeffs) -> f64 {
    debug_assert_eq!(vals.len(), nk * nj * ni);
    if vals.is_empty() {
        return 0.0;
    }
    let mut err = 0.0;
    let mut idx = 0;
    for k in 0..nk {
        for j in 0..nj {
            for i in 0..ni {
                err += (vals[idx] - coeffs.predict(i, j, k)).abs();
                idx += 1;
            }
        }
    }
    err / vals.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_block<F: Fn(usize, usize, usize) -> f64>(
        nk: usize,
        nj: usize,
        ni: usize,
        f: F,
    ) -> Vec<f64> {
        let mut v = Vec::with_capacity(nk * nj * ni);
        for k in 0..nk {
            for j in 0..nj {
                for i in 0..ni {
                    v.push(f(i, j, k));
                }
            }
        }
        v
    }

    #[test]
    fn exact_on_planes() {
        let vals = make_block(6, 6, 6, |i, j, k| {
            1.5 + 0.25 * i as f64 - 0.75 * j as f64 + 2.0 * k as f64
        });
        let c = fit_block(&vals, 6, 6, 6);
        assert!(block_abs_error(&vals, 6, 6, 6, &c) < 1e-5);
        assert!((c.c[1] as f64 - 0.25).abs() < 1e-5);
        assert!((c.c[2] as f64 + 0.75).abs() < 1e-5);
        assert!((c.c[3] as f64 - 2.0).abs() < 1e-5);
    }

    #[test]
    fn constant_block_gives_intercept_only() {
        let vals = vec![7.0; 6 * 6 * 6];
        let c = fit_block(&vals, 6, 6, 6);
        assert!((c.c[0] - 7.0).abs() < 1e-6);
        assert_eq!(&c.c[1..], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn handles_partial_blocks() {
        // Border blocks can be e.g. 2×6×3; slopes along length-1 axes are 0.
        let vals = make_block(1, 4, 3, |i, j, _| 2.0 * i as f64 + j as f64);
        let c = fit_block(&vals, 1, 4, 3);
        assert!(block_abs_error(&vals, 1, 4, 3, &c) < 1e-5);
        assert_eq!(c.c[3], 0.0);
    }

    #[test]
    fn regression_beats_mean_on_tilted_data() {
        let vals = make_block(6, 6, 6, |i, _, _| 10.0 * i as f64);
        let c = fit_block(&vals, 6, 6, 6);
        let mean_pred = BlockCoeffs { c: [c.c[0] + c.c[1] * 2.5, 0.0, 0.0, 0.0] };
        assert!(
            block_abs_error(&vals, 6, 6, 6, &c)
                < 0.2 * block_abs_error(&vals, 6, 6, 6, &mean_pred)
        );
    }

    #[test]
    fn empty_block_is_zero() {
        let c = fit_block(&[], 0, 0, 0);
        assert_eq!(c.c, [0.0; 4]);
        assert_eq!(block_abs_error(&[], 0, 0, 0, &c), 0.0);
    }
}
