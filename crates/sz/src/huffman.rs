//! Canonical Huffman coding of quantization codes.
//!
//! SZ entropy-codes the quantization-bin indices with a Huffman tree built
//! from the actual symbol histogram. We implement canonical Huffman: only
//! the code *lengths* are serialized (as a compact table), and both encoder
//! and decoder derive identical codebooks from them.

use crate::bitio::{BitReader, BitStreamExhausted, BitWriter};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Maximum code length we allow; 32 keeps codes in a u32 and is unreachable
/// for realistic histograms (bounded by ~log2(total count)).
pub const MAX_CODE_LEN: u8 = 32;

/// Errors from Huffman coding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HuffmanError {
    /// The symbol alphabet was empty.
    EmptyAlphabet,
    /// A symbol outside the encoder's alphabet was submitted.
    UnknownSymbol(u32),
    /// The encoded stream ended prematurely or was corrupt.
    Corrupt,
}

impl std::fmt::Display for HuffmanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HuffmanError::EmptyAlphabet => write!(f, "empty alphabet"),
            HuffmanError::UnknownSymbol(s) => write!(f, "unknown symbol {s}"),
            HuffmanError::Corrupt => write!(f, "corrupt Huffman stream"),
        }
    }
}

impl std::error::Error for HuffmanError {}

impl From<BitStreamExhausted> for HuffmanError {
    fn from(_: BitStreamExhausted) -> Self {
        HuffmanError::Corrupt
    }
}

/// Compute canonical code lengths from symbol frequencies.
///
/// `freqs` maps dense symbol index → count; zero-count symbols get no code.
/// Returns a vector of code lengths aligned with `freqs`.
pub fn code_lengths(freqs: &[u64]) -> Result<Vec<u8>, HuffmanError> {
    let n = freqs.len();
    let present: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    if present.is_empty() {
        return Err(HuffmanError::EmptyAlphabet);
    }
    let mut lens = vec![0u8; n];
    if present.len() == 1 {
        // Degenerate alphabet: give the single symbol a 1-bit code.
        lens[present[0]] = 1;
        return Ok(lens);
    }
    // Heap of (weight, node id). Internal nodes get ids >= n.
    #[derive(Clone, Copy)]
    struct Node {
        parent: usize,
    }
    let mut nodes: Vec<Node> = vec![Node { parent: usize::MAX }; n];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        present.iter().map(|&i| Reverse((freqs[i], i))).collect();
    while heap.len() > 1 {
        let Reverse((wa, a)) = heap.pop().unwrap();
        let Reverse((wb, b)) = heap.pop().unwrap();
        let id = nodes.len();
        nodes.push(Node { parent: usize::MAX });
        nodes[a].parent = id;
        nodes[b].parent = id;
        heap.push(Reverse((wa + wb, id)));
    }
    for &i in &present {
        let mut depth = 0u8;
        let mut cur = i;
        while nodes[cur].parent != usize::MAX {
            cur = nodes[cur].parent;
            depth += 1;
        }
        lens[i] = depth.min(MAX_CODE_LEN);
    }
    Ok(lens)
}

/// Assign canonical codes (MSB-first) from code lengths.
///
/// Symbols are ordered by (length, index); the returned vector holds
/// `(code, len)` per symbol (len 0 ⇒ absent).
pub fn canonical_codes(lens: &[u8]) -> Vec<(u32, u8)> {
    let mut order: Vec<usize> =
        (0..lens.len()).filter(|&i| lens[i] > 0).collect();
    order.sort_by_key(|&i| (lens[i], i));
    let mut codes = vec![(0u32, 0u8); lens.len()];
    let mut code = 0u32;
    let mut prev_len = 0u8;
    for &i in &order {
        let l = lens[i];
        code <<= (l - prev_len) as u32;
        codes[i] = (code, l);
        code += 1;
        prev_len = l;
    }
    codes
}

/// A canonical Huffman encoder over a dense `u32` alphabet `0..n`.
#[derive(Debug, Clone)]
pub struct HuffmanEncoder {
    codes: Vec<(u32, u8)>,
}

impl HuffmanEncoder {
    /// Build from symbol frequencies.
    pub fn from_freqs(freqs: &[u64]) -> Result<Self, HuffmanError> {
        let lens = code_lengths(freqs)?;
        Ok(HuffmanEncoder { codes: canonical_codes(&lens) })
    }

    /// Code lengths, for header serialization.
    pub fn lengths(&self) -> Vec<u8> {
        self.codes.iter().map(|&(_, l)| l).collect()
    }

    /// Encode one symbol into the writer.
    #[inline]
    pub fn encode(&self, sym: u32, w: &mut BitWriter) -> Result<(), HuffmanError> {
        let (code, len) = *self
            .codes
            .get(sym as usize)
            .ok_or(HuffmanError::UnknownSymbol(sym))?;
        if len == 0 {
            return Err(HuffmanError::UnknownSymbol(sym));
        }
        w.push_bits(code as u64, len);
        Ok(())
    }

    /// Encode a whole symbol slice, packing several codes into a 64-bit
    /// accumulator before each writer flush. Emits exactly the bytes that
    /// per-symbol [`HuffmanEncoder::encode`] calls would (MSB-first
    /// concatenation is associative); only the per-symbol writer overhead
    /// is amortized. On an unknown symbol the pending accumulator is
    /// dropped — the whole compression fails in that case, so no partial
    /// stream is ever observed.
    pub fn encode_slice(&self, syms: &[u32], w: &mut BitWriter) -> Result<(), HuffmanError> {
        let mut acc = 0u64;
        let mut nb = 0u32;
        // Symbols are consumed in pairs: the two table lookups are
        // independent and their codes are joined into one word before
        // touching the accumulator, so the serial shift-or chain runs
        // once per pair instead of once per symbol.
        let mut chunks = syms.chunks_exact(2);
        for pair in &mut chunks {
            let (c0, l0) =
                *self.codes.get(pair[0] as usize).ok_or(HuffmanError::UnknownSymbol(pair[0]))?;
            let (c1, l1) =
                *self.codes.get(pair[1] as usize).ok_or(HuffmanError::UnknownSymbol(pair[1]))?;
            if l0 == 0 || l1 == 0 {
                let bad = if l0 == 0 { pair[0] } else { pair[1] };
                return Err(HuffmanError::UnknownSymbol(bad));
            }
            // Each len ≤ MAX_CODE_LEN = 32, so a joined pair is ≤ 64 bits
            // and after a flush the shifts below cannot overflow. A
            // 64-bit pair with a non-empty accumulator flushes first.
            let joined = ((c0 as u64) << l1) | c1 as u64;
            let jlen = (l0 + l1) as u32;
            if nb + jlen > 64 {
                w.push_bits(acc, nb as u8);
                acc = 0;
                nb = 0;
            }
            if jlen == 64 {
                w.push_bits(joined, 64);
            } else {
                acc = (acc << jlen) | joined;
                nb += jlen;
            }
        }
        for &sym in chunks.remainder() {
            let (code, len) =
                *self.codes.get(sym as usize).ok_or(HuffmanError::UnknownSymbol(sym))?;
            if len == 0 {
                return Err(HuffmanError::UnknownSymbol(sym));
            }
            if nb + len as u32 > 64 {
                w.push_bits(acc, nb as u8);
                acc = 0;
                nb = 0;
            }
            acc = (acc << len) | code as u64;
            nb += len as u32;
        }
        if nb > 0 {
            w.push_bits(acc, nb as u8);
        }
        Ok(())
    }

    /// Total encoded length in bits for a histogram (entropy-cost estimate).
    pub fn encoded_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .zip(&self.codes)
            .map(|(&f, &(_, l))| f * l as u64)
            .sum()
    }
}

/// Width of the fast-path lookup table: one peek of this many bits
/// resolves every code of length ≤ LUT_BITS in O(1).
pub const LUT_BITS: u8 = 11;

/// Canonical Huffman decoder built from code lengths.
///
/// Decoding first consults a 2^[`LUT_BITS`]-entry prefix table (quantizer
/// codes cluster around the zero bin, so the common symbols have short
/// codes and hit the table); longer codes fall back to the canonical
/// first-code walk — O(max_len) per symbol without an explicit tree.
#[derive(Debug, Clone)]
pub struct HuffmanDecoder {
    /// first_code[l], count[l], and the symbols sorted by (len, index).
    first_code: [u32; MAX_CODE_LEN as usize + 1],
    first_sym_idx: [u32; MAX_CODE_LEN as usize + 1],
    count: [u32; MAX_CODE_LEN as usize + 1],
    sorted_syms: Vec<u32>,
    /// `(symbol, code_len)` per LUT_BITS-bit prefix; len 0 ⇒ slow path.
    lut: Vec<(u32, u8)>,
}

impl HuffmanDecoder {
    /// Build from per-symbol code lengths.
    pub fn from_lengths(lens: &[u8]) -> Result<Self, HuffmanError> {
        let mut order: Vec<usize> =
            (0..lens.len()).filter(|&i| lens[i] > 0).collect();
        if order.is_empty() {
            return Err(HuffmanError::EmptyAlphabet);
        }
        if lens.iter().any(|&l| l > MAX_CODE_LEN) {
            return Err(HuffmanError::Corrupt);
        }
        // A valid prefix code satisfies the Kraft inequality; corrupt
        // headers can oversubscribe a length class, which would make the
        // canonical codes overflow their bit width (and the LUT below).
        let kraft: u128 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u128 << (MAX_CODE_LEN - l))
            .sum();
        if kraft > 1u128 << MAX_CODE_LEN {
            return Err(HuffmanError::Corrupt);
        }
        order.sort_by_key(|&i| (lens[i], i));
        let mut count = [0u32; MAX_CODE_LEN as usize + 1];
        for &i in &order {
            count[lens[i] as usize] += 1;
        }
        let mut first_code = [0u32; MAX_CODE_LEN as usize + 1];
        let mut first_sym_idx = [0u32; MAX_CODE_LEN as usize + 1];
        let mut code = 0u32;
        let mut idx = 0u32;
        for l in 1..=MAX_CODE_LEN as usize {
            code <<= 1;
            first_code[l] = code;
            first_sym_idx[l] = idx;
            code += count[l];
            idx += count[l];
        }
        let sorted_syms: Vec<u32> = order.iter().map(|&i| i as u32).collect();
        // Fast path: expand every code of length ≤ LUT_BITS into all the
        // table slots sharing its prefix.
        let mut lut = vec![(0u32, 0u8); 1usize << LUT_BITS];
        for l in 1..=LUT_BITS.min(MAX_CODE_LEN) as usize {
            let c0 = first_code[l];
            for k in 0..count[l] {
                let sym = sorted_syms[(first_sym_idx[l] + k) as usize];
                let code = c0 + k;
                let shift = LUT_BITS as usize - l;
                let base = (code as usize) << shift;
                // Kraft validation above guarantees this fits; keep a
                // defensive clamp so no table can ever overrun.
                let end = (base + (1 << shift)).min(lut.len());
                if base >= end {
                    continue;
                }
                for slot in &mut lut[base..end] {
                    *slot = (sym, l as u8);
                }
            }
        }
        Ok(HuffmanDecoder { first_code, first_sym_idx, count, sorted_syms, lut })
    }

    /// Decode one symbol (LUT fast path, canonical walk fallback).
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u32, HuffmanError> {
        let (prefix, avail) = r.peek_bits(LUT_BITS);
        if avail > 0 {
            let (sym, len) = self.lut[prefix as usize];
            if len != 0 && len <= avail {
                r.advance(len);
                return Ok(sym);
            }
        }
        self.decode_walk(r)
    }

    /// Canonical first-code walk (always correct; used for codes longer
    /// than [`LUT_BITS`] and near the end of the stream). Works on a
    /// single peeked word: the candidate code at each length is a shift of
    /// the same 32-bit window, so no per-bit stream traffic.
    #[inline]
    pub fn decode_walk(&self, r: &mut BitReader<'_>) -> Result<u32, HuffmanError> {
        let (word, avail) = r.peek_bits(MAX_CODE_LEN);
        for l in 1..=avail {
            let c = self.count[l as usize];
            if c == 0 {
                continue;
            }
            let code = (word >> (MAX_CODE_LEN - l)) as u32;
            if code >= self.first_code[l as usize] && code < self.first_code[l as usize] + c {
                r.advance(l);
                let off = code - self.first_code[l as usize];
                return Ok(self.sorted_syms[(self.first_sym_idx[l as usize] + off) as usize]);
            }
        }
        Err(HuffmanError::Corrupt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(freqs: &[u64], msg: &[u32]) {
        let enc = HuffmanEncoder::from_freqs(freqs).unwrap();
        let dec = HuffmanDecoder::from_lengths(&enc.lengths()).unwrap();
        let mut w = BitWriter::new();
        for &s in msg {
            enc.encode(s, &mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in msg {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn roundtrip_skewed_histogram() {
        let freqs = vec![1000, 500, 100, 10, 1, 0, 3];
        let msg = vec![0, 1, 0, 2, 0, 6, 4, 3, 1, 0, 0, 2];
        roundtrip(&freqs, &msg);
    }

    #[test]
    fn roundtrip_uniform_histogram() {
        let freqs = vec![5u64; 257];
        let msg: Vec<u32> = (0..257).collect();
        roundtrip(&freqs, &msg);
    }

    #[test]
    fn single_symbol_alphabet() {
        let freqs = vec![0, 42, 0];
        let msg = vec![1u32; 100];
        roundtrip(&freqs, &msg);
    }

    #[test]
    fn empty_alphabet_rejected() {
        assert_eq!(code_lengths(&[0, 0]).unwrap_err(), HuffmanError::EmptyAlphabet);
        assert!(HuffmanEncoder::from_freqs(&[]).is_err());
    }

    #[test]
    fn unknown_symbol_rejected() {
        let enc = HuffmanEncoder::from_freqs(&[10, 0, 10]).unwrap();
        let mut w = BitWriter::new();
        assert_eq!(enc.encode(1, &mut w).unwrap_err(), HuffmanError::UnknownSymbol(1));
        assert_eq!(enc.encode(7, &mut w).unwrap_err(), HuffmanError::UnknownSymbol(7));
    }

    #[test]
    fn skewed_codes_beat_flat_codes() {
        // Entropy coding must give the frequent symbol a short code.
        let freqs = vec![10_000u64, 10, 10, 10];
        let enc = HuffmanEncoder::from_freqs(&freqs).unwrap();
        let lens = enc.lengths();
        assert_eq!(lens[0], 1, "dominant symbol should get a 1-bit code");
        let bits = enc.encoded_bits(&freqs);
        let flat = 2 * freqs.iter().sum::<u64>();
        assert!(bits < flat, "huffman {bits} bits vs flat {flat}");
    }

    #[test]
    fn encode_slice_matches_per_symbol_encode() {
        // The batched emitter packs pairs of codes per accumulator round;
        // its output must be byte-for-byte what the one-at-a-time path
        // produces, including odd-length slices that hit the remainder
        // loop and skewed alphabets with long codes.
        let mut freqs = vec![1u64; 700];
        freqs[0] = 1 << 20;
        freqs[1] = 1 << 14;
        freqs[3] = 1 << 9;
        let enc = HuffmanEncoder::from_freqs(&freqs).unwrap();
        let mut x = 0x9e37_79b9u32;
        let msg: Vec<u32> = (0..10_001)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                if x % 4 == 0 { x % 700 } else { x % 4 }
            })
            .collect();
        for len in [0usize, 1, 2, 7, 10_001] {
            let mut a = BitWriter::new();
            for &s in &msg[..len] {
                enc.encode(s, &mut a).unwrap();
            }
            let mut b = BitWriter::new();
            enc.encode_slice(&msg[..len], &mut b).unwrap();
            assert_eq!(a.into_bytes(), b.into_bytes(), "len={len}");
        }
    }

    #[test]
    fn encode_slice_rejects_unknown_symbols() {
        let enc = HuffmanEncoder::from_freqs(&[10, 0, 10]).unwrap();
        let mut w = BitWriter::new();
        // Out-of-alphabet and zero-frequency symbols must error in both
        // the paired loop and the remainder loop.
        assert_eq!(enc.encode_slice(&[0, 7], &mut w).unwrap_err(), HuffmanError::UnknownSymbol(7));
        assert_eq!(enc.encode_slice(&[0, 1], &mut w).unwrap_err(), HuffmanError::UnknownSymbol(1));
        assert_eq!(
            enc.encode_slice(&[0, 2, 9], &mut w).unwrap_err(),
            HuffmanError::UnknownSymbol(9)
        );
        assert_eq!(
            enc.encode_slice(&[2, 0, 1], &mut w).unwrap_err(),
            HuffmanError::UnknownSymbol(1)
        );
    }

    #[test]
    fn kraft_inequality_holds() {
        let freqs: Vec<u64> = (1..=64).map(|i| i * i).collect();
        let lens = code_lengths(&freqs).unwrap();
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft={kraft}");
    }

    #[test]
    fn corrupt_stream_detected() {
        let enc = HuffmanEncoder::from_freqs(&[10, 20, 30, 5, 2]).unwrap();
        let dec = HuffmanDecoder::from_lengths(&enc.lengths()).unwrap();
        // A stream of all-ones longer than any code but never matching at
        // any length either decodes to *some* symbols or errors out at
        // exhaustion — it must not panic or loop forever.
        let bytes = vec![0xFFu8; 2];
        let mut r = BitReader::new(&bytes);
        let mut decoded = 0;
        while decoded < 100 {
            match dec.decode(&mut r) {
                Ok(_) => decoded += 1,
                Err(_) => break,
            }
        }
        assert!(decoded < 100);
    }

    #[test]
    fn lut_and_walk_paths_agree_on_every_symbol() {
        // Alphabet sized so codes straddle LUT_BITS: frequent symbols get
        // short (LUT) codes, the long tail exceeds the table width.
        let mut freqs = vec![1u64; 5000];
        freqs[0] = 1 << 20;
        freqs[1] = 1 << 16;
        freqs[2] = 1 << 12;
        let enc = HuffmanEncoder::from_freqs(&freqs).unwrap();
        let dec = HuffmanDecoder::from_lengths(&enc.lengths()).unwrap();
        let lens = enc.lengths();
        assert!(lens.iter().any(|&l| l > 0 && l <= LUT_BITS), "need LUT-covered codes");
        assert!(lens.iter().any(|&l| l > LUT_BITS), "need walk-only codes");
        // Every symbol must decode identically through decode() (LUT) and
        // decode_walk().
        let msg: Vec<u32> = (0..5000).step_by(7).chain([0, 1, 2, 4999]).collect();
        let mut w = BitWriter::new();
        for &s in &msg {
            enc.encode(s, &mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let mut fast = BitReader::new(&bytes);
        let mut slow = BitReader::new(&bytes);
        for &s in &msg {
            assert_eq!(dec.decode(&mut fast).unwrap(), s);
            assert_eq!(dec.decode_walk(&mut slow).unwrap(), s);
            assert_eq!(fast.bit_pos(), slow.bit_pos(), "paths must consume identically");
        }
    }

    #[test]
    fn lut_path_respects_stream_end() {
        // A stream that ends mid-code must error, not decode padding zeros.
        let enc = HuffmanEncoder::from_freqs(&[100, 1, 1, 1, 1, 1, 1, 1, 1]).unwrap();
        let dec = HuffmanDecoder::from_lengths(&enc.lengths()).unwrap();
        let mut w = BitWriter::new();
        enc.encode(3, &mut w).unwrap(); // a multi-bit code
        let bytes = w.into_bytes();
        // Decode from an empty stream: must be Corrupt, not symbol 0.
        let empty: [u8; 0] = [];
        let mut r = BitReader::new(&empty);
        assert_eq!(dec.decode(&mut r), Err(HuffmanError::Corrupt));
        // Full stream decodes fine.
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r).unwrap(), 3);
    }

    #[test]
    fn decoder_rejects_overlong_lengths() {
        let mut lens = vec![8u8; 4];
        lens[0] = MAX_CODE_LEN + 1;
        assert_eq!(HuffmanDecoder::from_lengths(&lens).unwrap_err(), HuffmanError::Corrupt);
    }
}
