//! Runtime-dispatched SIMD kernels for the SZ predict/quantize hot path.
//!
//! Lorenzo prediction over *reconstructed* neighbours is a serial
//! recurrence: the prediction for column `i` needs the reconstructed value
//! of column `i − 1`, which is only known after quantizing column `i − 1`.
//! That dependence defeats naive vectorization along a row, so the AVX2
//! kernel vectorizes **across rows** instead:
//!
//! * Rows are processed in groups of [`LANES`] (16), split into column
//!   tiles of [`TILE`] (32). A wavefront schedule staggers the lanes —
//!   at step `s`, lane `m` works on tile `s − m` — so that when a lane
//!   builds the partial stencil sums for its tile, the row above (lane
//!   `m − 1`) has already committed that tile's reconstructed values.
//! * Within a step, the active lanes' tiles are transposed to lane-major
//!   layout and the quantization chain (`pred = partial + left`,
//!   `x = (v − pred)·(2eb)⁻¹`, `q = round(x)`, `rec = pred + q·2eb`)
//!   runs as independent 4-wide vector recurrences over the 32 columns —
//!   the serial dependence is still there, but each iteration now
//!   retires up to 16 rows and the recurrences' latencies overlap.
//! * The vector chain is **speculative**: it scales by a precomputed
//!   reciprocal instead of the reference division, and rounds
//!   ties-to-even. A SIMD verify pass then checks, per column, (a) the
//!   residual is inside the quantizer range shrunk by the reciprocal's
//!   worst-case drift, (b) the residual is provably far from every
//!   rounding boundary (which also rejects halfway ties, where
//!   ties-to-even and the scalar path's ties-away-from-zero disagree),
//!   and (c) the error bound still holds after the decompressor's
//!   narrowing cast. Any failing column
//!   aborts the lane's tile at that point and a scalar fixup re-encodes
//!   the rest of the tile with the exact reference code path (including
//!   escape literals). Failures are rare — outliers and ties — so the
//!   common case stays fully vectorized.
//!
//! Everything the fast path emits (symbols, literals, reconstructed
//! values) is **bit-identical** to the scalar reference: verified columns
//! are proven to round identically, and unverified columns run the
//! reference code verbatim. `tests/format_regression.rs` pins stream
//! hashes across both paths.
//!
//! Dispatch: the kernel runs only when the CPU reports AVX2 at runtime
//! ([`simd_available`]) and the `LCPIO_SZ_FORCE_SCALAR` environment
//! variable (or [`force_scalar`]) has not disabled it. Rows narrower than
//! one tile, non-finite bin widths, oversized radii, and element types
//! other than `f32`/`f64` fall back to the scalar path per call.

use crate::element::Element;
use crate::quantizer::Quantizer;
use std::sync::atomic::{AtomicU8, Ordering};

/// Columns per tile: the unit of speculative vector work per lane.
pub const TILE: usize = 32;
/// Rows per wavefront group (four 4-wide f64 vectors). Sixteen rows keep
/// four independent quantization recurrences in flight, which hides the
/// latency of the divide on the chain's critical path.
pub const LANES: usize = 16;

const UNKNOWN: u8 = 0;
const FORCED_SCALAR: u8 = 1;
const FAST_OK: u8 = 2;

/// Cached dispatch decision: `UNKNOWN` until the environment is read.
static DISPATCH: AtomicU8 = AtomicU8::new(UNKNOWN);

/// Force the scalar reference path (`true`) or the fast path (`false`),
/// overriding the `LCPIO_SZ_FORCE_SCALAR` environment variable. Process
/// global; intended for tests and benchmarks that compare both paths.
pub fn force_scalar(on: bool) {
    DISPATCH.store(if on { FORCED_SCALAR } else { FAST_OK }, Ordering::SeqCst);
}

/// Undo [`force_scalar`]: the next dispatch re-reads the environment.
pub fn reset_force_scalar() {
    DISPATCH.store(UNKNOWN, Ordering::SeqCst);
}

fn scalar_forced() -> bool {
    match DISPATCH.load(Ordering::Relaxed) {
        FORCED_SCALAR => true,
        FAST_OK => false,
        _ => {
            let forced = std::env::var("LCPIO_SZ_FORCE_SCALAR")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false);
            DISPATCH.store(if forced { FORCED_SCALAR } else { FAST_OK }, Ordering::Relaxed);
            forced
        }
    }
}

/// Whether this CPU supports the vector kernels (AVX2, checked at
/// runtime — the crate builds and runs on any target).
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the fast paths (vector kernels, batched Huffman emission) are
/// active: AVX2 present and not forced scalar.
pub fn fast_enabled() -> bool {
    !scalar_forced() && simd_available()
}

/// Reusable working buffers for the wavefront kernel, held inside
/// [`crate::SzScratch`] so repeated compressions do not reallocate.
#[derive(Debug)]
pub(crate) struct KernelScratch<T> {
    /// Partial stencil sums, `LANES` rows × `TILE` cols, row-major.
    pbuf: Vec<f64>,
    /// Transposed (lane-major) partials / widened originals for the
    /// vector chain. `dt` is filled straight from the input grid by the
    /// widening transpose — there is no row-major staging copy.
    pt: Vec<f64>,
    dt: Vec<f64>,
    /// Chain outputs, lane-major: residuals, rounded bins, reconstructions.
    xt: Vec<f64>,
    qt: Vec<f64>,
    rt: Vec<f64>,
    /// Chain outputs transposed back to row-major for verify/commit.
    xrow: Vec<f64>,
    qrow: Vec<f64>,
    rrow: Vec<f64>,
    /// Per-lane escape literals, flushed in row order at group end.
    lits: Vec<Vec<T>>,
    /// Scratch row for the scalar reference helper (borders and tails).
    rowp: Vec<f64>,
}

impl<T> KernelScratch<T> {
    pub(crate) fn new() -> Self {
        KernelScratch {
            pbuf: Vec::new(),
            pt: Vec::new(),
            dt: Vec::new(),
            xt: Vec::new(),
            qt: Vec::new(),
            rt: Vec::new(),
            xrow: Vec::new(),
            qrow: Vec::new(),
            rrow: Vec::new(),
            lits: Vec::new(),
            rowp: Vec::new(),
        }
    }

    #[cfg(target_arch = "x86_64")]
    fn prepare(&mut self) {
        let n = LANES * TILE;
        self.pbuf.resize(n, 0.0);
        self.pt.resize(n, 0.0);
        self.dt.resize(n, 0.0);
        self.xt.resize(n, 0.0);
        self.qt.resize(n, 0.0);
        self.rt.resize(n, 0.0);
        self.xrow.resize(n, 0.0);
        self.qrow.resize(n, 0.0);
        self.rrow.resize(n, 0.0);
        self.lits.resize_with(LANES, Vec::new);
    }
}

/// Vectorized whole-array Lorenzo encode for rank ≥ 2 grids. Fills
/// `symbols` (indexed, length `nz·ny·nx`), appends escape literals in scan
/// order, and writes reconstructed values into `recon` (caller-resized).
/// When `hist` is given (4 contiguous stripes of `alphabet_size` counts,
/// caller-zeroed), symbol counts are accumulated at tile-commit time —
/// fusing the entropy stage's histogram into the pass that already holds
/// the freshly-written symbols in cache, so the standalone histogram scan
/// over the symbol array disappears. Stripe assignment is arbitrary; only
/// the merged sums matter. Returns `false` — leaving all outputs
/// untouched except possibly `symbols` length — when the shape,
/// quantizer, element type, or CPU rules the fast path out; the caller
/// then runs the scalar reference (and its own histogram pass).
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_classic_fast<T: Element>(
    data: &[T],
    nz: usize,
    ny: usize,
    nx: usize,
    q: &Quantizer,
    symbols: &mut Vec<u32>,
    literals: &mut Vec<T>,
    recon: &mut [f64],
    ks: &mut KernelScratch<T>,
    hist: Option<&mut [u32]>,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        x86::encode_classic_fast(data, nz, ny, nx, q, symbols, literals, recon, ks, hist)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, nz, ny, nx, q, symbols, literals, recon, ks, hist);
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{KernelScratch, LANES, TILE};
    use crate::element::Element;
    use crate::predictor::lorenzo_3d_row_partial;
    use crate::quantizer::Quantizer;
    use std::any::TypeId;
    use std::arch::x86_64::*;

    /// Exact replica of the pipeline's `encode_one`: quantize with the
    /// reference quantizer, re-verify the bound after the narrowing cast,
    /// escape to a literal otherwise. Returns `(symbol, reconstructed)`.
    #[inline]
    fn ref_encode_at<T: Element>(q: &Quantizer, pred: f64, orig: T, lits: &mut Vec<T>) -> (u32, f64) {
        if let Some((c, rec)) = q.try_encode(pred, orig.to_f64()) {
            if (T::from_f64(rec).to_f64() - orig.to_f64()).abs() <= q.error_bound() {
                return (c, rec);
            }
        }
        lits.push(orig);
        (0, orig.to_f64())
    }

    /// Scalar reference encode of row `(k, j)`, columns `i0..i1` —
    /// identical arithmetic to the pipeline's row loop. Used for tile
    /// tails and leftover rows of a plane.
    #[allow(clippy::too_many_arguments)]
    fn encode_row_ref<T: Element>(
        data: &[T],
        ny: usize,
        nx: usize,
        k: usize,
        j: usize,
        i0: usize,
        i1: usize,
        q: &Quantizer,
        symbols: &mut [u32],
        lits: &mut Vec<T>,
        recon: &mut [f64],
        rowp: &mut Vec<f64>,
        hist: Option<&mut [u32]>,
    ) {
        rowp.clear();
        rowp.resize(i1 - i0, 0.0);
        lorenzo_3d_row_partial(recon, ny, nx, k, j, i0, i1, rowp);
        let base = (k * ny + j) * nx;
        let mut left = if i0 > 0 { recon[base + i0 - 1] } else { 0.0 };
        for (off, i) in (i0..i1).enumerate() {
            let pred = rowp[off] + left;
            let (sym, rec) = ref_encode_at(q, pred, data[base + i], lits);
            symbols[base + i] = sym;
            recon[base + i] = rec;
            left = rec;
        }
        if let Some(h) = hist {
            hist_count(h, &symbols[base + i0..base + i1]);
        }
    }

    /// Accumulate `syms` into the 4-stripe histogram `h` (layout: 4
    /// contiguous stripes of `h.len()/4` counts each, merged by the
    /// caller into one frequency table). Which stripe a symbol lands in
    /// is arbitrary — only the merged sums matter — so this is free to
    /// stripe per call site rather than per global stream position.
    fn hist_count(h: &mut [u32], syms: &[u32]) {
        let a = h.len() / 4;
        let (h0, rest) = h.split_at_mut(a);
        let (h1, rest) = rest.split_at_mut(a);
        let (h2, h3) = rest.split_at_mut(a);
        let mut chunks = syms.chunks_exact(4);
        for c in &mut chunks {
            h0[c[0] as usize] += 1;
            h1[c[1] as usize] += 1;
            h2[c[2] as usize] += 1;
            h3[c[3] as usize] += 1;
        }
        for &sym in chunks.remainder() {
            h0[sym as usize] += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn encode_classic_fast<T: Element>(
        data: &[T],
        nz: usize,
        ny: usize,
        nx: usize,
        q: &Quantizer,
        symbols: &mut Vec<u32>,
        literals: &mut Vec<T>,
        recon: &mut [f64],
        ks: &mut KernelScratch<T>,
        mut hist: Option<&mut [u32]>,
    ) -> bool {
        // The speculative chain and the i32 symbol conversion are only
        // exact under these preconditions; anything else runs scalar.
        let known_type =
            TypeId::of::<T>() == TypeId::of::<f32>() || TypeId::of::<T>() == TypeId::of::<f64>();
        if !super::simd_available() || nx < TILE || !q.fast_exact() || !known_type {
            return false;
        }
        let n = nz * ny * nx;
        debug_assert_eq!(recon.len(), n);
        // Every slot is overwritten below (wavefront commit, scalar
        // repair, or the reference row helper), so values surviving from
        // a previous run are harmless — skip the whole-array re-zero.
        symbols.truncate(n);
        symbols.resize(n, 0);
        ks.prepare();
        let ntiles = nx / TILE;
        for k in 0..nz {
            let mut j = 0usize;
            while j + LANES <= ny {
                // SAFETY: AVX2 availability was checked above via
                // `simd_available()`; slice lengths are established by
                // `ks.prepare()` and the geometry bounds (`j + LANES ≤ ny`,
                // `ntiles·TILE ≤ nx`).
                unsafe {
                    wavefront_group(
                        data,
                        ny,
                        nx,
                        k,
                        j,
                        ntiles,
                        q,
                        symbols,
                        literals,
                        recon,
                        ks,
                        hist.as_deref_mut(),
                    );
                }
                j += LANES;
            }
            while j < ny {
                encode_row_ref(
                    data,
                    ny,
                    nx,
                    k,
                    j,
                    0,
                    nx,
                    q,
                    symbols,
                    literals,
                    recon,
                    &mut ks.rowp,
                    hist.as_deref_mut(),
                );
                j += 1;
            }
        }
        true
    }

    /// Encode rows `j0..j0 + LANES` of plane `k` with the wavefront
    /// schedule: at step `s`, lane `m` handles column tile `s − m`, so
    /// the row above always committed the same tile one step earlier and
    /// the stencil partials only ever read finalized reconstructions.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available, `ks.prepare()` has run,
    /// `j0 + LANES ≤ ny`, `ntiles·TILE ≤ nx`, and `data`/`recon`/
    /// `symbols` cover the `nz·ny·nx` grid.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn wavefront_group<T: Element>(
        data: &[T],
        ny: usize,
        nx: usize,
        k: usize,
        j0: usize,
        ntiles: usize,
        q: &Quantizer,
        symbols: &mut [u32],
        literals: &mut Vec<T>,
        recon: &mut [f64],
        ks: &mut KernelScratch<T>,
        mut hist: Option<&mut [u32]>,
    ) {
        let eb = q.error_bound();
        let twoeb = 2.0 * eb;
        let rinv = 1.0 / twoeb;
        let radius = q.radius();
        let radf = radius as f64;
        // The chain's reciprocal-scaled residual carries a few ulps of
        // relative error versus the reference division, so the commit
        // predicates shrink every threshold by a relative 2⁻⁵⁰ — at
        // least 8× the worst-case drift (≤ ~3 units in 2⁻⁵³, plus the
        // threshold's own rounding). Residuals inside the shrunk band
        // provably round like the reference; the sliver between the
        // bands is simply repaired scalar.
        let margin = 1.0 - 2f64.powi(-50);
        let radm = (radf - 0.5) * margin;
        let tail0 = ntiles * TILE;
        let mut prev = [0.0f64; LANES];
        for l in ks.lits.iter_mut() {
            l.clear();
        }
        let steps = ntiles + LANES - 1;
        for s in 0..steps {
            let mlo = (s + 1).saturating_sub(ntiles);
            let mhi = s.min(LANES - 1);
            // Per-lane tile start offsets into the grid. Idle lanes get a
            // clamped (valid but meaningless) tile so the widening
            // transpose below never reads out of bounds; their results
            // are never committed.
            let mut bases = [0usize; LANES];
            for (m, b) in bases.iter_mut().enumerate() {
                let t = s.saturating_sub(m).min(ntiles - 1);
                *b = (k * ny + j0 + m) * nx + t * TILE;
            }
            // Phase 1: per active lane, build the stencil partials for
            // tile `s − m`, row-major. (`m` addresses the lane's tile
            // index, row, `pbuf` window and `prev` slot at once — the
            // range loop is the clearer form here.)
            #[allow(clippy::needless_range_loop)]
            for m in mlo..=mhi {
                let t = s - m;
                let jrow = j0 + m;
                let i0 = t * TILE;
                lorenzo_3d_row_partial(
                    recon,
                    ny,
                    nx,
                    k,
                    jrow,
                    i0,
                    i0 + TILE,
                    &mut ks.pbuf[m * TILE..(m + 1) * TILE],
                );
                if t == 0 {
                    // A row's chain enters its first tile with left = 0
                    // (array border). Also wipes stale garbage from the
                    // lane's idle steps.
                    prev[m] = 0.0;
                }
            }
            // Phase 2: transpose the active 4-lane groups to lane-major
            // and run the speculative vector chain (inactive lanes inside
            // a boundary group compute garbage that is never committed).
            let glo = mlo / 4;
            let ghi = mhi / 4;
            transpose_to_lanes(&ks.pbuf, &mut ks.pt, glo, ghi);
            transpose_data_to_lanes(data, &bases, &mut ks.dt, glo, ghi);
            let prev_in = prev;
            match ghi - glo {
                0 => chain_tile::<1>(&ks.pt, &ks.dt, &mut ks.xt, &mut ks.qt, &mut ks.rt, &mut prev, glo, twoeb, rinv),
                1 => chain_tile::<2>(&ks.pt, &ks.dt, &mut ks.xt, &mut ks.qt, &mut ks.rt, &mut prev, glo, twoeb, rinv),
                2 => chain_tile::<3>(&ks.pt, &ks.dt, &mut ks.xt, &mut ks.qt, &mut ks.rt, &mut prev, glo, twoeb, rinv),
                _ => chain_tile::<4>(&ks.pt, &ks.dt, &mut ks.xt, &mut ks.qt, &mut ks.rt, &mut prev, glo, twoeb, rinv),
            }
            transpose_from_lanes(&ks.xt, &mut ks.xrow, glo, ghi);
            transpose_from_lanes(&ks.qt, &mut ks.qrow, glo, ghi);
            transpose_from_lanes(&ks.rt, &mut ks.rrow, glo, ghi);
            // Phase 3: verify each active lane's tile and commit, or
            // repair from the first failing column with the reference
            // scalar path.
            for m in mlo..=mhi {
                let t = s - m;
                let jrow = j0 + m;
                let i0 = t * TILE;
                let base = (k * ny + jrow) * nx + i0;
                let xr = &ks.xrow[m * TILE..(m + 1) * TILE];
                let qr = &ks.qrow[m * TILE..(m + 1) * TILE];
                let rr = &ks.rrow[m * TILE..(m + 1) * TILE];
                let fail = verify_lane::<T>(xr, qr, rr, &data[base..base + TILE], radm, eb);
                if fail == 0 {
                    recon[base..base + TILE].copy_from_slice(rr);
                    syms_from_q(qr, radf, &mut symbols[base..base + TILE]);
                } else {
                    let f = fail.trailing_zeros() as usize;
                    recon[base..base + f].copy_from_slice(&rr[..f]);
                    for (c, sym) in symbols[base..base + f].iter_mut().enumerate() {
                        *sym = (qr[c] as i64 + radius as i64) as u32;
                    }
                    let mut pv = if f > 0 { rr[f - 1] } else { prev_in[m] };
                    for c in f..TILE {
                        let pred = ks.pbuf[m * TILE + c] + pv;
                        let (sym, rec) = ref_encode_at(q, pred, data[base + c], &mut ks.lits[m]);
                        symbols[base + c] = sym;
                        recon[base + c] = rec;
                        pv = rec;
                    }
                    prev[m] = pv;
                }
                // Fused histogram: the tile's symbols are final here
                // (verified commit or scalar repair) and still hot in
                // cache, so count them now instead of in a second pass
                // over the whole symbol array.
                if let Some(h) = hist.as_deref_mut() {
                    hist_count(h, &symbols[base..base + TILE]);
                }
            }
        }
        // Tails (columns past the last full tile) and the per-lane
        // literal flush, in row order so the literal stream matches the
        // scalar scan exactly.
        for m in 0..LANES {
            let jrow = j0 + m;
            if tail0 < nx {
                encode_row_ref(
                    data,
                    ny,
                    nx,
                    k,
                    jrow,
                    tail0,
                    nx,
                    q,
                    symbols,
                    &mut ks.lits[m],
                    recon,
                    &mut ks.rowp,
                    hist.as_deref_mut(),
                );
            }
            literals.append(&mut ks.lits[m]);
        }
    }

    /// Transpose row-major rows of `TILE` f64 into lane-major
    /// (`out[c·LANES + m] = rows[m·TILE + c]`) with 4×4 AVX2 blocks, for
    /// the 4-lane groups `glo..=ghi` only (idle wavefront lanes skip the
    /// shuffle work entirely).
    ///
    /// # Safety
    ///
    /// AVX2 must be available; both slices must hold `LANES·TILE` values
    /// and `ghi < LANES / 4`.
    #[target_feature(enable = "avx2")]
    unsafe fn transpose_to_lanes(rows: &[f64], out: &mut [f64], glo: usize, ghi: usize) {
        debug_assert_eq!(rows.len(), LANES * TILE);
        debug_assert_eq!(out.len(), LANES * TILE);
        for c0 in (0..TILE).step_by(4) {
            for g in glo..=ghi {
                let r0 = _mm256_loadu_pd(rows.as_ptr().add((g * 4) * TILE + c0));
                let r1 = _mm256_loadu_pd(rows.as_ptr().add((g * 4 + 1) * TILE + c0));
                let r2 = _mm256_loadu_pd(rows.as_ptr().add((g * 4 + 2) * TILE + c0));
                let r3 = _mm256_loadu_pd(rows.as_ptr().add((g * 4 + 3) * TILE + c0));
                let t0 = _mm256_unpacklo_pd(r0, r1);
                let t1 = _mm256_unpackhi_pd(r0, r1);
                let t2 = _mm256_unpacklo_pd(r2, r3);
                let t3 = _mm256_unpackhi_pd(r2, r3);
                let c_0 = _mm256_permute2f128_pd::<0x20>(t0, t2);
                let c_1 = _mm256_permute2f128_pd::<0x20>(t1, t3);
                let c_2 = _mm256_permute2f128_pd::<0x31>(t0, t2);
                let c_3 = _mm256_permute2f128_pd::<0x31>(t1, t3);
                _mm256_storeu_pd(out.as_mut_ptr().add(c0 * LANES + g * 4), c_0);
                _mm256_storeu_pd(out.as_mut_ptr().add((c0 + 1) * LANES + g * 4), c_1);
                _mm256_storeu_pd(out.as_mut_ptr().add((c0 + 2) * LANES + g * 4), c_2);
                _mm256_storeu_pd(out.as_mut_ptr().add((c0 + 3) * LANES + g * 4), c_3);
            }
        }
    }

    /// Load 4 grid values starting at `off`, widened to f64. The `f32`
    /// case fuses the narrowing-type widen into the load, so the kernel
    /// needs no row-major staging copy of the input.
    ///
    /// # Safety
    ///
    /// AVX2 must be available; `off + 4 ≤ data.len()`; `is_f32` must
    /// match `T` exactly (`f32` when true, `f64` when false).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn load_widened<T: Element>(data: &[T], off: usize, is_f32: bool) -> __m256d {
        debug_assert!(off + 4 <= data.len());
        if is_f32 {
            // SAFETY: caller guarantees `T == f32` via `is_f32`.
            _mm256_cvtps_pd(_mm_loadu_ps(data.as_ptr().add(off) as *const f32))
        } else {
            // SAFETY: caller guarantees `T == f64` via `is_f32`.
            _mm256_loadu_pd(data.as_ptr().add(off) as *const f64)
        }
    }

    /// Gather the active lanes' input tiles straight from the grid into
    /// lane-major f64 (`out[c·LANES + m] = data[bases[m] + c]`), widening
    /// `f32` on the fly — the same 4×4 shuffle network as
    /// [`transpose_to_lanes`] fed by per-lane row pointers.
    ///
    /// # Safety
    ///
    /// AVX2 must be available; every `bases[m] + TILE ≤ data.len()`;
    /// `out` must hold `LANES·TILE` values; `ghi < LANES / 4`; `T` must
    /// be exactly `f32` or `f64` (checked by the caller via `TypeId`).
    #[target_feature(enable = "avx2")]
    unsafe fn transpose_data_to_lanes<T: Element>(
        data: &[T],
        bases: &[usize; LANES],
        out: &mut [f64],
        glo: usize,
        ghi: usize,
    ) {
        debug_assert_eq!(out.len(), LANES * TILE);
        let is_f32 = TypeId::of::<T>() == TypeId::of::<f32>();
        debug_assert!(is_f32 || TypeId::of::<T>() == TypeId::of::<f64>());
        for c0 in (0..TILE).step_by(4) {
            for g in glo..=ghi {
                let r0 = load_widened(data, bases[g * 4] + c0, is_f32);
                let r1 = load_widened(data, bases[g * 4 + 1] + c0, is_f32);
                let r2 = load_widened(data, bases[g * 4 + 2] + c0, is_f32);
                let r3 = load_widened(data, bases[g * 4 + 3] + c0, is_f32);
                let t0 = _mm256_unpacklo_pd(r0, r1);
                let t1 = _mm256_unpackhi_pd(r0, r1);
                let t2 = _mm256_unpacklo_pd(r2, r3);
                let t3 = _mm256_unpackhi_pd(r2, r3);
                let c_0 = _mm256_permute2f128_pd::<0x20>(t0, t2);
                let c_1 = _mm256_permute2f128_pd::<0x20>(t1, t3);
                let c_2 = _mm256_permute2f128_pd::<0x31>(t0, t2);
                let c_3 = _mm256_permute2f128_pd::<0x31>(t1, t3);
                _mm256_storeu_pd(out.as_mut_ptr().add(c0 * LANES + g * 4), c_0);
                _mm256_storeu_pd(out.as_mut_ptr().add((c0 + 1) * LANES + g * 4), c_1);
                _mm256_storeu_pd(out.as_mut_ptr().add((c0 + 2) * LANES + g * 4), c_2);
                _mm256_storeu_pd(out.as_mut_ptr().add((c0 + 3) * LANES + g * 4), c_3);
            }
        }
    }

    /// Inverse of [`transpose_to_lanes`]: the same 4×4 shuffle network
    /// (transposition is an involution) with load/store roles swapped,
    /// again restricted to the active groups `glo..=ghi`.
    ///
    /// # Safety
    ///
    /// AVX2 must be available; both slices must hold `LANES·TILE` values
    /// and `ghi < LANES / 4`.
    #[target_feature(enable = "avx2")]
    unsafe fn transpose_from_lanes(lanes: &[f64], rows: &mut [f64], glo: usize, ghi: usize) {
        debug_assert_eq!(lanes.len(), LANES * TILE);
        debug_assert_eq!(rows.len(), LANES * TILE);
        for c0 in (0..TILE).step_by(4) {
            for g in glo..=ghi {
                let c_0 = _mm256_loadu_pd(lanes.as_ptr().add(c0 * LANES + g * 4));
                let c_1 = _mm256_loadu_pd(lanes.as_ptr().add((c0 + 1) * LANES + g * 4));
                let c_2 = _mm256_loadu_pd(lanes.as_ptr().add((c0 + 2) * LANES + g * 4));
                let c_3 = _mm256_loadu_pd(lanes.as_ptr().add((c0 + 3) * LANES + g * 4));
                let t0 = _mm256_unpacklo_pd(c_0, c_1);
                let t1 = _mm256_unpackhi_pd(c_0, c_1);
                let t2 = _mm256_unpacklo_pd(c_2, c_3);
                let t3 = _mm256_unpackhi_pd(c_2, c_3);
                let r0 = _mm256_permute2f128_pd::<0x20>(t0, t2);
                let r1 = _mm256_permute2f128_pd::<0x20>(t1, t3);
                let r2 = _mm256_permute2f128_pd::<0x31>(t0, t2);
                let r3 = _mm256_permute2f128_pd::<0x31>(t1, t3);
                _mm256_storeu_pd(rows.as_mut_ptr().add((g * 4) * TILE + c0), r0);
                _mm256_storeu_pd(rows.as_mut_ptr().add((g * 4 + 1) * TILE + c0), r1);
                _mm256_storeu_pd(rows.as_mut_ptr().add((g * 4 + 2) * TILE + c0), r2);
                _mm256_storeu_pd(rows.as_mut_ptr().add((g * 4 + 3) * TILE + c0), r3);
            }
        }
    }

    /// Bias used for branch-free round-to-nearest: adding then
    /// subtracting `1.5·2^52` leaves an f64 rounded to integer (current
    /// rounding mode, i.e. ties-to-even — ties are caught by the verify
    /// pass and repaired to match the scalar ties-away rounding).
    const MAGIC: f64 = 6_755_399_441_055_744.0;

    /// The speculative quantization chain over one lane-major tile: for
    /// each of `TILE` columns, predict (partial + left neighbour),
    /// quantize, reconstruct, and carry the reconstruction into the next
    /// column — for `NG` active 4-lane groups starting at group `glo`.
    /// The `NG` recurrences are independent, so the out-of-order core
    /// overlaps their latencies.
    ///
    /// The residual is scaled by the *precomputed reciprocal* `rinv`
    /// instead of dividing by the bin width: a multiply has a third of
    /// the divide's latency on the serial critical path. The scaled
    /// residual can differ from the reference division by a couple of
    /// ulps, so the verify pass only accepts columns whose residual sits
    /// farther than a proven error margin from every rounding boundary —
    /// anything closer is re-encoded by the exact scalar path (see
    /// [`verify_lane`]). `prev` carries each lane's running left
    /// neighbour across tiles.
    ///
    /// # Safety
    ///
    /// AVX2 must be available; every slice must hold `LANES·TILE` values
    /// and `glo + NG ≤ LANES / 4`.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn chain_tile<const NG: usize>(
        pt: &[f64],
        dt: &[f64],
        xt: &mut [f64],
        qt: &mut [f64],
        rt: &mut [f64],
        prev: &mut [f64; LANES],
        glo: usize,
        twoeb: f64,
        rinv: f64,
    ) {
        debug_assert_eq!(pt.len(), LANES * TILE);
        debug_assert!(glo + NG <= LANES / 4);
        let vtwoeb = _mm256_set1_pd(twoeb);
        let vrinv = _mm256_set1_pd(rinv);
        let vmagic = _mm256_set1_pd(MAGIC);
        let sign = _mm256_set1_pd(-0.0);
        let mut pv = [_mm256_setzero_pd(); NG];
        for (i, v) in pv.iter_mut().enumerate() {
            *v = _mm256_loadu_pd(prev.as_ptr().add((glo + i) * 4));
        }
        for c in 0..TILE {
            for (i, pvi) in pv.iter_mut().enumerate() {
                let off = c * LANES + (glo + i) * 4;
                let pa = _mm256_loadu_pd(pt.as_ptr().add(off));
                let da = _mm256_loadu_pd(dt.as_ptr().add(off));
                let pred = _mm256_add_pd(pa, *pvi);
                let x = _mm256_mul_pd(_mm256_sub_pd(da, pred), vrinv);
                let q = _mm256_sub_pd(_mm256_add_pd(x, vmagic), vmagic);
                // The scalar rounding keeps the residual's sign on a zero
                // result (−0.25 → −0.0); OR the sign bit back in when
                // q == 0 so reconstructions stay bit-identical.
                let zmask = _mm256_cmp_pd::<_CMP_EQ_OQ>(q, _mm256_setzero_pd());
                let q = _mm256_or_pd(q, _mm256_and_pd(zmask, _mm256_and_pd(x, sign)));
                let rec = _mm256_add_pd(pred, _mm256_mul_pd(q, vtwoeb));
                _mm256_storeu_pd(xt.as_mut_ptr().add(off), x);
                _mm256_storeu_pd(qt.as_mut_ptr().add(off), q);
                _mm256_storeu_pd(rt.as_mut_ptr().add(off), rec);
                *pvi = rec;
            }
        }
        for (i, v) in pv.iter().enumerate() {
            _mm256_storeu_pd(prev.as_mut_ptr().add((glo + i) * 4), *v);
        }
    }

    /// Verify one lane's speculative tile. Returns a bitmask with bit `c`
    /// set when column `c` must be re-encoded by the scalar path: the
    /// residual escapes the (margin-shrunk) quantizer range or is
    /// non-finite, the residual sits within the reciprocal-drift margin
    /// of a rounding boundary (where the speculative multiply cannot be
    /// proven to round like the reference divide — this also catches
    /// exact halfway ties), or the narrowing-cast error check fails. All
    /// comparisons order NaN towards "fail".
    ///
    /// # Safety
    ///
    /// AVX2 must be available; slices must hold `TILE` values; `T` must
    /// be exactly `f32` or `f64` (checked by the caller via `TypeId`).
    #[target_feature(enable = "avx2")]
    unsafe fn verify_lane<T: Element>(
        x: &[f64],
        qv: &[f64],
        r: &[f64],
        orig: &[T],
        radm: f64,
        eb: f64,
    ) -> u32 {
        debug_assert_eq!(orig.len(), TILE);
        let is_f32 = TypeId::of::<T>() == TypeId::of::<f32>();
        debug_assert!(is_f32 || TypeId::of::<T>() == TypeId::of::<f64>());
        let absmask = _mm256_set1_pd(f64::from_bits(0x7fff_ffff_ffff_ffff));
        let vradm = _mm256_set1_pd(radm);
        let vhalf = _mm256_set1_pd(0.5);
        let vone = _mm256_set1_pd(1.0);
        // Per-element boundary margin 2⁻⁵⁰·(|q| + 1): an absolute bound
        // on how far the reciprocal-scaled residual can drift from the
        // reference division (≤ ~3 ulps, so 2⁻⁵⁰ has ≥ 8× slack even
        // after the threshold's own rounding).
        let veps = _mm256_set1_pd(2f64.powi(-50));
        let veb = _mm256_set1_pd(eb);
        let mut fail = 0u32;
        for g in 0..TILE / 4 {
            let xv = _mm256_loadu_pd(x.as_ptr().add(g * 4));
            let qq = _mm256_loadu_pd(qv.as_ptr().add(g * 4));
            let rv = _mm256_loadu_pd(r.as_ptr().add(g * 4));
            let (ov, nv) = if is_f32 {
                // SAFETY: `TypeId` proved `T == f32`, so the slice memory
                // is `TILE` contiguous f32 values.
                let p = orig.as_ptr().add(g * 4) as *const f32;
                let o = _mm256_cvtps_pd(_mm_loadu_ps(p));
                // Reference check round-trips through the narrow type:
                // cvtpd_ps is the same round-to-nearest as an `as` cast.
                let nrw = _mm256_cvtps_pd(_mm256_cvtpd_ps(rv));
                (o, nrw)
            } else {
                // SAFETY: `T == f64` (debug-asserted; callers gate on it).
                let p = orig.as_ptr().add(g * 4) as *const f64;
                (_mm256_loadu_pd(p), rv)
            };
            let ax = _mm256_and_pd(xv, absmask);
            let in_range = _mm256_cmp_pd::<_CMP_LT_OQ>(ax, vradm);
            let d = _mm256_and_pd(_mm256_sub_pd(xv, qq), absmask);
            let aq = _mm256_and_pd(qq, absmask);
            let thr = _mm256_sub_pd(vhalf, _mm256_mul_pd(_mm256_add_pd(aq, vone), veps));
            let near_ok = _mm256_cmp_pd::<_CMP_LT_OQ>(d, thr);
            let err = _mm256_and_pd(_mm256_sub_pd(nv, ov), absmask);
            let narrow_ok = _mm256_cmp_pd::<_CMP_LE_OQ>(err, veb);
            let ok = _mm256_and_pd(near_ok, _mm256_and_pd(in_range, narrow_ok));
            let okbits = _mm256_movemask_pd(ok) as u32;
            fail |= (!okbits & 0xF) << (g * 4);
        }
        fail
    }

    /// Convert a verified lane's rounded bins to symbols:
    /// `sym = q + radius`, done as f64 add (exact: both < 2^31) plus
    /// truncating i32 conversion, 4 symbols per instruction.
    ///
    /// # Safety
    ///
    /// AVX2 must be available; slices must hold `TILE` values; every
    /// `q + radius` must fit in i32 (guaranteed by the range check in
    /// `verify_lane` and `Quantizer::fast_exact`).
    #[target_feature(enable = "avx2")]
    unsafe fn syms_from_q(qr: &[f64], radf: f64, out: &mut [u32]) {
        debug_assert_eq!(qr.len(), TILE);
        debug_assert_eq!(out.len(), TILE);
        let vradf = _mm256_set1_pd(radf);
        for g in 0..TILE / 4 {
            let qv = _mm256_loadu_pd(qr.as_ptr().add(g * 4));
            let si = _mm256_cvttpd_epi32(_mm256_add_pd(qv, vradf));
            _mm_storeu_si128(out.as_mut_ptr().add(g * 4) as *mut __m128i, si);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_overrides_dispatch() {
        force_scalar(true);
        assert!(!fast_enabled());
        force_scalar(false);
        assert_eq!(fast_enabled(), simd_available());
        reset_force_scalar();
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn kernel_matches_reference_on_3d_grid() {
        if !simd_available() {
            return;
        }
        let (nz, ny, nx) = (4usize, 19, 71); // tail columns + leftover rows
        let n = nz * ny * nx;
        let mut s = 0x9e3779b97f4a7c15u64;
        let data: Vec<f32> = (0..n)
            .map(|i| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                if i % 53 == 0 {
                    ((s >> 40) as f32 - 8000.0) * 1e5 // outlier → literal
                } else {
                    (s >> 50) as f32 / 64.0 + (i as f32 * 0.03).sin() * 8.0
                }
            })
            .collect();
        let q = Quantizer::new(1e-3, Quantizer::DEFAULT_RADIUS);

        // Reference: the scalar row loop from the pipeline.
        let mut ref_syms = vec![0u32; n];
        let mut ref_lits: Vec<f32> = Vec::new();
        let mut ref_recon = vec![0.0f64; n];
        let mut rowp = vec![0.0f64; nx];
        let mut idx = 0usize;
        for k in 0..nz {
            for j in 0..ny {
                crate::predictor::lorenzo_3d_row_partial(
                    &ref_recon, ny, nx, k, j, 0, nx, &mut rowp,
                );
                for i in 0..nx {
                    let left = if i > 0 { ref_recon[idx - 1] } else { 0.0 };
                    let pred = rowp[i] + left;
                    let (sym, rec) = if let Some((c, rec)) = q.try_encode(pred, data[idx] as f64) {
                        if (rec as f32 as f64 - data[idx] as f64).abs() <= q.error_bound() {
                            (c, rec)
                        } else {
                            ref_lits.push(data[idx]);
                            (0, data[idx] as f64)
                        }
                    } else {
                        ref_lits.push(data[idx]);
                        (0, data[idx] as f64)
                    };
                    ref_syms[idx] = sym;
                    ref_recon[idx] = rec;
                    idx += 1;
                }
            }
        }

        let mut syms = Vec::new();
        let mut lits: Vec<f32> = Vec::new();
        let mut recon = vec![0.0f64; n];
        let mut ks = KernelScratch::new();
        let alphabet = q.alphabet_size();
        let mut hist = vec![0u32; 4 * alphabet];
        assert!(encode_classic_fast(
            &data,
            nz,
            ny,
            nx,
            &q,
            &mut syms,
            &mut lits,
            &mut recon,
            &mut ks,
            Some(&mut hist),
        ));
        assert_eq!(syms, ref_syms);
        assert_eq!(lits, ref_lits);
        for (a, b) in recon.iter().zip(&ref_recon) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(!lits.is_empty(), "test field should produce escape literals");

        // The fused 4-stripe histogram, merged, must equal a recount of
        // the reference symbol stream.
        let mut merged = vec![0u64; alphabet];
        for (i, &c) in hist.iter().enumerate() {
            merged[i % alphabet] += c as u64;
        }
        let mut expect = vec![0u64; alphabet];
        for &sym in &ref_syms {
            expect[sym as usize] += 1;
        }
        assert_eq!(merged, expect);
    }
}
