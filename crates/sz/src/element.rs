//! Element-type abstraction: the codec supports `f32` and `f64` fields
//! (SDRBench ships both; SZ handles both natively).

/// A floating-point element type the codec can compress.
///
/// Sealed by construction: the format reserves a type tag per
/// implementation, so downstream crates cannot add new element types.
pub trait Element: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Size in bytes of the serialized element.
    const BYTES: usize;
    /// Format tag stored in the stream header.
    const TYPE_TAG: u8;
    /// Widen to f64 (exact for both supported types).
    fn to_f64(self) -> f64;
    /// Narrow from f64 (rounds for f32).
    fn from_f64(v: f64) -> Self;
    /// Append the little-endian bytes.
    fn write_le(self, out: &mut Vec<u8>);
    /// Parse from exactly [`Element::BYTES`] little-endian bytes.
    fn read_le(bytes: &[u8]) -> Self;
}

impl Element for f32 {
    const BYTES: usize = 4;
    const TYPE_TAG: u8 = 0;

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline]
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
    }
}

impl Element for f64 {
    const BYTES: usize = 8;
    const TYPE_TAG: u8 = 1;

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline]
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        f64::from_le_bytes(bytes[..8].try_into().expect("caller provides 8 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip() {
        let mut buf = Vec::new();
        1.5f32.write_le(&mut buf);
        assert_eq!(buf.len(), 4);
        assert_eq!(f32::read_le(&buf), 1.5);
        assert_eq!(f32::from_f64(2.25), 2.25f32);
    }

    #[test]
    fn f64_roundtrip() {
        let mut buf = Vec::new();
        (-2.5e300f64).write_le(&mut buf);
        assert_eq!(buf.len(), 8);
        assert_eq!(f64::read_le(&buf), -2.5e300);
    }

    #[test]
    fn tags_are_distinct() {
        assert_ne!(<f32 as Element>::TYPE_TAG, <f64 as Element>::TYPE_TAG);
    }
}
