//! Bit-granular reader/writer used by the Huffman coder and literal packer.
//!
//! Bits are packed MSB-first within each byte, which keeps the encoded
//! stream byte-order independent and makes canonical Huffman decoding a
//! simple left-to-right walk.

/// Append-only bit sink backed by a `Vec<u8>`.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in the final byte (0 ⇒ byte boundary).
    bit_pos: u8,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New writer with reserved capacity in bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter { buf: Vec::with_capacity(bytes), bit_pos: 0 }
    }

    /// Append a single bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        if self.bit_pos == 0 {
            self.buf.push(0);
        }
        if bit {
            let last = self.buf.len() - 1;
            self.buf[last] |= 1 << (7 - self.bit_pos);
        }
        self.bit_pos = (self.bit_pos + 1) % 8;
    }

    /// Append the low `n` bits of `value`, most-significant first.
    #[inline]
    pub fn push_bits(&mut self, value: u64, n: u8) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    /// Append a whole little-endian u32 (used for literal floats).
    #[inline]
    pub fn push_u32(&mut self, v: u32) {
        self.push_bits(v as u64, 32);
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Finish and return the byte buffer (final byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential bit source over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize, // absolute bit position
}

/// Error returned when a read runs past the end of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitStreamExhausted;

impl std::fmt::Display for BitStreamExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bit stream exhausted")
    }
}

impl std::error::Error for BitStreamExhausted {}

impl<'a> BitReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Next single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, BitStreamExhausted> {
        let byte = self.pos / 8;
        if byte >= self.buf.len() {
            return Err(BitStreamExhausted);
        }
        let bit = (self.buf[byte] >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Next `n` bits as the low bits of a u64, MSB-first.
    #[inline]
    pub fn read_bits(&mut self, n: u8) -> Result<u64, BitStreamExhausted> {
        debug_assert!(n <= 64);
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Ok(v)
    }

    /// Next 32 bits as a u32.
    #[inline]
    pub fn read_u32(&mut self) -> Result<u32, BitStreamExhausted> {
        Ok(self.read_bits(32)? as u32)
    }

    /// Peek up to `n` bits without consuming them. Returns the bits
    /// MSB-first in the low `n` positions (zero-padded past the end of the
    /// stream) plus the number of bits actually available.
    #[inline]
    pub fn peek_bits(&self, n: u8) -> (u64, u8) {
        debug_assert!(n <= 64);
        let total = self.buf.len() * 8;
        let avail = (total.saturating_sub(self.pos)).min(n as usize) as u8;
        let mut v = 0u64;
        for i in 0..n as usize {
            let pos = self.pos + i;
            let bit = if pos < total {
                (self.buf[pos / 8] >> (7 - (pos % 8))) & 1
            } else {
                0
            };
            v = (v << 1) | bit as u64;
        }
        (v, avail)
    }

    /// Consume `n` bits previously inspected with [`BitReader::peek_bits`].
    #[inline]
    pub fn advance(&mut self, n: u8) {
        self.pos += n as usize;
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Remaining readable bits.
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_bits() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.push_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn roundtrip_multi_bit_values() {
        let mut w = BitWriter::new();
        w.push_bits(0b101, 3);
        w.push_bits(0xDEAD, 16);
        w.push_bits(1, 1);
        w.push_u32(0xCAFEBABE);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xDEAD);
        assert_eq!(r.read_bit().unwrap(), true);
        assert_eq!(r.read_u32().unwrap(), 0xCAFEBABE);
    }

    #[test]
    fn exhaustion_detected() {
        let mut w = BitWriter::new();
        w.push_bits(0b11, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        // The padded byte still yields 8 bits; past that we must error.
        assert_eq!(r.read_bits(8).unwrap(), 0b1100_0000);
        assert_eq!(r.read_bit(), Err(BitStreamExhausted));
    }

    #[test]
    fn bit_len_at_byte_boundary() {
        let mut w = BitWriter::new();
        w.push_bits(0xFF, 8);
        assert_eq!(w.bit_len(), 8);
        w.push_bit(true);
        assert_eq!(w.bit_len(), 9);
    }

    #[test]
    fn zero_width_write_is_noop() {
        let mut w = BitWriter::new();
        w.push_bits(123, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn peek_does_not_consume_and_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.push_bits(0b1011, 4);
        let bytes = w.into_bytes(); // one byte: 1011_0000
        let mut r = BitReader::new(&bytes);
        let (v, avail) = r.peek_bits(12);
        assert_eq!(avail, 8, "one byte available");
        assert_eq!(v, 0b1011_0000_0000);
        assert_eq!(r.bit_pos(), 0, "peek must not consume");
        r.advance(4);
        let (v2, avail2) = r.peek_bits(4);
        assert_eq!(avail2, 4);
        assert_eq!(v2, 0b0000);
    }

    #[test]
    fn peek_at_end_reports_zero_available() {
        let mut r = BitReader::new(&[]);
        let (_, avail) = r.peek_bits(8);
        assert_eq!(avail, 0);
        assert_eq!(r.read_bit(), Err(BitStreamExhausted));
    }

    #[test]
    fn remaining_bits_tracks() {
        let bytes = [0u8; 2];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining_bits(), 16);
        r.read_bits(5).unwrap();
        assert_eq!(r.remaining_bits(), 11);
    }
}
