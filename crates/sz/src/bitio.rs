//! Bit-granular reader/writer used by the Huffman coder and literal packer.
//!
//! Bits are packed MSB-first within each byte, which keeps the encoded
//! stream byte-order independent and makes canonical Huffman decoding a
//! simple left-to-right walk.
//!
//! Both directions work a word at a time on the hot paths: the writer
//! collects bits in a 64-bit accumulator and flushes whole bytes, and the
//! reader's [`BitReader::peek_bits`] gathers an aligned 64-bit window with
//! two shifts instead of a per-bit loop. The multi-bit Huffman decode LUT
//! leans on that peek being cheap.

/// Append-only bit sink backed by a `Vec<u8>`.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Pending bits not yet flushed to `buf`, left-aligned (the next bit to
    /// emit is the MSB of `acc`); the unused low `64 - nbits` bits are
    /// always zero. `nbits < 64` between calls: the accumulator spills to
    /// `buf` as a whole big-endian word the moment it fills, so the common
    /// small push is a shift-or with no memory traffic.
    acc: u64,
    nbits: u8,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New writer with reserved capacity in bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter { buf: Vec::with_capacity(bytes), acc: 0, nbits: 0 }
    }

    /// Append a single bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        self.push_bits(bit as u64, 1);
    }

    /// Append the low `n` bits of `value`, most-significant first.
    #[inline]
    pub fn push_bits(&mut self, value: u64, n: u8) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        let masked = if n == 64 { value } else { value & ((1u64 << n) - 1) };
        let total = self.nbits as u32 + n as u32;
        if total <= 64 {
            // Hot path: the bits fit in the accumulator. `total ≥ 1`, so
            // the shift is at most 63 (and exactly 0 only when the word
            // fills completely, where `nbits == 0` implies `acc == 0`).
            self.acc |= masked << (64 - total);
            self.nbits = total as u8;
            if total == 64 {
                self.buf.extend_from_slice(&self.acc.to_be_bytes());
                self.acc = 0;
                self.nbits = 0;
            }
        } else {
            // The push straddles the word boundary: top up the accumulator
            // with the high `space` bits, spill it, and start a fresh word
            // with the remaining `n - space` low bits. Both shift counts
            // are in 1..=63 because 0 < space < n ≤ 64.
            let space = 64 - self.nbits as u32;
            self.acc |= masked >> (n as u32 - space);
            self.buf.extend_from_slice(&self.acc.to_be_bytes());
            let rem = n as u32 - space;
            self.acc = (masked & ((1u64 << rem) - 1)) << (64 - rem);
            self.nbits = rem as u8;
        }
    }

    /// Append a whole little-endian u32 (used for literal floats).
    #[inline]
    pub fn push_u32(&mut self, v: u32) {
        self.push_bits(v as u64, 32);
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Discard all written bits but keep the allocation (scratch reuse).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.acc = 0;
        self.nbits = 0;
    }

    /// Flush any pending partial byte (zero-padded) and borrow the encoded
    /// bytes. The writer stays usable: further pushes start a new byte.
    pub fn finish(&mut self) -> &[u8] {
        if self.nbits > 0 {
            // The accumulator is left-aligned with zeroed low bits, so its
            // leading big-endian bytes are the stream, padding included.
            let nbytes = (self.nbits as usize).div_ceil(8);
            self.buf.extend_from_slice(&self.acc.to_be_bytes()[..nbytes]);
            self.acc = 0;
            self.nbits = 0;
        }
        &self.buf
    }

    /// Finish and return the byte buffer (final byte zero-padded).
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.finish();
        self.buf
    }
}

/// Sequential bit source over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize, // absolute bit position
}

/// Error returned when a read runs past the end of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitStreamExhausted;

impl std::fmt::Display for BitStreamExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bit stream exhausted")
    }
}

impl std::error::Error for BitStreamExhausted {}

impl<'a> BitReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// 64-bit big-endian window starting at the byte containing `pos`,
    /// zero-padded past the end of the buffer.
    #[inline]
    fn window(&self) -> u64 {
        let byte = self.pos / 8;
        if byte + 8 <= self.buf.len() {
            // Hot path: a full aligned 8-byte load.
            u64::from_be_bytes(self.buf[byte..byte + 8].try_into().unwrap())
        } else {
            let mut tmp = [0u8; 8];
            let start = byte.min(self.buf.len());
            let tail = &self.buf[start..];
            tmp[..tail.len()].copy_from_slice(tail);
            u64::from_be_bytes(tmp)
        }
    }

    /// Next single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, BitStreamExhausted> {
        let byte = self.pos / 8;
        if byte >= self.buf.len() {
            return Err(BitStreamExhausted);
        }
        let bit = (self.buf[byte] >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Next `n` bits as the low bits of a u64, MSB-first.
    #[inline]
    pub fn read_bits(&mut self, n: u8) -> Result<u64, BitStreamExhausted> {
        debug_assert!(n <= 64);
        if n == 0 {
            return Ok(0);
        }
        if n <= 56 {
            let (v, avail) = self.peek_bits(n);
            if avail < n {
                return Err(BitStreamExhausted);
            }
            self.pos += n as usize;
            return Ok(v);
        }
        // Wide reads (57–64 bits) are cold: split into two window reads.
        let hi = self.read_bits(n - 32)?;
        let lo = self.read_bits(32)?;
        Ok((hi << 32) | lo)
    }

    /// Next 32 bits as a u32.
    #[inline]
    pub fn read_u32(&mut self) -> Result<u32, BitStreamExhausted> {
        Ok(self.read_bits(32)? as u32)
    }

    /// Peek up to `n` bits without consuming them. Returns the bits
    /// MSB-first in the low `n` positions (zero-padded past the end of the
    /// stream) plus the number of bits actually available.
    ///
    /// `n` may be at most 56 on the single-window fast path; larger widths
    /// fall back to a second window read.
    #[inline]
    pub fn peek_bits(&self, n: u8) -> (u64, u8) {
        debug_assert!(n <= 64);
        let total = self.buf.len() * 8;
        let avail = (total.saturating_sub(self.pos)).min(n as usize) as u8;
        if n == 0 {
            return (0, 0);
        }
        let skew = (self.pos % 8) as u32;
        if n <= 56 {
            // The window holds 64 − skew ≥ 57 usable bits starting at
            // `pos`, so any n ≤ 56 comes out of one load.
            let v = (self.window() << skew) >> (64 - n as u32);
            return (v, avail);
        }
        // Cold path for wide peeks: stitch two windows together.
        let hi_n = n - 32;
        let (hi, _) = self.peek_bits(hi_n);
        let ahead = BitReader { buf: self.buf, pos: self.pos + hi_n as usize };
        let (lo, _) = ahead.peek_bits(32);
        ((hi << 32) | lo, avail)
    }

    /// Consume `n` bits previously inspected with [`BitReader::peek_bits`].
    #[inline]
    pub fn advance(&mut self, n: u8) {
        self.pos += n as usize;
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Remaining readable bits.
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_bits() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.push_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn roundtrip_multi_bit_values() {
        let mut w = BitWriter::new();
        w.push_bits(0b101, 3);
        w.push_bits(0xDEAD, 16);
        w.push_bits(1, 1);
        w.push_u32(0xCAFEBABE);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xDEAD);
        assert_eq!(r.read_bit().unwrap(), true);
        assert_eq!(r.read_u32().unwrap(), 0xCAFEBABE);
    }

    #[test]
    fn exhaustion_detected() {
        let mut w = BitWriter::new();
        w.push_bits(0b11, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        // The padded byte still yields 8 bits; past that we must error.
        assert_eq!(r.read_bits(8).unwrap(), 0b1100_0000);
        assert_eq!(r.read_bit(), Err(BitStreamExhausted));
    }

    #[test]
    fn bit_len_at_byte_boundary() {
        let mut w = BitWriter::new();
        w.push_bits(0xFF, 8);
        assert_eq!(w.bit_len(), 8);
        w.push_bit(true);
        assert_eq!(w.bit_len(), 9);
    }

    #[test]
    fn zero_width_write_is_noop() {
        let mut w = BitWriter::new();
        w.push_bits(123, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn full_width_values_survive() {
        let mut w = BitWriter::new();
        w.push_bit(true); // misalign everything that follows
        w.push_bits(u64::MAX, 64);
        w.push_bits(0x0123_4567_89AB_CDEF, 64);
        w.push_bits(0x7FFF_FFFF_FFFF_FFFF, 63);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit().unwrap(), true);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(64).unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.read_bits(63).unwrap(), 0x7FFF_FFFF_FFFF_FFFF);
    }

    #[test]
    fn clear_resets_and_reuses_allocation() {
        let mut w = BitWriter::new();
        w.push_bits(0xABCD, 16);
        w.push_bits(0b101, 3);
        w.clear();
        assert_eq!(w.bit_len(), 0);
        w.push_bits(0b1011, 4);
        assert_eq!(w.into_bytes(), vec![0b1011_0000]);
    }

    #[test]
    fn finish_pads_and_stays_usable() {
        let mut w = BitWriter::new();
        w.push_bits(0b101, 3);
        assert_eq!(w.finish(), &[0b1010_0000]);
        // Finishing twice is idempotent.
        assert_eq!(w.finish(), &[0b1010_0000]);
    }

    #[test]
    fn peek_does_not_consume_and_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.push_bits(0b1011, 4);
        let bytes = w.into_bytes(); // one byte: 1011_0000
        let mut r = BitReader::new(&bytes);
        let (v, avail) = r.peek_bits(12);
        assert_eq!(avail, 8, "one byte available");
        assert_eq!(v, 0b1011_0000_0000);
        assert_eq!(r.bit_pos(), 0, "peek must not consume");
        r.advance(4);
        let (v2, avail2) = r.peek_bits(4);
        assert_eq!(avail2, 4);
        assert_eq!(v2, 0b0000);
    }

    #[test]
    fn peek_at_end_reports_zero_available() {
        let mut r = BitReader::new(&[]);
        let (_, avail) = r.peek_bits(8);
        assert_eq!(avail, 0);
        assert_eq!(r.read_bit(), Err(BitStreamExhausted));
    }

    #[test]
    fn peek_matches_read_at_every_offset() {
        // The windowed peek must agree with sequential bit reads across
        // byte boundaries, near the end, and for wide widths.
        let bytes: Vec<u8> = (0..32u8).map(|i| i.wrapping_mul(37) ^ 0x5A).collect();
        for start in [0usize, 1, 5, 7, 8, 13, 200, 250, 255] {
            for n in [1u8, 3, 8, 11, 24, 33, 56, 57, 64] {
                let mut seq = BitReader::new(&bytes);
                seq.pos = start.min(bytes.len() * 8);
                let peeker = seq.clone();
                let (v, avail) = peeker.peek_bits(n);
                let mut expect = 0u64;
                let total = bytes.len() * 8;
                for i in 0..n as usize {
                    let pos = seq.pos + i;
                    let bit = if pos < total {
                        (bytes[pos / 8] >> (7 - (pos % 8))) & 1
                    } else {
                        0
                    };
                    expect = (expect << 1) | bit as u64;
                }
                assert_eq!(v, expect, "start={start} n={n}");
                assert_eq!(
                    avail as usize,
                    (total.saturating_sub(seq.pos)).min(n as usize),
                    "start={start} n={n}"
                );
            }
        }
    }

    #[test]
    fn remaining_bits_tracks() {
        let bytes = [0u8; 2];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining_bits(), 16);
        r.read_bits(5).unwrap();
        assert_eq!(r.remaining_bits(), 11);
    }
}
