//! The SZ compression/decompression pipeline.
//!
//! Compression stages (mirroring SZ 1.4/2.x):
//!
//! 1. **Prediction** — Lorenzo stencil over reconstructed values, or the
//!    per-block adaptive choice between Lorenzo and hyperplane regression.
//! 2. **Error-bounded quantization** — residuals land in uniform bins of
//!    width `2·eb`; out-of-range values escape to IEEE literals.
//! 3. **Huffman coding** of the bin indices.
//! 4. **LZSS** lossless pass over the whole payload (optional).
//!
//! Decompression inverts the stages; predictions are computed from
//! reconstructed values only, so the decompressor stays in lock-step with
//! the compressor and every value obeys the absolute error bound.
//!
//! Both `f32` and `f64` fields are supported through [`Element`]; the
//! element type is recorded in the stream header and checked on decode.
//!
//! The hot loops are written row-at-a-time: the six Lorenzo stencil terms
//! that do not depend on the current row are accumulated into a scratch
//! row by [`lorenzo_3d_row_partial`] (elementwise, autovectorizable), and
//! only the single left-neighbour add stays in the serial scan. Repeated
//! compressions (the chunked parallel path) can reuse one [`SzScratch`]
//! per worker via [`compress_typed_with`] so quantize/encode stop
//! allocating per call.

use crate::bitio::{BitReader, BitWriter};
use crate::element::Element;
use crate::header::{Reader, Writer, FLAG_LOSSLESS, MAGIC};
use crate::huffman::{HuffmanDecoder, HuffmanEncoder};
use crate::kernels;
use crate::lossless;
use crate::predictor::lorenzo_3d_row_partial;
use crate::quantizer::Quantizer;
use crate::regression::{block_abs_error, fit_block, BlockCoeffs, BLOCK_SIDE};
use crate::stats::CompressionStats;
use crate::{Compressed, ErrorBound, PredictorMode, SzConfig, SzError};

/// Geometry after fusing 4-D inputs down to 3-D (SZ treats the slowest two
/// dimensions of a 4-D array as one).
#[derive(Debug, Clone, Copy)]
struct Geom {
    nz: usize,
    ny: usize,
    nx: usize,
    rank: usize,
}

fn geometry(dims: &[usize], len: usize) -> Result<Geom, SzError> {
    if dims.is_empty() || dims.len() > 4 || dims.contains(&0) {
        return Err(SzError::InvalidDims);
    }
    let n = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or(SzError::InvalidDims)?;
    if n != len || n == 0 {
        return Err(SzError::InvalidDims);
    }
    let g = match dims.len() {
        1 => Geom { nz: 1, ny: 1, nx: dims[0], rank: 1 },
        2 => Geom { nz: 1, ny: dims[0], nx: dims[1], rank: 2 },
        3 => Geom { nz: dims[0], ny: dims[1], nx: dims[2], rank: 3 },
        _ => Geom { nz: dims[0] * dims[1], ny: dims[2], nx: dims[3], rank: 4 },
    };
    Ok(g)
}

fn resolve_eb<T: Element>(data: &[T], eb: ErrorBound) -> Result<f64, SzError> {
    let abs = match eb {
        ErrorBound::Absolute(e) => e,
        ErrorBound::ValueRangeRelative(r) => {
            if r <= 0.0 || !r.is_finite() {
                return Err(SzError::InvalidErrorBound);
            }
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &v in data {
                let v = v.to_f64();
                if v.is_finite() {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            let range = hi - lo;
            if range > 0.0 {
                r * range
            } else {
                // Constant (or all non-finite) data: any positive bound works.
                r
            }
        }
    };
    if abs <= 0.0 || !abs.is_finite() {
        return Err(SzError::InvalidErrorBound);
    }
    Ok(abs)
}

/// Reusable buffers for repeated compressions and decompressions.
///
/// One compression call touches half a dozen working arrays (symbols,
/// reconstructed values, histograms, bit sinks, …); allocating them per
/// call is pure overhead when many small arrays are compressed in a row —
/// exactly what the chunked parallel path does. Workers hold one scratch
/// each and pass it to [`compress_typed_with`]; buffers grow to the
/// high-water mark and stay. The decode side shares the same scratch via
/// [`decompress_typed_with`] (reconstruction array, code lengths,
/// literals, row partials), so the chunked restart path stops allocating
/// per chunk too.
#[derive(Debug)]
pub struct SzScratch<T> {
    symbols: Vec<u32>,
    literals: Vec<T>,
    recon: Vec<f64>,
    rowp: Vec<f64>,
    vals: Vec<f64>,
    freqs: Vec<u64>,
    hist4: Vec<u32>,
    sym_bits: BitWriter,
    block_bits: BitWriter,
    coeffs: Vec<f32>,
    lit_bytes: Vec<u8>,
    code_lens: Vec<u8>,
    kern: kernels::KernelScratch<T>,
}

impl<T> SzScratch<T> {
    /// New empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        SzScratch {
            symbols: Vec::new(),
            literals: Vec::new(),
            recon: Vec::new(),
            rowp: Vec::new(),
            vals: Vec::new(),
            freqs: Vec::new(),
            hist4: Vec::new(),
            sym_bits: BitWriter::new(),
            block_bits: BitWriter::new(),
            coeffs: Vec::new(),
            lit_bytes: Vec::new(),
            code_lens: Vec::new(),
            kern: kernels::KernelScratch::new(),
        }
    }
}

impl<T> Default for SzScratch<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Quantize one element, verifying that the error bound still holds after
/// the decompressor's final narrowing cast (large-magnitude values can
/// lose more than the slack to f32 rounding); escape to a literal
/// otherwise.
#[inline]
fn encode_one<T: Element>(
    q: &Quantizer,
    pred: f64,
    orig: T,
    symbols: &mut Vec<u32>,
    literals: &mut Vec<T>,
) -> f64 {
    if let Some((c, rec)) = q.try_encode(pred, orig.to_f64()) {
        if (T::from_f64(rec).to_f64() - orig.to_f64()).abs() <= q.error_bound() {
            symbols.push(c);
            return rec;
        }
    }
    symbols.push(0);
    literals.push(orig);
    orig.to_f64()
}

/// [`encode_one`] with the quantizer's branch-free rounding fast path.
/// Bit-identical output (`Quantizer::try_encode_fast` is proven and
/// property-tested equal to `try_encode` whenever `fast_exact()` holds);
/// callers gate on `kernels::fast_enabled() && q.fast_exact()`.
#[inline]
fn encode_one_fast<T: Element>(
    q: &Quantizer,
    pred: f64,
    orig: T,
    symbols: &mut Vec<u32>,
    literals: &mut Vec<T>,
) -> f64 {
    if let Some((c, rec)) = q.try_encode_fast(pred, orig.to_f64()) {
        if (T::from_f64(rec).to_f64() - orig.to_f64()).abs() <= q.error_bound() {
            symbols.push(c);
            return rec;
        }
    }
    symbols.push(0);
    literals.push(orig);
    orig.to_f64()
}

/// Classic (whole-array Lorenzo) encode. Fills `s.symbols` / `s.literals`
/// / `s.recon`; returns `(regression_blocks, lorenzo_blocks, fused)`,
/// where `fused` reports whether the AVX2 kernel already accumulated the
/// symbol histogram into `s.hist4` (requested via `fuse`; only the kernel
/// path fuses — the rank-1 and scalar paths leave counting to the caller).
fn encode_classic<T: Element>(
    data: &[T],
    g: Geom,
    order: u8,
    q: &Quantizer,
    s: &mut SzScratch<T>,
    fuse: bool,
) -> (u64, u64, bool) {
    let n = data.len();
    s.recon.clear();
    s.recon.resize(n, 0.0);
    let fast = kernels::fast_enabled() && q.fast_exact();
    if g.rank == 1 && order == 2 {
        // First two elements peeled so the steady-state loop carries the
        // two previous reconstructions in locals instead of re-deriving
        // the predictor branch (and bounds checks) per element.
        let mut prev = 0.0f64;
        let mut prev2 = 0.0f64;
        for (i, &v) in data.iter().enumerate().take(2) {
            let pred = if i == 0 { 0.0 } else { prev };
            let rec = if fast {
                encode_one_fast(q, pred, v, &mut s.symbols, &mut s.literals)
            } else {
                encode_one(q, pred, v, &mut s.symbols, &mut s.literals)
            };
            s.recon[i] = rec;
            prev2 = prev;
            prev = rec;
        }
        for (i, &v) in data.iter().enumerate().skip(2) {
            let pred = 2.0 * prev - prev2;
            let rec = if fast {
                encode_one_fast(q, pred, v, &mut s.symbols, &mut s.literals)
            } else {
                encode_one(q, pred, v, &mut s.symbols, &mut s.literals)
            };
            s.recon[i] = rec;
            prev2 = prev;
            prev = rec;
        }
        return (0, 0, false);
    }
    if kernels::fast_enabled()
        && kernels::encode_classic_fast(
            data,
            g.nz,
            g.ny,
            g.nx,
            q,
            &mut s.symbols,
            &mut s.literals,
            &mut s.recon,
            &mut s.kern,
            if fuse { Some(&mut s.hist4[..]) } else { None },
        )
    {
        return (0, 0, fuse);
    }
    s.rowp.clear();
    s.rowp.resize(g.nx, 0.0);
    let mut idx = 0usize;
    for k in 0..g.nz {
        for j in 0..g.ny {
            lorenzo_3d_row_partial(&s.recon, g.ny, g.nx, k, j, 0, g.nx, &mut s.rowp);
            for i in 0..g.nx {
                let left = if i > 0 { s.recon[idx - 1] } else { 0.0 };
                let pred = s.rowp[i] + left;
                s.recon[idx] = if fast {
                    encode_one_fast(q, pred, data[idx], &mut s.symbols, &mut s.literals)
                } else {
                    encode_one(q, pred, data[idx], &mut s.symbols, &mut s.literals)
                };
                idx += 1;
            }
        }
    }
    (0, 0, false)
}

/// Mean |orig − Lorenzo(orig)| over a block, using *original* neighbours.
/// Only a mode-selection heuristic: correctness never depends on it.
#[allow(clippy::too_many_arguments)]
fn lorenzo_probe_error<T: Element>(
    data: &[T],
    g: Geom,
    k0: usize,
    k1: usize,
    j0: usize,
    j1: usize,
    i0: usize,
    i1: usize,
) -> f64 {
    let at = |k: isize, j: isize, i: isize| -> f64 {
        if k < 0 || j < 0 || i < 0 {
            0.0
        } else {
            data[(k as usize * g.ny + j as usize) * g.nx + i as usize].to_f64()
        }
    };
    let mut err = 0.0;
    let mut cnt = 0usize;
    if k0 > 0 && j0 > 0 && i0 > 0 {
        // Interior block: no border can go out of bounds, so index the
        // four stencil rows directly instead of paying the three signed
        // comparisons per term. Term order matches the general path
        // exactly, keeping the accumulated error (and thus the per-block
        // mode decision and the output stream) bit-identical.
        for k in k0..k1 {
            for j in j0..j1 {
                let c = (k * g.ny + j) * g.nx;
                let u = (k * g.ny + j - 1) * g.nx;
                let p = ((k - 1) * g.ny + j) * g.nx;
                let d = ((k - 1) * g.ny + j - 1) * g.nx;
                for i in i0..i1 {
                    let pred = data[c + i - 1].to_f64()
                        + data[u + i].to_f64()
                        + data[p + i].to_f64()
                        - data[u + i - 1].to_f64()
                        - data[p + i - 1].to_f64()
                        - data[d + i].to_f64()
                        + data[d + i - 1].to_f64();
                    err += (data[c + i].to_f64() - pred).abs();
                }
            }
        }
        cnt = (k1 - k0) * (j1 - j0) * (i1 - i0);
    } else {
        for k in k0..k1 {
            for j in j0..j1 {
                for i in i0..i1 {
                    let (ki, ji, ii) = (k as isize, j as isize, i as isize);
                    let pred = at(ki, ji, ii - 1) + at(ki, ji - 1, ii) + at(ki - 1, ji, ii)
                        - at(ki, ji - 1, ii - 1)
                        - at(ki - 1, ji, ii - 1)
                        - at(ki - 1, ji - 1, ii)
                        + at(ki - 1, ji - 1, ii - 1);
                    err += (data[(k * g.ny + j) * g.nx + i].to_f64() - pred).abs();
                    cnt += 1;
                }
            }
        }
    }
    if cnt == 0 {
        0.0
    } else {
        err / cnt as f64
    }
}

/// Block-adaptive encode (per-block Lorenzo vs hyperplane regression).
/// Fills the scratch; returns `(regression_blocks, lorenzo_blocks)`.
fn encode_blocks<T: Element>(
    data: &[T],
    g: Geom,
    q: &Quantizer,
    s: &mut SzScratch<T>,
) -> (u64, u64) {
    let n = data.len();
    s.recon.clear();
    s.recon.resize(n, 0.0);
    s.rowp.clear();
    s.rowp.resize(g.nx.min(BLOCK_SIDE), 0.0);
    let mut regression_blocks = 0u64;
    let mut lorenzo_blocks = 0u64;
    let b = BLOCK_SIDE;
    s.vals.clear();
    s.vals.reserve(b * b * b);
    let fast = kernels::fast_enabled() && q.fast_exact();

    let blocks = |e: usize| e.div_ceil(b);
    for bk in 0..blocks(g.nz) {
        for bj in 0..blocks(g.ny) {
            for bi in 0..blocks(g.nx) {
                let (k0, j0, i0) = (bk * b, bj * b, bi * b);
                let (k1, j1, i1) = ((k0 + b).min(g.nz), (j0 + b).min(g.ny), (i0 + b).min(g.nx));
                let (nk, nj, ni) = (k1 - k0, j1 - j0, i1 - i0);
                s.vals.clear();
                for k in k0..k1 {
                    for j in j0..j1 {
                        let row = (k * g.ny + j) * g.nx;
                        s.vals.extend(data[row + i0..row + i1].iter().map(|v| v.to_f64()));
                    }
                }
                let coeffs = fit_block(&s.vals, nk, nj, ni);
                let reg_err = block_abs_error(&s.vals, nk, nj, ni, &coeffs);
                let lor_err = lorenzo_probe_error(data, g, k0, k1, j0, j1, i0, i1);
                let use_reg = reg_err < lor_err;
                s.block_bits.push_bit(use_reg);
                if use_reg {
                    regression_blocks += 1;
                    s.coeffs.extend_from_slice(&coeffs.c);
                } else {
                    lorenzo_blocks += 1;
                }
                for k in k0..k1 {
                    for j in j0..j1 {
                        if !use_reg {
                            lorenzo_3d_row_partial(
                                &s.recon, g.ny, g.nx, k, j, i0, i1, &mut s.rowp,
                            );
                        }
                        for i in i0..i1 {
                            let idx = (k * g.ny + j) * g.nx + i;
                            let pred = if use_reg {
                                coeffs.predict(i - i0, j - j0, k - k0)
                            } else {
                                let left = if i > 0 { s.recon[idx - 1] } else { 0.0 };
                                s.rowp[i - i0] + left
                            };
                            s.recon[idx] = if fast {
                                encode_one_fast(q, pred, data[idx], &mut s.symbols, &mut s.literals)
                            } else {
                                encode_one(q, pred, data[idx], &mut s.symbols, &mut s.literals)
                            };
                        }
                    }
                }
            }
        }
    }
    (regression_blocks, lorenzo_blocks)
}

/// Compress `data` shaped as `dims` (1–4 dimensions, slowest first), for
/// any supported element type.
pub fn compress_typed<T: Element>(
    data: &[T],
    dims: &[usize],
    cfg: &SzConfig,
) -> Result<Compressed, SzError> {
    compress_typed_with(data, dims, cfg, &mut SzScratch::new())
}

/// [`compress_typed`] with caller-provided scratch buffers. Repeated calls
/// reuse the scratch's allocations; the output stream is identical to a
/// fresh-scratch call.
pub fn compress_typed_with<T: Element>(
    data: &[T],
    dims: &[usize],
    cfg: &SzConfig,
    s: &mut SzScratch<T>,
) -> Result<Compressed, SzError> {
    let g = geometry(dims, data.len())?;
    let eb = resolve_eb(data, cfg.error_bound)?;
    // The radius lands in the stream header and drives the decoder's
    // alphabet allocation, so it must respect the same cap the decoder
    // enforces. Clamping (rather than erroring) is sound: the radius is a
    // quality/speed knob, and out-of-range residuals fall back to exact
    // literals either way, so the error bound still holds.
    let q = Quantizer::new(eb, cfg.radius.clamp(1, Quantizer::MAX_RADIUS));
    let block_mode = matches!(cfg.mode, PredictorMode::BlockAdaptive) && g.rank >= 2;

    s.symbols.clear();
    s.symbols.reserve(data.len());
    s.literals.clear();
    s.sym_bits.clear();
    s.block_bits.clear();
    s.coeffs.clear();
    s.lit_bytes.clear();

    // When the AVX2 kernel may run, hand it the 4-stripe histogram so the
    // symbol counts fall out of the commit pass and the standalone scan
    // over the symbol array below is skipped entirely. The gate matches
    // the striped pass (per-stripe counts fit u32); classic mode emits
    // exactly one symbol per element, so `data.len()` is the symbol count.
    let fuse = !block_mode && data.len() < u32::MAX as usize && kernels::fast_enabled();
    if fuse {
        s.hist4.clear();
        s.hist4.resize(4 * q.alphabet_size(), 0);
    }
    let (regression_blocks, lorenzo_blocks, fused) = {
        let _span = lcpio_trace::span("sz.predict_quantize");
        if block_mode {
            let (r, l) = encode_blocks(data, g, &q, s);
            (r, l, false)
        } else {
            encode_classic(data, g, cfg.lorenzo_order, &q, s, fuse)
        }
    };

    // Histogram + Huffman table over the dense symbol alphabet.
    let huff_span = lcpio_trace::span("sz.huffman");
    s.freqs.clear();
    s.freqs.resize(q.alphabet_size(), 0);
    if fused {
        // The kernel already counted at tile-commit time; only the stripe
        // merge remains. Stripe assignment differs from the standalone
        // pass below, but the merged sums — and therefore the Huffman
        // table and the output stream — are identical.
        let a = q.alphabet_size();
        let (h0, rest) = s.hist4.split_at(a);
        let (h1, rest) = rest.split_at(a);
        let (h2, h3) = rest.split_at(a);
        for (f, ((&a0, &a1), (&a2, &a3))) in
            s.freqs.iter_mut().zip(h0.iter().zip(h1.iter()).zip(h2.iter().zip(h3.iter())))
        {
            *f = (a0 as u64) + (a1 as u64) + (a2 as u64) + (a3 as u64);
        }
    } else if s.symbols.len() < u32::MAX as usize {
        // Four interleaved sub-histograms break the store-to-load
        // dependency that serializes runs of equal symbols — the common
        // case, since quantization codes cluster hard around the zero
        // bin. Merged below; per-stripe counts fit u32 by the guard.
        let a = q.alphabet_size();
        s.hist4.clear();
        s.hist4.resize(4 * a, 0);
        let (h0, rest) = s.hist4.split_at_mut(a);
        let (h1, rest) = rest.split_at_mut(a);
        let (h2, h3) = rest.split_at_mut(a);
        let mut chunks = s.symbols.chunks_exact(4);
        for c in &mut chunks {
            h0[c[0] as usize] += 1;
            h1[c[1] as usize] += 1;
            h2[c[2] as usize] += 1;
            h3[c[3] as usize] += 1;
        }
        for &sym in chunks.remainder() {
            h0[sym as usize] += 1;
        }
        for (f, ((&a0, &a1), (&a2, &a3))) in
            s.freqs.iter_mut().zip(h0.iter().zip(h1.iter()).zip(h2.iter().zip(h3.iter())))
        {
            *f = (a0 as u64) + (a1 as u64) + (a2 as u64) + (a3 as u64);
        }
    } else {
        for &sym in &s.symbols {
            s.freqs[sym as usize] += 1;
        }
    }
    let huff =
        HuffmanEncoder::from_freqs(&s.freqs).map_err(|_| SzError::Internal("huffman build"))?;
    if kernels::fast_enabled() {
        huff.encode_slice(&s.symbols, &mut s.sym_bits)
            .map_err(|_| SzError::Internal("huffman encode"))?;
    } else {
        for &sym in &s.symbols {
            huff.encode(sym, &mut s.sym_bits).map_err(|_| SzError::Internal("huffman encode"))?;
        }
    }
    let huffman_bits = s.sym_bits.bit_len() as u64;
    drop(huff_span);

    // ---- assemble payload ----
    let mut p = Writer::new();
    p.u8(T::TYPE_TAG);
    p.u8(dims.len() as u8);
    for &d in dims {
        p.u64(d as u64);
    }
    p.u8(if block_mode { 1 } else { 0 });
    p.u8(cfg.lorenzo_order);
    p.f64(eb);
    p.u32(q.radius());
    p.u64(data.len() as u64);
    // Huffman table: dense u8 code lengths over the occupied symbol range.
    // Quantization codes cluster tightly around the zero bin, so the range
    // is small, and runs of equal lengths compress well in the LZSS pass.
    let lens = huff.lengths();
    let first = lens.iter().position(|&l| l > 0).unwrap_or(0);
    let last = lens.iter().rposition(|&l| l > 0).unwrap_or(0);
    let n_present = lens.iter().filter(|&&l| l > 0).count();
    p.u32(first as u32);
    p.u32((last - first + 1) as u32);
    p.bytes(&lens[first..=last]);
    p.u64(huffman_bits);
    p.section(s.sym_bits.finish());
    // Literals.
    s.lit_bytes.reserve(s.literals.len() * T::BYTES);
    for &v in &s.literals {
        v.write_le(&mut s.lit_bytes);
    }
    p.section(&s.lit_bytes);
    // Block metadata.
    if block_mode {
        p.section(s.block_bits.finish());
        let mut cb = Vec::with_capacity(s.coeffs.len() * 4);
        for &c in &s.coeffs {
            cb.extend_from_slice(&c.to_le_bytes());
        }
        p.section(&cb);
    }
    let payload = p.into_bytes();

    // ---- envelope ----
    let (flags, body) = if cfg.lossless {
        let _span = lcpio_trace::span("sz.lossless");
        let z = lossless::compress(&payload);
        if z.len() < payload.len() {
            (FLAG_LOSSLESS, z)
        } else {
            (0, payload)
        }
    } else {
        (0, payload)
    };
    let mut out = Writer::new();
    out.bytes(&MAGIC);
    out.u8(flags);
    out.u64(body.len() as u64);
    out.bytes(&body);
    let bytes = out.into_bytes();

    let stats = CompressionStats {
        elements: data.len() as u64,
        input_bytes: (data.len() * T::BYTES) as u64,
        output_bytes: bytes.len() as u64,
        predictable: data.len() as u64 - s.literals.len() as u64,
        unpredictable: s.literals.len() as u64,
        regression_blocks,
        lorenzo_blocks,
        huffman_table_entries: n_present as u64,
        huffman_bits,
    };
    if lcpio_trace::collecting() {
        lcpio_trace::counter_add("sz.elements", stats.elements);
        lcpio_trace::counter_add("sz.bytes_in", stats.input_bytes);
        lcpio_trace::counter_add("sz.bytes_out", stats.output_bytes);
        lcpio_trace::counter_add("sz.predictable", stats.predictable);
        lcpio_trace::counter_add("sz.literal_escapes", stats.unpredictable);
        lcpio_trace::counter_add("sz.regression_blocks", stats.regression_blocks);
        lcpio_trace::counter_add("sz.lorenzo_blocks", stats.lorenzo_blocks);
        lcpio_trace::counter_add("sz.huffman.table_entries", stats.huffman_table_entries);
        lcpio_trace::counter_add("sz.huffman.bits", stats.huffman_bits);
    }
    Ok(Compressed { bytes, stats })
}

/// Compress an `f32` field (the paper's data type).
pub fn compress(data: &[f32], dims: &[usize], cfg: &SzConfig) -> Result<Compressed, SzError> {
    compress_typed(data, dims, cfg)
}

/// Compress an `f64` field.
pub fn compress_f64(data: &[f64], dims: &[usize], cfg: &SzConfig) -> Result<Compressed, SzError> {
    compress_typed(data, dims, cfg)
}

/// Element type tag recorded in a compressed stream (without decoding it).
pub fn stream_type_tag(stream: &[u8]) -> Result<u8, SzError> {
    let payload = unwrap_envelope(stream)?;
    let mut r = Reader::new(&payload);
    r.u8()
}

fn unwrap_envelope(stream: &[u8]) -> Result<Vec<u8>, SzError> {
    let mut env = Reader::new(stream);
    if env.bytes(4)? != MAGIC {
        return Err(SzError::Corrupt("bad magic"));
    }
    let flags = env.u8()?;
    let body_len = env.u64()? as usize;
    let body = env.bytes(body_len)?;
    if flags & FLAG_LOSSLESS != 0 {
        lossless::decompress(body).map_err(|_| SzError::Corrupt("lzss"))
    } else {
        Ok(body.to_vec())
    }
}

/// Decompress a stream produced by [`compress_typed`]. Returns the values
/// and the dimensions recorded in the header. Fails with
/// [`SzError::TypeMismatch`] when the stream holds a different element
/// type.
pub fn decompress_typed<T: Element>(stream: &[u8]) -> Result<(Vec<T>, Vec<usize>), SzError> {
    decompress_typed_with(stream, &mut SzScratch::new())
}

/// [`decompress_typed`] with caller-provided scratch buffers. Repeated
/// calls reuse the scratch's allocations (reconstruction array, Huffman
/// code lengths, literal buffer, row partials); the output is identical
/// to a fresh-scratch call.
pub fn decompress_typed_with<T: Element>(
    stream: &[u8],
    s: &mut SzScratch<T>,
) -> Result<(Vec<T>, Vec<usize>), SzError> {
    let _span = lcpio_trace::span("sz.decompress");
    let payload = unwrap_envelope(stream)?;
    let mut r = Reader::new(&payload);
    let tag = r.u8()?;
    if tag != T::TYPE_TAG {
        return Err(SzError::TypeMismatch);
    }
    let rank = r.u8()? as usize;
    if rank == 0 || rank > 4 {
        return Err(SzError::Corrupt("bad rank"));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(r.u64()? as usize);
    }
    let block_mode = r.u8()? == 1;
    let order = r.u8()?;
    let eb = r.f64()?;
    let radius = r.u32()?;
    let n = r.u64()? as usize;
    // A corrupt header cannot be allowed to drive the output allocation:
    // every element consumes at least one symbol-stream bit, so `n` is
    // bounded by the remaining payload size.
    if n > r.remaining().saturating_mul(8) {
        return Err(SzError::Corrupt("element count exceeds payload"));
    }
    let g = geometry(&dims, n)?;
    // The radius sizes the decode alphabet (`2·radius + 1` code lengths
    // plus several full scans building the Huffman decoder), so a forged
    // header must not be able to demand gigabytes of table work. The cap
    // matches the encoder's clamp — no legitimate stream can exceed it.
    if eb <= 0.0 || !eb.is_finite() || radius == 0 || radius > Quantizer::MAX_RADIUS {
        return Err(SzError::Corrupt("bad quantizer params"));
    }
    let q = Quantizer::new(eb, radius);

    // Working buffers come from the scratch: cleared, then regrown to
    // this stream's sizes (no-ops once the high-water mark is reached).
    let SzScratch { recon, rowp, literals, code_lens, .. } = s;

    // Huffman table (dense code lengths over the occupied symbol range).
    let first = r.u32()? as usize;
    let count = r.u32()? as usize;
    code_lens.clear();
    code_lens.resize(q.alphabet_size(), 0);
    if count > code_lens.len() || first + count > code_lens.len() {
        return Err(SzError::Corrupt("symbol range out of alphabet"));
    }
    code_lens[first..first + count].copy_from_slice(r.bytes(count)?);
    let dec =
        HuffmanDecoder::from_lengths(code_lens).map_err(|_| SzError::Corrupt("huffman table"))?;
    let _sym_bit_count = r.u64()?;
    let sym_bytes = r.section()?;
    // Tighter form of the element-count guard: every element consumes at
    // least one bit of the symbol stream specifically.
    if n > sym_bytes.len().saturating_mul(8) {
        return Err(SzError::Corrupt("element count exceeds symbol stream"));
    }
    let lit_bytes = r.section()?;
    if lit_bytes.len() % T::BYTES != 0 {
        return Err(SzError::Corrupt("literal section"));
    }
    literals.clear();
    literals.extend(lit_bytes.chunks_exact(T::BYTES).map(T::read_le));

    let (block_bit_bytes, coeff_vals) = if block_mode {
        let bb = r.section()?.to_vec();
        let cb = r.section()?;
        if cb.len() % 16 != 0 {
            return Err(SzError::Corrupt("coeff section"));
        }
        let cv: Vec<f32> = cb
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        (bb, cv)
    } else {
        (Vec::new(), Vec::new())
    };

    let mut sym_reader = BitReader::new(sym_bytes);
    let mut lit_iter = literals.iter();
    // The Lorenzo stencil reads `recon` while it is being filled (rows
    // above, planes behind), so untouched slots must read as 0.0 exactly
    // like a fresh allocation: clear before regrowing.
    recon.clear();
    recon.resize(n, 0.0);
    rowp.clear();
    rowp.resize(if block_mode { g.nx.min(BLOCK_SIDE) } else { g.nx }, 0.0);

    let mut next_value = |pred: f64, recon_slot: &mut f64| -> Result<(), SzError> {
        let sym = dec
            .decode(&mut sym_reader)
            .map_err(|_| SzError::Corrupt("symbol stream"))?;
        if sym == 0 {
            let lit = lit_iter.next().ok_or(SzError::Corrupt("literal underrun"))?;
            *recon_slot = lit.to_f64();
        } else {
            if !q.is_code(sym) {
                return Err(SzError::Corrupt("symbol out of range"));
            }
            *recon_slot = q.reconstruct(pred, sym);
        }
        Ok(())
    };

    if block_mode {
        let b = BLOCK_SIDE;
        let blocks = |e: usize| e.div_ceil(b);
        let mut flag_reader = BitReader::new(&block_bit_bytes);
        let mut coeff_idx = 0usize;
        for bk in 0..blocks(g.nz) {
            for bj in 0..blocks(g.ny) {
                for bi in 0..blocks(g.nx) {
                    let (k0, j0, i0) = (bk * b, bj * b, bi * b);
                    let (k1, j1, i1) =
                        ((k0 + b).min(g.nz), (j0 + b).min(g.ny), (i0 + b).min(g.nx));
                    let use_reg = flag_reader
                        .read_bit()
                        .map_err(|_| SzError::Corrupt("block flags"))?;
                    let coeffs = if use_reg {
                        if coeff_idx + 4 > coeff_vals.len() {
                            return Err(SzError::Corrupt("coeff underrun"));
                        }
                        let c = BlockCoeffs {
                            c: [
                                coeff_vals[coeff_idx],
                                coeff_vals[coeff_idx + 1],
                                coeff_vals[coeff_idx + 2],
                                coeff_vals[coeff_idx + 3],
                            ],
                        };
                        coeff_idx += 4;
                        Some(c)
                    } else {
                        None
                    };
                    for k in k0..k1 {
                        for j in j0..j1 {
                            match &coeffs {
                                Some(c) => {
                                    for i in i0..i1 {
                                        let idx = (k * g.ny + j) * g.nx + i;
                                        let pred = c.predict(i - i0, j - j0, k - k0);
                                        next_value(pred, &mut recon[idx])?;
                                    }
                                }
                                None => {
                                    lorenzo_3d_row_partial(
                                        recon, g.ny, g.nx, k, j, i0, i1, rowp,
                                    );
                                    for i in i0..i1 {
                                        let idx = (k * g.ny + j) * g.nx + i;
                                        let left = if i > 0 { recon[idx - 1] } else { 0.0 };
                                        next_value(rowp[i - i0] + left, &mut recon[idx])?;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    } else if g.rank == 1 && order == 2 {
        // Same peeled form as the encoder: carry the two previous
        // reconstructions in locals, predictor branch hoisted out.
        let mut prev = 0.0f64;
        let mut prev2 = 0.0f64;
        for (idx, r) in recon.iter_mut().enumerate().take(n.min(2)) {
            let pred = if idx == 0 { 0.0 } else { prev };
            next_value(pred, r)?;
            prev2 = prev;
            prev = *r;
        }
        for r in recon.iter_mut().take(n).skip(2) {
            let pred = 2.0 * prev - prev2;
            next_value(pred, r)?;
            prev2 = prev;
            prev = *r;
        }
    } else {
        let mut idx = 0usize;
        for k in 0..g.nz {
            for j in 0..g.ny {
                lorenzo_3d_row_partial(recon, g.ny, g.nx, k, j, 0, g.nx, rowp);
                for (i, &rp) in rowp.iter().enumerate() {
                    let left = if i > 0 { recon[idx - 1] } else { 0.0 };
                    next_value(rp + left, &mut recon[idx])?;
                    idx += 1;
                }
            }
        }
    }

    Ok((recon.iter().map(|&v| T::from_f64(v)).collect(), dims))
}

/// Decompress an `f32` stream.
pub fn decompress(stream: &[u8]) -> Result<(Vec<f32>, Vec<usize>), SzError> {
    decompress_typed(stream)
}

/// Decompress an `f64` stream.
pub fn decompress_f64(stream: &[u8]) -> Result<(Vec<f64>, Vec<usize>), SzError> {
    decompress_typed(stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_fuses_4d() {
        let g = geometry(&[2, 3, 4, 5], 120).unwrap();
        assert_eq!((g.nz, g.ny, g.nx, g.rank), (6, 4, 5, 4));
    }

    #[test]
    fn geometry_rejects_mismatch() {
        assert!(geometry(&[2, 3], 7).is_err());
        assert!(geometry(&[], 0).is_err());
        assert!(geometry(&[0], 0).is_err());
        assert!(geometry(&[1, 2, 3, 4, 5], 120).is_err());
        assert!(geometry(&[usize::MAX, usize::MAX], 4).is_err());
    }

    #[test]
    fn resolve_relative_eb_uses_range() {
        let data = [0.0f32, 10.0];
        let eb = resolve_eb(&data, ErrorBound::ValueRangeRelative(1e-2)).unwrap();
        assert!((eb - 0.1).abs() < 1e-12);
    }

    #[test]
    fn resolve_relative_eb_constant_data() {
        let data = [5.0f32; 4];
        let eb = resolve_eb(&data, ErrorBound::ValueRangeRelative(1e-3)).unwrap();
        assert_eq!(eb, 1e-3);
    }

    #[test]
    fn resolve_rejects_bad_bounds() {
        assert!(resolve_eb(&[1.0f32], ErrorBound::Absolute(0.0)).is_err());
        assert!(resolve_eb(&[1.0f32], ErrorBound::Absolute(-1.0)).is_err());
        assert!(resolve_eb(&[1.0f32], ErrorBound::Absolute(f64::NAN)).is_err());
        assert!(resolve_eb(&[1.0f32], ErrorBound::ValueRangeRelative(-0.5)).is_err());
    }

    #[test]
    fn f64_roundtrip_respects_bound() {
        // Values whose precision exceeds f32: the f64 path must preserve
        // them to the requested bound.
        let data: Vec<f64> = (0..4096)
            .map(|i| 1.0 + (i as f64) * 1e-9 + (i as f64 * 0.01).sin() * 1e-5)
            .collect();
        let eb = 1e-8;
        let cfg = SzConfig::new(ErrorBound::Absolute(eb));
        let out = compress_f64(&data, &[4096], &cfg).expect("compress");
        let (rec, dims) = decompress_f64(&out.bytes).expect("decompress");
        assert_eq!(dims, vec![4096]);
        for (a, b) in data.iter().zip(&rec) {
            assert!((a - b).abs() <= eb, "{a} vs {b}");
        }
        // f32 storage could never hit this bound; f64 must beat 8 B/elem.
        assert!(out.bytes.len() < data.len() * 8);
    }

    #[test]
    fn f64_block_mode_roundtrip() {
        let (ny, nx) = (40, 50);
        let data: Vec<f64> = (0..ny * nx)
            .map(|idx| {
                let (j, i) = (idx / nx, idx % nx);
                (i as f64 * 0.1).sin() * (j as f64 * 0.07).cos() * 1e6
            })
            .collect();
        let eb = 1e-3;
        let out = compress_f64(&data, &[ny, nx], &SzConfig::new(ErrorBound::Absolute(eb)))
            .expect("compress");
        let (rec, _) = decompress_f64(&out.bytes).expect("decompress");
        for (a, b) in data.iter().zip(&rec) {
            assert!((a - b).abs() <= eb);
        }
    }

    #[test]
    fn type_tag_is_checked() {
        let f32_stream = compress(&[1.0f32; 64], &[64], &SzConfig::new(ErrorBound::Absolute(1e-3)))
            .expect("compress");
        assert_eq!(decompress_f64(&f32_stream.bytes).unwrap_err(), SzError::TypeMismatch);
        let f64_stream =
            compress_f64(&[1.0f64; 64], &[64], &SzConfig::new(ErrorBound::Absolute(1e-3)))
                .expect("compress");
        assert_eq!(decompress(&f64_stream.bytes).unwrap_err(), SzError::TypeMismatch);
        assert_eq!(stream_type_tag(&f32_stream.bytes).unwrap(), 0);
        assert_eq!(stream_type_tag(&f64_stream.bytes).unwrap(), 1);
    }

    #[test]
    fn forged_huge_radius_is_rejected_cheaply() {
        // The radius field sizes the decode alphabet; a forged value near
        // u32::MAX must be a cheap typed error, not gigabytes of Huffman
        // table setup. Lossless off keeps the payload raw so the field
        // sits at a fixed offset: magic(4) + flags(1) + body_len(8) +
        // tag(1) + rank(1) + dim(8) + block_mode(1) + order(1) + eb(8).
        let data: Vec<f32> = (0..256).map(|i| (i as f32 * 0.03).sin()).collect();
        let cfg = SzConfig::new(ErrorBound::Absolute(1e-3)).with_radius(4).with_lossless(false);
        let out = compress(&data, &[256], &cfg).expect("compress");
        const RADIUS_OFF: usize = 4 + 1 + 8 + 1 + 1 + 8 + 1 + 1 + 8;
        assert_eq!(&out.bytes[RADIUS_OFF..RADIUS_OFF + 4], &4u32.to_le_bytes());
        for forged in [u32::MAX, 1 << 31, Quantizer::MAX_RADIUS + 1] {
            let mut bad = out.bytes.clone();
            bad[RADIUS_OFF..RADIUS_OFF + 4].copy_from_slice(&forged.to_le_bytes());
            assert_eq!(
                decompress(&bad).unwrap_err(),
                SzError::Corrupt("bad quantizer params"),
                "radius {forged}"
            );
        }
        // The cap itself still decodes.
        let mut capped = out.bytes.clone();
        capped[RADIUS_OFF..RADIUS_OFF + 4]
            .copy_from_slice(&Quantizer::MAX_RADIUS.to_le_bytes());
        // (symbols were coded against radius 4, so decode may reject the
        // table — the point is it must not be rejected for the radius.)
        if let Err(e) = decompress(&capped) {
            assert_ne!(e, SzError::Corrupt("bad quantizer params"));
        }
    }

    #[test]
    fn oversized_configured_radius_is_clamped_not_fatal() {
        // An out-of-range config radius clamps to MAX_RADIUS and the
        // stream still round-trips within the bound.
        let data: Vec<f32> = (0..512).map(|i| (i as f32 * 0.01).cos() * 3.0).collect();
        let cfg = SzConfig::new(ErrorBound::Absolute(1e-3)).with_radius(u32::MAX);
        let out = compress(&data, &[512], &cfg).expect("compress clamps the radius");
        let (rec, _) = decompress(&out.bytes).expect("decompress");
        for (a, b) in data.iter().zip(&rec) {
            assert!((a - b).abs() <= 1e-3 + 1e-6);
        }
    }

    #[test]
    fn f64_literals_are_exact() {
        // Unpredictable f64 values must survive bit-exactly via literals.
        let data = vec![1.0e300f64, -2.2250738585072014e-308, 3.5, 1.0e-40];
        let cfg = SzConfig::new(ErrorBound::Absolute(1e-12)).with_radius(4);
        let out = compress_f64(&data, &[4], &cfg).expect("compress");
        let (rec, _) = decompress_f64(&out.bytes).expect("decompress");
        for (a, b) in data.iter().zip(&rec) {
            assert!((a - b).abs() <= 1e-12 || a == b, "{a} vs {b}");
        }
    }

    #[test]
    fn reused_scratch_is_bit_identical() {
        // One scratch across many differently-shaped compressions must
        // yield exactly the bytes a fresh scratch produces.
        let mut scratch = SzScratch::new();
        let fields: Vec<(Vec<usize>, Vec<f32>)> = vec![
            (vec![600], (0..600).map(|i| (i as f32 * 0.02).sin()).collect()),
            (vec![23, 17], (0..23 * 17).map(|i| (i as f32 * 0.1).cos() * 5.0).collect()),
            (vec![7, 8, 9], (0..7 * 8 * 9).map(|i| i as f32 * 0.5).collect()),
        ];
        for (dims, data) in &fields {
            for mode in [PredictorMode::Lorenzo, PredictorMode::BlockAdaptive] {
                let cfg = SzConfig::new(ErrorBound::Absolute(1e-3)).with_mode(mode);
                let fresh = compress_typed(data, dims, &cfg).unwrap();
                let reused = compress_typed_with(data, dims, &cfg, &mut scratch).unwrap();
                assert_eq!(fresh.bytes, reused.bytes, "dims {dims:?} mode {mode:?}");
                let (rec, d) = decompress(&fresh.bytes).unwrap();
                assert_eq!(&d, dims);
                for (a, b) in data.iter().zip(&rec) {
                    assert!((a - b).abs() <= 1e-3 + 1e-6);
                }
            }
        }
    }

    #[test]
    fn reused_decode_scratch_is_bit_identical() {
        // One scratch across many differently-shaped decompressions must
        // yield exactly the values a fresh decode produces — including
        // stale-state hazards: a large stream first (big recon/literal
        // high-water marks), then smaller ones.
        let mut scratch = SzScratch::new();
        let fields: Vec<(Vec<usize>, Vec<f32>)> = vec![
            (vec![11, 13, 17], (0..11 * 13 * 17).map(|i| (i as f32 * 0.05).sin() * 3.0).collect()),
            (vec![600], (0..600).map(|i| (i as f32 * 0.02).sin()).collect()),
            (vec![23, 17], (0..23 * 17).map(|i| (i as f32 * 0.1).cos() * 5.0).collect()),
        ];
        for (dims, data) in &fields {
            for mode in [PredictorMode::Lorenzo, PredictorMode::BlockAdaptive] {
                let cfg = SzConfig::new(ErrorBound::Absolute(1e-3)).with_mode(mode);
                let out = compress_typed(data, dims, &cfg).unwrap();
                let (fresh, d1) = decompress(&out.bytes).unwrap();
                let (reused, d2) = decompress_typed_with::<f32>(&out.bytes, &mut scratch).unwrap();
                assert_eq!(d1, d2);
                for (a, b) in fresh.iter().zip(&reused) {
                    assert_eq!(a.to_bits(), b.to_bits(), "dims {dims:?} mode {mode:?}");
                }
            }
        }
    }
}
