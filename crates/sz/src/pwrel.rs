//! Pointwise-relative error bounds (SZ "PW_REL" mode).
//!
//! The paper's related work (Di & Cappello, TPDS'19) compresses with a
//! *pointwise relative* bound: `|v̂ − v| ≤ r·|v|` for every element — the
//! right contract when a field spans many orders of magnitude (e.g. NYX
//! baryon density). The classic trick reduces it to the absolute pipeline:
//! compress `log2|v|` with the absolute bound `log2(1 + r)`, keeping signs
//! in a bitmap and zeros as an out-of-band sentinel:
//!
//! `|log2|v̂| − log2|v|| ≤ log2(1+r)  ⟺  v̂/v ∈ [1/(1+r), 1+r]`.

use crate::bitio::{BitReader, BitWriter};
use crate::element::Element;
use crate::header::{Reader, Writer};
use crate::pipeline::{compress_typed, decompress_typed};
use crate::stats::CompressionStats;
use crate::{Compressed, ErrorBound, SzConfig, SzError};

/// Wrapper magic for pointwise-relative streams.
pub const PWREL_MAGIC: [u8; 4] = *b"SZPR";

/// Log-domain stand-in for zero magnitudes. Real `f64` logs are ≥ −1075
/// (subnormals), so the sentinel never collides with data.
const ZERO_SENTINEL: f64 = -1100.0;
/// Decode threshold: anything reconstructed below this is a zero.
const ZERO_THRESHOLD: f64 = -1090.0;

/// Compress with a pointwise-relative bound `r` (`0 < r < 1`).
///
/// Inputs must be finite: NaN/Inf have no log-domain representation, so
/// they are rejected with [`SzError::InvalidErrorBound`] (use the absolute
/// pipeline, which escapes them to literals, if you need them preserved).
pub fn compress_pointwise_rel<T: Element>(
    data: &[T],
    dims: &[usize],
    r: f64,
    cfg: &SzConfig,
) -> Result<Compressed, SzError> {
    if !(r > 0.0 && r < 1.0) {
        return Err(SzError::InvalidErrorBound);
    }
    if data.iter().any(|v| !v.to_f64().is_finite()) {
        return Err(SzError::InvalidErrorBound);
    }
    // Split the bound budget: the log-domain quantizer gets log2(1+r), and
    // the final narrowing cast back to T consumes at most one half-ULP,
    // which the inner pipeline's own cast check already accounts for.
    let eb_log = (1.0 + r).log2();

    let mut signs = BitWriter::with_capacity(data.len() / 8 + 1);
    let logs: Vec<f64> = data
        .iter()
        .map(|&v| {
            let v = v.to_f64();
            signs.push_bit(v.is_sign_negative());
            if v == 0.0 {
                ZERO_SENTINEL
            } else {
                v.abs().log2()
            }
        })
        .collect();

    let inner_cfg = SzConfig { error_bound: ErrorBound::Absolute(eb_log), ..*cfg };
    let inner = compress_typed::<f64>(&logs, dims, &inner_cfg)?;

    let bytes = build_pointwise_rel(&PwrelParts {
        type_tag: T::TYPE_TAG,
        r,
        signs: &signs.into_bytes(),
        inner: &inner.bytes,
    });
    let stats = CompressionStats {
        input_bytes: (data.len() * T::BYTES) as u64,
        output_bytes: bytes.len() as u64,
        ..inner.stats
    };
    Ok(Compressed { bytes, stats })
}

/// Parsed SZPR wrapper fields, without decoding the inner log-domain
/// stream. Shared by the decompressor and the LCW1 wire bridge.
#[derive(Debug, Clone, Copy)]
pub struct PwrelParts<'a> {
    /// Element type tag of the original data (matches [`Element::TYPE_TAG`]).
    pub type_tag: u8,
    /// Pointwise-relative bound recorded at compression time (raw bits
    /// preserved on rebuild; the decoder does not consume it).
    pub r: f64,
    /// Sign bitmap, one bit per element.
    pub signs: &'a [u8],
    /// Inner `f64` log-domain SZ stream.
    pub inner: &'a [u8],
}

/// Parse and validate an SZPR wrapper without decoding the inner stream.
pub fn parse_pointwise_rel(stream: &[u8]) -> Result<PwrelParts<'_>, SzError> {
    let mut rd = Reader::new(stream);
    if rd.bytes(4)? != PWREL_MAGIC {
        return Err(SzError::Corrupt("bad pwrel magic"));
    }
    let type_tag = rd.u8()?;
    let r = rd.f64()?;
    let signs = rd.section()?;
    let inner = rd.section()?;
    if rd.remaining() != 0 {
        return Err(SzError::Corrupt("trailing bytes after pwrel sections"));
    }
    Ok(PwrelParts { type_tag, r, signs, inner })
}

/// Serialize an SZPR wrapper. Single writer for the layout — the
/// compressor and the LCW1 wire bridge both go through it, and it is the
/// exact inverse of [`parse_pointwise_rel`] (bit-preserving, including a
/// non-canonical `r`).
pub fn build_pointwise_rel(parts: &PwrelParts<'_>) -> Vec<u8> {
    let mut out = Writer::new();
    out.bytes(&PWREL_MAGIC);
    out.u8(parts.type_tag);
    out.f64(parts.r);
    out.section(parts.signs);
    out.section(parts.inner);
    out.into_bytes()
}

/// Decompress a pointwise-relative stream.
pub fn decompress_pointwise_rel<T: Element>(
    stream: &[u8],
) -> Result<(Vec<T>, Vec<usize>), SzError> {
    let parts = parse_pointwise_rel(stream)?;
    if parts.type_tag != T::TYPE_TAG {
        return Err(SzError::TypeMismatch);
    }
    let sign_bytes = parts.signs;
    let (logs, dims) = decompress_typed::<f64>(parts.inner)?;
    if logs.len() > sign_bytes.len().saturating_mul(8) {
        return Err(SzError::Corrupt("sign bitmap too short"));
    }
    let mut sign_reader = BitReader::new(sign_bytes);
    let out: Vec<T> = logs
        .into_iter()
        .map(|l| {
            let neg = sign_reader.read_bit().unwrap_or(false);
            let mag = if l < ZERO_THRESHOLD { 0.0 } else { l.exp2() };
            T::from_f64(if neg { -mag } else { mag })
        })
        .collect();
    Ok((out, dims))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_rel_bound<T: Element>(orig: &[T], rec: &[T], r: f64) {
        for (a, b) in orig.iter().zip(rec) {
            let (a, b) = (a.to_f64(), b.to_f64());
            if a == 0.0 {
                assert_eq!(b, 0.0, "zero must decode to zero");
            } else {
                let rel = ((b - a) / a).abs();
                // Allow f32 narrowing slack on top of the guarantee.
                assert!(rel <= r * 1.001 + 1e-6, "{a} vs {b}: rel {rel}");
                assert_eq!(a.is_sign_negative(), b.is_sign_negative(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn wide_dynamic_range_respects_relative_bound() {
        // 20 orders of magnitude — impossible for a single absolute bound.
        let data: Vec<f32> = (0..2000)
            .map(|i| {
                let mag = 10f32.powf((i % 20) as f32 - 10.0);
                let wiggle = 1.0 + 0.3 * ((i as f32) * 0.1).sin();
                if i % 3 == 0 {
                    -mag * wiggle
                } else {
                    mag * wiggle
                }
            })
            .collect();
        let r = 1e-3;
        let out =
            compress_pointwise_rel(&data, &[2000], r, &SzConfig::new(ErrorBound::Absolute(1.0)))
                .expect("compress");
        let (rec, dims) = decompress_pointwise_rel::<f32>(&out.bytes).expect("decompress");
        assert_eq!(dims, vec![2000]);
        check_rel_bound(&data, &rec, r);
    }

    #[test]
    fn zeros_and_signs_survive() {
        let data = vec![0.0f32, -1.5, 2.5, -0.0, 1e-30, -1e30];
        let r = 1e-2;
        let out =
            compress_pointwise_rel(&data, &[6], r, &SzConfig::new(ErrorBound::Absolute(1.0)))
                .expect("compress");
        let (rec, _) = decompress_pointwise_rel::<f32>(&out.bytes).expect("decompress");
        assert_eq!(rec[0], 0.0);
        assert_eq!(rec[3], 0.0);
        check_rel_bound(&data, &rec, r);
    }

    #[test]
    fn smooth_log_fields_compress_well() {
        // A log-normal-like field (NYX density): smooth in log space.
        let data: Vec<f32> =
            (0..8192).map(|i| ((i as f32 * 0.01).sin() * 3.0).exp()).collect();
        let out = compress_pointwise_rel(
            &data,
            &[8192],
            1e-3,
            &SzConfig::new(ErrorBound::Absolute(1.0)),
        )
        .expect("compress");
        assert!(out.stats.ratio() > 4.0, "ratio {}", out.stats.ratio());
        let (rec, _) = decompress_pointwise_rel::<f32>(&out.bytes).expect("decompress");
        check_rel_bound(&data, &rec, 1e-3);
    }

    #[test]
    fn f64_path_works() {
        let data: Vec<f64> = (0..512).map(|i| 10f64.powi(i % 40 - 20) * 1.23).collect();
        let r = 1e-6;
        let out =
            compress_pointwise_rel(&data, &[512], r, &SzConfig::new(ErrorBound::Absolute(1.0)))
                .expect("compress");
        let (rec, _) = decompress_pointwise_rel::<f64>(&out.bytes).expect("decompress");
        check_rel_bound(&data, &rec, r);
    }

    #[test]
    fn invalid_bounds_and_data_rejected() {
        let cfg = SzConfig::new(ErrorBound::Absolute(1.0));
        assert!(compress_pointwise_rel(&[1.0f32], &[1], 0.0, &cfg).is_err());
        assert!(compress_pointwise_rel(&[1.0f32], &[1], 1.5, &cfg).is_err());
        assert!(compress_pointwise_rel(&[f32::NAN], &[1], 1e-3, &cfg).is_err());
    }

    #[test]
    fn type_tag_checked() {
        let out = compress_pointwise_rel(
            &[1.0f32, 2.0],
            &[2],
            1e-2,
            &SzConfig::new(ErrorBound::Absolute(1.0)),
        )
        .expect("compress");
        assert_eq!(
            decompress_pointwise_rel::<f64>(&out.bytes).unwrap_err(),
            SzError::TypeMismatch
        );
    }

    #[test]
    fn corrupt_wrapper_rejected() {
        let out = compress_pointwise_rel(
            &[1.0f32, 2.0],
            &[2],
            1e-2,
            &SzConfig::new(ErrorBound::Absolute(1.0)),
        )
        .expect("compress");
        let mut bad = out.bytes.clone();
        bad[0] = b'X';
        assert!(decompress_pointwise_rel::<f32>(&bad).is_err());
        assert!(decompress_pointwise_rel::<f32>(&out.bytes[..8]).is_err());
    }
}
