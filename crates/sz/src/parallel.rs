//! Multi-threaded chunked SZ compression (mirroring the zfp crate's
//! chunked container and the reference SZ's OpenMP mode).
//!
//! The array is split along its slowest dimension at Lorenzo-block
//! ([`BLOCK_SIDE`]) boundaries; each chunk is a *complete, standalone*
//! SZ stream of its sub-array, so chunks compress and decompress
//! independently. A thin container records the chunk extents and byte
//! lengths.
//!
//! Unlike ZFP — whose coding blocks are independent, making chunked output
//! value-identical to the serial codec — SZ's Lorenzo predictor carries
//! history across rows, and that history *resets* at every chunk
//! boundary. Chunked SZ output therefore differs from the whole-array
//! serial stream in both framing and reconstructed values (each still
//! obeys the absolute error bound). To keep results reproducible, the
//! chunk layout is a pure function of the array shape: the same array
//! compresses to the same bytes whatever `threads` is, and decompression
//! is bit-identical to serially decompressing each chunk's standalone
//! stream. The worker count only changes wall-clock time.
//!
//! Workers are scoped threads pulling chunk indices from an atomic
//! cursor; results land in index-order slots, so output order is
//! deterministic regardless of scheduling. Each compression worker owns
//! one reusable [`SzScratch`], so per-chunk allocations are amortized.

use crate::element::Element;
use crate::pipeline::{compress_typed_with, decompress_typed_with, SzScratch};
use crate::regression::BLOCK_SIDE;
use crate::stats::CompressionStats;
use crate::{Compressed, SzConfig, SzError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Per-chunk result slot filled by the worker pool.
type ChunkSlot<R> = Mutex<Option<Result<R, SzError>>>;

/// Container magic for chunked streams.
pub const CHUNKED_MAGIC: [u8; 4] = *b"SZLP";

/// Ceiling on the number of chunks in a container. Sixteen keeps a
/// many-core machine busy while per-chunk headers and Huffman tables stay
/// a rounding error next to the payload.
pub const MAX_CHUNKS: usize = 16;

/// Minimum chunk thickness in Lorenzo blocks: thinner chunks would pay
/// more in per-chunk tables and lost prediction history than they gain in
/// parallelism.
const MIN_CHUNK_BLOCKS: usize = 2;

/// Split `extent` into chunk ranges aligned to [`BLOCK_SIDE`]. Depends
/// only on `extent` — never on the worker count — so the container layout
/// is reproducible across machines and thread settings.
fn chunk_ranges(extent: usize) -> Vec<(usize, usize)> {
    let blocks = extent.div_ceil(BLOCK_SIDE);
    let want = blocks.div_ceil(MIN_CHUNK_BLOCKS).clamp(1, MAX_CHUNKS);
    let per = blocks.div_ceil(want);
    let mut out = Vec::new();
    let mut b0 = 0usize;
    while b0 < blocks {
        let b1 = (b0 + per).min(blocks);
        out.push((b0 * BLOCK_SIDE, (b1 * BLOCK_SIDE).min(extent)));
        b0 = b1;
    }
    out
}

/// True if `stream` carries the chunked-container magic.
pub fn is_chunked(stream: &[u8]) -> bool {
    stream.starts_with(&CHUNKED_MAGIC)
}

/// A lock-guarded pool of reusable [`SzScratch`] buffers.
///
/// [`compress_chunked`] amortizes allocations *within* one call by giving
/// each worker its own scratch; a pool extends that reuse *across* calls,
/// so a driver compressing many fields (the registry's chunked path) stops
/// paying the warm-up allocations per field. `new` is `const`, so a pool
/// can live in a `static`. Scratch reuse never changes output bytes — see
/// [`compress_typed_with`].
pub struct SzScratchPool<T> {
    slots: Mutex<Vec<SzScratch<T>>>,
}

impl<T> SzScratchPool<T> {
    /// Ceiling on scratches parked between calls; beyond this they are
    /// dropped rather than retained, bounding idle memory.
    pub const MAX_RETAINED: usize = 32;

    /// New empty pool (usable in `static` items).
    pub const fn new() -> Self {
        SzScratchPool { slots: Mutex::new(Vec::new()) }
    }

    /// Pop a parked scratch, or make a fresh one.
    fn acquire(&self) -> SzScratch<T> {
        self.slots.lock().expect("pool lock").pop().unwrap_or_default()
    }

    /// Park a scratch for the next call (dropped when full).
    fn release(&self, scratch: SzScratch<T>) {
        let mut slots = self.slots.lock().expect("pool lock");
        if slots.len() < Self::MAX_RETAINED {
            slots.push(scratch);
        }
    }

    /// Number of scratches currently parked.
    pub fn idle(&self) -> usize {
        self.slots.lock().expect("pool lock").len()
    }
}

impl<T> Default for SzScratchPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Resolve a worker-count request (0 ⇒ all available cores).
fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        threads
    }
}

/// Compress using up to `threads` worker threads (0 ⇒ all available).
/// The output bytes are identical for every `threads` value.
pub fn compress_chunked<T: Element>(
    data: &[T],
    dims: &[usize],
    cfg: &SzConfig,
    threads: usize,
) -> Result<Compressed, SzError> {
    compress_chunked_pooled(data, dims, cfg, threads, &SzScratchPool::new())
}

/// [`compress_chunked`] with worker scratches drawn from (and returned to)
/// `pool`, so repeated calls reuse their buffers. Output bytes are
/// identical to [`compress_chunked`] for the same inputs.
pub fn compress_chunked_pooled<T: Element>(
    data: &[T],
    dims: &[usize],
    cfg: &SzConfig,
    threads: usize,
    pool: &SzScratchPool<T>,
) -> Result<Compressed, SzError> {
    if dims.is_empty() || dims.len() > 4 || dims.contains(&0) {
        return Err(SzError::InvalidDims);
    }
    let n = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or(SzError::InvalidDims)?;
    if n != data.len() {
        return Err(SzError::InvalidDims);
    }
    let threads = effective_threads(threads);

    // Slowest-dimension extent and the element count per unit of it.
    let slow = dims[0];
    let row: usize = dims[1..].iter().product::<usize>().max(1);
    let ranges = chunk_ranges(slow);

    // Compress chunks in parallel; each result lands in its own slot.
    let outer = lcpio_trace::span("sz.compress_chunked");
    let cursor = AtomicUsize::new(0);
    let slots: Vec<ChunkSlot<Compressed>> =
        (0..ranges.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(ranges.len()) {
            s.spawn(|| {
                let mut scratch = pool.acquire();
                let mut laps = lcpio_trace::Stopwatch::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= ranges.len() {
                        break;
                    }
                    let (a, b) = ranges[i];
                    let mut sub_dims = dims.to_vec();
                    sub_dims[0] = b - a;
                    let sub = &data[a * row..b * row];
                    let compressed =
                        laps.lap(|| compress_typed_with(sub, &sub_dims, cfg, &mut scratch));
                    *slots[i].lock().expect("slot lock") = Some(compressed);
                }
                pool.release(scratch);
                laps.commit("sz.chunk.compress");
            });
        }
    });
    lcpio_trace::counter_add("sz.chunks", ranges.len() as u64);
    drop(outer);

    let mut chunks = Vec::with_capacity(ranges.len());
    let mut stats = CompressionStats::default();
    for slot in slots {
        let c = slot
            .into_inner()
            .expect("slot lock")
            .expect("every chunk filled")?;
        stats.elements += c.stats.elements;
        stats.input_bytes += c.stats.input_bytes;
        stats.predictable += c.stats.predictable;
        stats.unpredictable += c.stats.unpredictable;
        stats.regression_blocks += c.stats.regression_blocks;
        stats.lorenzo_blocks += c.stats.lorenzo_blocks;
        stats.huffman_table_entries += c.stats.huffman_table_entries;
        stats.huffman_bits += c.stats.huffman_bits;
        chunks.push(c.bytes);
    }

    // ---- container ----
    let labeled: Vec<(usize, usize, &[u8])> = ranges
        .iter()
        .zip(&chunks)
        .map(|(&(a, b), bytes)| (a, b, bytes.as_slice()))
        .collect();
    let out = build_container(T::TYPE_TAG, dims, &labeled);
    stats.output_bytes = out.len() as u64;
    Ok(Compressed { bytes: out, stats })
}

/// Serialize a chunked SZLP container from already-compressed chunks.
///
/// This is the single writer for the SZLP byte layout: the chunked
/// compressor and the LCW1 wire bridge (which re-emits a legacy container
/// from envelope frames) both go through it, so the two can never drift.
/// Inverse of [`parse_chunked`] — `build_container` over a parsed
/// container's chunks reproduces the input bytes exactly.
pub fn build_container(type_tag: u8, dims: &[usize], chunks: &[(usize, usize, &[u8])]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&CHUNKED_MAGIC);
    out.push(type_tag);
    out.push(dims.len() as u8);
    for &d in dims {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    out.extend_from_slice(&(chunks.len() as u32).to_le_bytes());
    for &(a, b, bytes) in chunks {
        out.extend_from_slice(&(a as u64).to_le_bytes());
        out.extend_from_slice(&(b as u64).to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    }
    for &(_, _, bytes) in chunks {
        out.extend_from_slice(bytes);
    }
    out
}

/// Parsed chunked-container header: dims plus each chunk's slow-dimension
/// range and its standalone SZ stream. Used by the decompressor, the
/// property tests, and the CLI's stream describer.
#[derive(Debug)]
pub struct ChunkedInfo<'a> {
    /// Element type tag (matches [`Element::TYPE_TAG`]).
    pub type_tag: u8,
    /// Full-array dimensions, slowest first.
    pub dims: Vec<usize>,
    /// Per chunk: `(slow_start, slow_end, standalone SZ stream)`.
    pub chunks: Vec<(usize, usize, &'a [u8])>,
}

/// Parse and validate a chunked container without decoding any chunk.
pub fn parse_chunked(stream: &[u8]) -> Result<ChunkedInfo<'_>, SzError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], SzError> {
        // checked_add: a forged chunk length near usize::MAX must not wrap
        // the bounds check in release builds.
        let end = pos.checked_add(n).ok_or(SzError::Corrupt("length overflows cursor"))?;
        if end > stream.len() {
            return Err(SzError::Corrupt("unexpected end of stream"));
        }
        let s = &stream[*pos..end];
        *pos = end;
        Ok(s)
    };
    if take(&mut pos, 4)? != CHUNKED_MAGIC {
        return Err(SzError::Corrupt("bad chunked magic"));
    }
    let type_tag = take(&mut pos, 1)?[0];
    let rank = take(&mut pos, 1)?[0] as usize;
    if rank == 0 || rank > 4 {
        return Err(SzError::Corrupt("bad rank"));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize);
    }
    if dims.contains(&0) {
        return Err(SzError::Corrupt("zero dimension"));
    }
    dims.iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or(SzError::Corrupt("dims overflow"))?;
    let n_chunks = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
    if n_chunks == 0 || n_chunks > dims[0].div_ceil(BLOCK_SIDE).max(1) {
        return Err(SzError::Corrupt("bad chunk count"));
    }
    let mut meta = Vec::with_capacity(n_chunks);
    let mut prev_end = 0usize;
    for _ in 0..n_chunks {
        let a = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
        let b = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
        let len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
        if a >= b || b > dims[0] || a != prev_end {
            return Err(SzError::Corrupt("bad chunk range"));
        }
        prev_end = b;
        meta.push((a, b, len));
    }
    if prev_end != dims[0] {
        return Err(SzError::Corrupt("chunks do not cover the array"));
    }
    let mut chunks = Vec::with_capacity(n_chunks);
    for (a, b, len) in meta {
        chunks.push((a, b, take(&mut pos, len)?));
    }
    if pos != stream.len() {
        return Err(SzError::Corrupt("trailing bytes after chunks"));
    }
    Ok(ChunkedInfo { type_tag, dims, chunks })
}

/// Decompress a chunked stream using up to `threads` workers. The result
/// is bit-identical to decompressing each chunk's standalone stream
/// serially, at every thread count.
pub fn decompress_chunked<T: Element>(
    stream: &[u8],
    threads: usize,
) -> Result<(Vec<T>, Vec<usize>), SzError> {
    decompress_chunked_pooled(stream, threads, &SzScratchPool::new())
}

/// [`decompress_chunked`] with worker scratches drawn from (and returned
/// to) `pool`, mirroring [`compress_chunked_pooled`]: each decode worker
/// reuses one scratch's reconstruction array, Huffman code lengths, and
/// literal buffer across the chunks it pulls, and parks it for the next
/// call. The reconstruction is bit-identical to [`decompress_chunked`].
pub fn decompress_chunked_pooled<T: Element>(
    stream: &[u8],
    threads: usize,
    pool: &SzScratchPool<T>,
) -> Result<(Vec<T>, Vec<usize>), SzError> {
    let info = parse_chunked(stream)?;
    if info.type_tag != T::TYPE_TAG {
        return Err(SzError::TypeMismatch);
    }
    let dims = info.dims;
    let row: usize = dims[1..].iter().product::<usize>().max(1);

    // Decode chunks in parallel. A corrupt container header must never
    // drive an allocation, so each chunk's *own* stream header — which the
    // serial decompressor validates against its payload size — sizes its
    // output; the container's sub-shape is only cross-checked afterwards.
    let threads = effective_threads(threads);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<ChunkSlot<Vec<T>>> =
        (0..info.chunks.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(info.chunks.len()) {
            s.spawn(|| {
                let mut scratch = pool.acquire();
                let mut laps = lcpio_trace::Stopwatch::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= info.chunks.len() {
                        break;
                    }
                    let (a, b, chunk) = info.chunks[i];
                    let mut sub_dims = dims.clone();
                    sub_dims[0] = b - a;
                    let res = laps
                        .lap(|| decompress_typed_with::<T>(chunk, &mut scratch))
                        .and_then(|(vals, got_dims)| {
                            if got_dims != sub_dims || vals.len() != (b - a) * row {
                                Err(SzError::Corrupt("chunk shape mismatch"))
                            } else {
                                Ok(vals)
                            }
                        });
                    *slots[i].lock().expect("slot lock") = Some(res);
                }
                pool.release(scratch);
                laps.commit("sz.chunk.decompress");
            });
        }
    });
    let mut out: Vec<T> = Vec::new();
    for slot in slots {
        let vals = slot.into_inner().expect("slot lock").expect("every chunk filled")?;
        out.extend_from_slice(&vals);
    }
    Ok((out, dims))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress, decompress_typed, ErrorBound};

    fn smooth(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.01).sin() * 40.0 + (i as f32 * 0.003).cos()).collect()
    }

    fn max_err(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (*x as f64 - *y as f64).abs()).fold(0.0, f64::max)
    }

    fn cfg(eb: f64) -> SzConfig {
        SzConfig::new(ErrorBound::Absolute(eb))
    }

    #[test]
    fn chunk_ranges_align_to_blocks() {
        let r = chunk_ranges(100);
        assert_eq!(r.first().expect("nonempty").0, 0);
        assert_eq!(r.last().expect("nonempty").1, 100);
        assert!(r.len() <= MAX_CHUNKS);
        for w in r.windows(2) {
            assert_eq!(w[0].1, w[1].0);
            assert_eq!(w[0].1 % BLOCK_SIDE, 0, "interior boundary must be block-aligned");
        }
    }

    #[test]
    fn chunk_ranges_degenerate_cases() {
        assert_eq!(chunk_ranges(3), vec![(0, 3)]);
        assert_eq!(chunk_ranges(BLOCK_SIDE), vec![(0, BLOCK_SIDE)]);
        // Huge extents saturate at MAX_CHUNKS.
        assert_eq!(chunk_ranges(10_000).len(), MAX_CHUNKS);
    }

    #[test]
    fn chunked_roundtrip_respects_bound_3d() {
        let dims = [24usize, 10, 11];
        let data = smooth(dims.iter().product());
        let tol = 1e-3;
        for threads in [1, 2, 4] {
            let out = compress_chunked(&data, &dims, &cfg(tol), threads).expect("compress");
            let (rec, got) = decompress_chunked::<f32>(&out.bytes, threads).expect("decompress");
            assert_eq!(got, dims.to_vec());
            assert!(max_err(&data, &rec) <= tol * 1.0001 + 1e-9);
        }
    }

    #[test]
    fn container_bytes_are_thread_count_invariant() {
        // The chunk layout depends only on the shape, so the container is
        // byte-identical at every worker count.
        let dims = [30usize, 9, 7];
        let data = smooth(dims.iter().product());
        let one = compress_chunked(&data, &dims, &cfg(1e-2), 1).expect("compress");
        let four = compress_chunked(&data, &dims, &cfg(1e-2), 4).expect("compress");
        let eight = compress_chunked(&data, &dims, &cfg(1e-2), 8).expect("compress");
        assert_eq!(one.bytes, four.bytes);
        assert_eq!(four.bytes, eight.bytes);
        // And so is the reconstruction, whatever count decodes it.
        let (rec1, _) = decompress_chunked::<f32>(&one.bytes, 1).expect("decompress");
        let (rec4, _) = decompress_chunked::<f32>(&four.bytes, 4).expect("decompress");
        assert_eq!(rec1, rec4);
    }

    #[test]
    fn chunked_decode_matches_per_chunk_serial_decode() {
        // The headline determinism property: the chunked decoder is
        // bit-identical to serially decompressing each chunk's standalone
        // stream and concatenating.
        let dims = [26usize, 8, 9];
        let data = smooth(dims.iter().product());
        let out = compress_chunked(&data, &dims, &cfg(1e-3), 4).expect("compress");
        let (rec, _) = decompress_chunked::<f32>(&out.bytes, 4).expect("decompress");
        let info = parse_chunked(&out.bytes).expect("parse");
        assert!(info.chunks.len() > 1, "need multiple chunks to be meaningful");
        let mut serial: Vec<f32> = Vec::new();
        for &(a, b, chunk) in &info.chunks {
            let (vals, sub_dims) = decompress_typed::<f32>(chunk).expect("chunk decode");
            assert_eq!(sub_dims[0], b - a);
            serial.extend_from_slice(&vals);
        }
        assert_eq!(rec, serial);
    }

    #[test]
    fn chunked_values_differ_from_serial_but_both_obey_bound() {
        // Unlike ZFP, Lorenzo history resets at chunk boundaries, so the
        // chunked stream is a *different* (still bound-respecting)
        // approximation than the whole-array serial stream.
        let dims = [26usize, 8, 9];
        let data = smooth(dims.iter().product());
        let tol = 1e-3;
        let serial = compress(&data, &dims, &cfg(tol)).expect("compress");
        let (serial_rec, _) = crate::decompress(&serial.bytes).expect("decompress");
        let chunked = compress_chunked(&data, &dims, &cfg(tol), 4).expect("compress");
        let (chunked_rec, _) = decompress_chunked::<f32>(&chunked.bytes, 4).expect("decompress");
        assert!(max_err(&data, &serial_rec) <= tol * 1.0001 + 1e-9);
        assert!(max_err(&data, &chunked_rec) <= tol * 1.0001 + 1e-9);
    }

    #[test]
    fn chunked_1d_and_2d() {
        let data = smooth(1000);
        let out = compress_chunked(&data, &[1000], &cfg(1e-3), 4).expect("compress");
        let (rec, _) = decompress_chunked::<f32>(&out.bytes, 4).expect("decompress");
        assert!(max_err(&data, &rec) <= 1e-3 * 1.0001 + 1e-9);

        let out = compress_chunked(&data, &[25, 40], &cfg(1e-3), 3).expect("compress");
        let (rec, _) = decompress_chunked::<f32>(&out.bytes, 3).expect("decompress");
        assert!(max_err(&data, &rec) <= 1e-3 * 1.0001 + 1e-9);
    }

    #[test]
    fn chunked_f64() {
        let data: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.001).sin() * 1e6).collect();
        let out = compress_chunked(&data, &[16, 256], &cfg(1e-6), 4).expect("compress");
        let (rec, _) = decompress_chunked::<f64>(&out.bytes, 2).expect("decompress");
        for (a, b) in data.iter().zip(&rec) {
            assert!((a - b).abs() <= 1e-6 * 1.0001 + 1e-15);
        }
    }

    #[test]
    fn merged_stats_are_consistent() {
        let dims = [30usize, 10, 10];
        let data = smooth(dims.iter().product());
        let out = compress_chunked(&data, &dims, &cfg(1e-3), 4).expect("compress");
        let s = out.stats;
        assert_eq!(s.elements as usize, data.len());
        assert_eq!(s.input_bytes as usize, data.len() * 4);
        assert_eq!(s.predictable + s.unpredictable, s.elements);
        assert_eq!(s.output_bytes as usize, out.bytes.len());
    }

    #[test]
    fn corrupt_container_rejected() {
        let data = smooth(256);
        let out = compress_chunked(&data, &[256], &cfg(1e-3), 2).expect("compress");
        assert!(is_chunked(&out.bytes));
        let mut bad = out.bytes.clone();
        bad[0] = b'X';
        assert!(decompress_chunked::<f32>(&bad, 1).is_err());
        // Truncations at every prefix length must fail cleanly, never panic.
        for cut in [0, 4, 6, 14, 20, out.bytes.len() / 2, out.bytes.len() - 1] {
            assert!(
                decompress_chunked::<f32>(&out.bytes[..cut], 1).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        assert_eq!(
            decompress_chunked::<f64>(&out.bytes, 1).unwrap_err(),
            SzError::TypeMismatch
        );
        // Trailing garbage is also rejected.
        let mut padded = out.bytes.clone();
        padded.push(0);
        assert!(decompress_chunked::<f32>(&padded, 1).is_err());
    }

    #[test]
    fn pooled_output_matches_unpooled() {
        let dims = [30usize, 9, 7];
        let data = smooth(dims.iter().product());
        let pool = SzScratchPool::<f32>::new();
        let fresh = compress_chunked(&data, &dims, &cfg(1e-3), 4).expect("compress");
        let pooled =
            compress_chunked_pooled(&data, &dims, &cfg(1e-3), 4, &pool).expect("compress");
        assert_eq!(fresh.bytes, pooled.bytes);
        // Workers parked their scratches; a second call reuses them and
        // still produces the same bytes.
        assert!(pool.idle() > 0, "pool retained no scratch");
        let parked = pool.idle();
        let again =
            compress_chunked_pooled(&data, &dims, &cfg(1e-3), 4, &pool).expect("compress");
        assert_eq!(again.bytes, fresh.bytes);
        assert!(pool.idle() >= parked, "reused scratches must be returned");
    }

    #[test]
    fn pooled_decode_matches_unpooled() {
        let dims = [30usize, 9, 7];
        let data = smooth(dims.iter().product());
        let pool = SzScratchPool::<f32>::new();
        let out = compress_chunked(&data, &dims, &cfg(1e-3), 4).expect("compress");
        let (fresh, d1) = decompress_chunked::<f32>(&out.bytes, 4).expect("decompress");
        let (pooled, d2) =
            decompress_chunked_pooled::<f32>(&out.bytes, 4, &pool).expect("decompress");
        assert_eq!(d1, d2);
        assert_eq!(fresh, pooled);
        // Workers parked their scratches; a second decode reuses them and
        // still reconstructs bit-identically.
        assert!(pool.idle() > 0, "pool retained no scratch");
        let (again, _) =
            decompress_chunked_pooled::<f32>(&out.bytes, 2, &pool).expect("decompress");
        assert_eq!(again, fresh);
    }

    #[test]
    fn pool_retention_is_bounded() {
        let pool = SzScratchPool::<f32>::new();
        for _ in 0..SzScratchPool::<f32>::MAX_RETAINED + 8 {
            pool.release(SzScratch::new());
        }
        assert_eq!(pool.idle(), SzScratchPool::<f32>::MAX_RETAINED);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let data = smooth(10);
        assert_eq!(
            compress_chunked(&data, &[11], &cfg(1e-3), 2).unwrap_err(),
            SzError::InvalidDims
        );
        assert_eq!(
            compress_chunked(&data, &[], &cfg(1e-3), 2).unwrap_err(),
            SzError::InvalidDims
        );
        assert!(compress_chunked(&data, &[10], &cfg(0.0), 2).is_err());
    }
}
