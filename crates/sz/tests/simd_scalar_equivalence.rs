//! Property test: the SIMD fast path and the scalar reference are
//! indistinguishable from the outside. For every generated field — smooth
//! data salted with NaNs, infinities, subnormals, signed zeros, and
//! bound-busting outliers — both dispatch modes must emit byte-identical
//! streams, and the decompressed values must honour the error bound
//! (exactly preserving non-finite values via the literal escape path).
//!
//! The kernel switch is process-global, so every test in this binary
//! serializes on one mutex before flipping it.

use lcpio_sz::kernels;
use lcpio_sz::{compress_typed, decompress_typed, ErrorBound, PredictorMode, SzConfig};
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

fn dispatch_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// One value drawn from the classes that historically break vectorized
/// float kernels.
fn special32() -> impl Strategy<Value = f32> {
    prop_oneof![
        2 => Just(f32::NAN),
        2 => Just(f32::INFINITY),
        2 => Just(f32::NEG_INFINITY),
        2 => Just(1.0e-40f32), // subnormal
        1 => Just(-1.0e-45f32), // smallest-magnitude subnormal
        2 => Just(-0.0f32),
        2 => Just(0.0f32),
        2 => Just(3.0e38f32), // finite but escapes every bound
        2 => Just(-3.0e38f32),
        3 => -1.0e6f32..1.0e6f32,
    ]
}

/// Compress with both dispatch modes, assert identical bytes, then check
/// the reconstruction against the bound. Caller holds the dispatch lock.
fn check_equivalence_f32(
    data: &[f32],
    dims: &[usize],
    cfg: &SzConfig,
    eb: f64,
) -> Result<(), TestCaseError> {
    kernels::force_scalar(true);
    let scalar = compress_typed(data, dims, cfg);
    kernels::force_scalar(false);
    let fast = compress_typed(data, dims, cfg);
    kernels::reset_force_scalar();
    let (scalar, fast) = (scalar.expect("scalar compress"), fast.expect("fast compress"));
    prop_assert_eq!(&scalar.bytes, &fast.bytes);
    let (rec, got_dims) = decompress_typed::<f32>(&fast.bytes).expect("decompress");
    prop_assert_eq!(&got_dims[..], dims);
    for (i, (&o, &r)) in data.iter().zip(&rec).enumerate() {
        if o.is_nan() {
            prop_assert!(r.is_nan(), "index {}: NaN not preserved (got {})", i, r);
        } else if o.is_infinite() {
            prop_assert!(r == o, "index {}: {} reconstructed as {}", i, o, r);
        } else {
            let err = (r as f64 - o as f64).abs();
            prop_assert!(err <= eb, "index {}: |{} - {}| = {} > eb {}", i, r, o, err, eb);
        }
    }
    Ok(())
}

fn check_equivalence_f64(
    data: &[f64],
    dims: &[usize],
    cfg: &SzConfig,
    eb: f64,
) -> Result<(), TestCaseError> {
    kernels::force_scalar(true);
    let scalar = compress_typed(data, dims, cfg);
    kernels::force_scalar(false);
    let fast = compress_typed(data, dims, cfg);
    kernels::reset_force_scalar();
    let (scalar, fast) = (scalar.expect("scalar compress"), fast.expect("fast compress"));
    prop_assert_eq!(&scalar.bytes, &fast.bytes);
    let (rec, _) = decompress_typed::<f64>(&fast.bytes).expect("decompress");
    for (i, (&o, &r)) in data.iter().zip(&rec).enumerate() {
        if o.is_nan() {
            prop_assert!(r.is_nan(), "index {}: NaN not preserved (got {})", i, r);
        } else if o.is_infinite() {
            prop_assert!(r == o, "index {}: {} reconstructed as {}", i, o, r);
        } else {
            let err = (r - o).abs();
            prop_assert!(err <= eb, "index {}: |{} - {}| = {} > eb {}", i, r, o, err, eb);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fast_and_scalar_paths_agree_on_adversarial_fields(
        nz in 1usize..4,
        ny in 1usize..40,
        nx in 1usize..80,
        rank in 1usize..4,
        seed in any::<u64>(),
        density in 0u32..101,
        specials in proptest::collection::vec(special32(), 48..49),
        eb in prop_oneof![3 => Just(1e-3f64), 1 => Just(1e-1f64), 1 => Just(1e-6f64)],
        lorenzo in any::<bool>(),
        lossless in any::<bool>(),
    ) {
        let dims: Vec<usize> = match rank {
            1 => vec![nz * ny * nx],
            2 => vec![nz * ny, nx],
            _ => vec![nz, ny, nx],
        };
        let n: usize = dims.iter().product();
        // Smooth base signal salted with special values at `density`%.
        let mut s = seed | 1;
        let data: Vec<f32> = (0..n)
            .map(|i| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                if (s % 100) < density as u64 {
                    specials[(s >> 32) as usize % specials.len()]
                } else {
                    let x = i as f32 * 0.01;
                    x.sin() * 50.0 + (s >> 56) as f32 * 0.01
                }
            })
            .collect();
        let mode = if lorenzo { PredictorMode::Lorenzo } else { PredictorMode::BlockAdaptive };
        let cfg = SzConfig::new(ErrorBound::Absolute(eb)).with_mode(mode).with_lossless(lossless);
        let _guard = dispatch_lock().lock().unwrap();
        check_equivalence_f32(&data, &dims, &cfg, eb)?;
        let data64: Vec<f64> = data.iter().map(|&v| v as f64).collect();
        check_equivalence_f64(&data64, &dims, &cfg, eb)?;
    }
}

/// Degenerate whole-field cases the random sampler is unlikely to hit:
/// every element non-finite or every element an escaping outlier, on a
/// grid wide enough to engage the wavefront kernel (ny ≥ 16, nx ≥ 32).
#[test]
fn uniform_special_fields_match_and_roundtrip() {
    let dims = [2usize, 18, 40];
    let n: usize = dims.iter().product();
    let eb = 1e-3;
    let all_nan = vec![f32::NAN; n];
    let all_inf: Vec<f32> =
        (0..n).map(|i| if i % 2 == 0 { f32::INFINITY } else { f32::NEG_INFINITY }).collect();
    let all_outlier: Vec<f32> = (0..n).map(|i| if i % 2 == 0 { 3.0e38 } else { -3.0e38 }).collect();
    let all_subnormal: Vec<f32> = (0..n).map(|i| 1.0e-40 * (i % 7) as f32).collect();
    let _guard = dispatch_lock().lock().unwrap();
    for (name, data) in [
        ("all-NaN", &all_nan),
        ("all-Inf", &all_inf),
        ("all-outlier", &all_outlier),
        ("all-subnormal", &all_subnormal),
    ] {
        for mode in [PredictorMode::Lorenzo, PredictorMode::BlockAdaptive] {
            let cfg = SzConfig::new(ErrorBound::Absolute(eb)).with_mode(mode);
            kernels::force_scalar(true);
            let scalar = compress_typed(data, &dims, &cfg).expect("scalar compress");
            kernels::force_scalar(false);
            let fast = compress_typed(data, &dims, &cfg).expect("fast compress");
            kernels::reset_force_scalar();
            assert_eq!(scalar.bytes, fast.bytes, "{name} {mode:?}: streams differ");
            let (rec, _) = decompress_typed::<f32>(&fast.bytes).expect("decompress");
            for (i, (&o, &r)) in data.iter().zip(&rec).enumerate() {
                if o.is_nan() {
                    assert!(r.is_nan(), "{name} {mode:?} index {i}: NaN not preserved");
                } else if o.is_infinite() {
                    assert_eq!(r, o, "{name} {mode:?} index {i}");
                } else {
                    let err = (r as f64 - o as f64).abs();
                    assert!(err <= eb, "{name} {mode:?} index {i}: err {err} > {eb}");
                }
            }
        }
    }
}
