//! Stream-format regression: SZ compressed bytes are pinned against hashes
//! captured from the original scalar element-at-a-time codec, before the
//! SIMD kernels landed. The wavefront predict/quantize kernel and the
//! batched Huffman emitter are pure optimizations — any change to the
//! emitted bytes is a format break and must fail here.
//!
//! The same cases are then re-compressed with the kernels forced scalar
//! and forced fast, proving both paths emit identical streams. The kernel
//! switch is process-global, so everything runs inside one `#[test]` per
//! concern rather than one test per case.

use lcpio_sz::kernels;
use lcpio_sz::{
    compress_chunked, compress_pointwise_rel, compress_typed, decompress_typed, ErrorBound,
    PredictorMode, SzConfig,
};

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Deterministic, platform-independent test field: xorshift64 samples with
/// exact zeros and occasional large outliers (so escape literals appear).
fn field_f32(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed | 1;
    (0..n)
        .map(|i| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if i % 37 == 0 {
                0.0
            } else if i % 41 == 0 {
                ((s >> 40) as f32 - 8000.0) * 1e4
            } else {
                (s >> 52) as f32 / 256.0 + (i as f32 * 0.05).sin() * 4.0
            }
        })
        .collect()
}

fn field_f64(n: usize, seed: u64) -> Vec<f64> {
    field_f32(n, seed).into_iter().map(|v| v as f64).collect()
}

/// Shape/config combinations: 1-D both orders, 2-D, 3-D in both predictor
/// modes, lossless off, 4-D, and a value-range-relative bound.
fn cases() -> Vec<(Vec<usize>, SzConfig)> {
    let abs = ErrorBound::Absolute(1e-3);
    vec![
        (vec![257], SzConfig::new(abs)),
        (vec![256], SzConfig { lorenzo_order: 1, ..SzConfig::new(abs) }),
        (vec![33, 47], SzConfig::new(abs).with_mode(PredictorMode::Lorenzo)),
        (vec![17, 18, 19], SzConfig::new(abs)),
        (vec![17, 18, 19], SzConfig::new(abs).with_mode(PredictorMode::Lorenzo)),
        (vec![17, 18, 19], SzConfig::new(abs).with_lossless(false)),
        (vec![3, 4, 5, 6], SzConfig::new(abs)),
        (vec![40, 40], SzConfig::new(ErrorBound::ValueRangeRelative(1e-3))),
    ]
}

const F32_EXPECT: [(usize, u64); 8] = [
    (1474, 0x0b0309fc53ac5be1),
    (1409, 0x9fdaeecd243a8a0f),
    (5903, 0x1bdaa0997fef96ce),
    (26857, 0xb11a0ea539ab285a),
    (19961, 0x601ec97a8dcf50c8),
    (74689, 0x2aed0cf73c1b7ce8),
    (1636, 0x91c2223b11df54df),
    (1235, 0x87bf1391edd3488b),
];

const F64_EXPECT: [(usize, u64); 8] = [
    (1525, 0x1261634bde1d8502),
    (1419, 0x1ebb3a8c14a9b405),
    (6214, 0x71ecd856dbaf7552),
    (32902, 0x9a0f08e18388e23d),
    (21561, 0xb997cc275be17f2d),
    (100907, 0xa194a25cfbfcaee6),
    (2333, 0xe427dc5c54964d7d),
    (1260, 0xbd29894dd90bbddb),
];

fn serial_streams_f32() -> Vec<Vec<u8>> {
    cases()
        .iter()
        .enumerate()
        .map(|(i, (dims, cfg))| {
            let n: usize = dims.iter().product();
            let data = field_f32(n, 0x5eed + i as u64);
            compress_typed(&data, dims, cfg).expect("compress").bytes
        })
        .collect()
}

fn serial_streams_f64() -> Vec<Vec<u8>> {
    cases()
        .iter()
        .enumerate()
        .map(|(i, (dims, cfg))| {
            let n: usize = dims.iter().product();
            let data = field_f64(n, 0xd0d0 + i as u64);
            compress_typed(&data, dims, cfg).expect("compress").bytes
        })
        .collect()
}

#[test]
fn serial_streams_match_pinned_hashes() {
    // Pinned hashes were captured with the kernels forced scalar (the
    // original code); the default dispatch must reproduce them exactly.
    for (i, stream) in serial_streams_f32().iter().enumerate() {
        let (dims, _) = &cases()[i];
        assert_eq!(
            (stream.len(), fnv64(stream)),
            F32_EXPECT[i],
            "f32 case {i} ({dims:?}) changed the stream format"
        );
        let (rec, got_dims) = decompress_typed::<f32>(stream).expect("decompress");
        assert_eq!(&got_dims, dims);
        assert_eq!(rec.len(), dims.iter().product::<usize>());
    }
    for (i, stream) in serial_streams_f64().iter().enumerate() {
        let (dims, _) = &cases()[i];
        assert_eq!(
            (stream.len(), fnv64(stream)),
            F64_EXPECT[i],
            "f64 case {i} ({dims:?}) changed the stream format"
        );
        let (rec, got_dims) = decompress_typed::<f64>(stream).expect("decompress");
        assert_eq!(&got_dims, dims);
        assert_eq!(rec.len(), dims.iter().product::<usize>());
    }
}

#[test]
fn scalar_and_fast_paths_emit_identical_streams() {
    // Process-global switch: flip it around whole passes, restore at end.
    kernels::force_scalar(true);
    let scalar32 = serial_streams_f32();
    let scalar64 = serial_streams_f64();
    kernels::force_scalar(false);
    let fast32 = serial_streams_f32();
    let fast64 = serial_streams_f64();
    kernels::reset_force_scalar();
    for (i, (a, b)) in scalar32.iter().zip(&fast32).enumerate() {
        assert_eq!(a, b, "f32 case {i}: scalar vs fast streams differ");
    }
    for (i, (a, b)) in scalar64.iter().zip(&fast64).enumerate() {
        assert_eq!(a, b, "f64 case {i}: scalar vs fast streams differ");
    }
    // Larger 3-D fields so the wavefront kernel runs multiple full tile
    // groups (and tails) in every mode.
    for mode in [PredictorMode::Lorenzo, PredictorMode::BlockAdaptive] {
        for lossless in [false, true] {
            let dims = vec![6usize, 37, 129];
            let n: usize = dims.iter().product();
            let data = field_f32(n, 0xabcd ^ lossless as u64);
            let cfg = SzConfig::new(ErrorBound::Absolute(1e-3))
                .with_mode(mode)
                .with_lossless(lossless);
            kernels::force_scalar(true);
            let a = compress_typed(&data, &dims, &cfg).unwrap().bytes;
            kernels::force_scalar(false);
            let b = compress_typed(&data, &dims, &cfg).unwrap().bytes;
            kernels::reset_force_scalar();
            assert_eq!(a, b, "large 3-D {mode:?} lossless={lossless}: paths differ");
            let (rec, _) = decompress_typed::<f32>(&b).unwrap();
            assert_eq!(rec.len(), n);
        }
    }
}

#[test]
fn fused_histogram_commit_is_bit_identical_and_pinned() {
    // The AVX2 commit pass folds the 4-stripe symbol histogram into the
    // tile commit (one pass over the symbols instead of two). Stripe
    // assignment differs from the standalone count, but the merged
    // frequencies — and therefore the Huffman table and every emitted
    // bit — must be unchanged. A field large enough for multiple full
    // tile groups, row tails and leftover rows exercises all three
    // fused counting sites.
    let dims = vec![64usize, 48, 96];
    let n: usize = dims.iter().product();
    let data = field_f32(n, 0xf00d);
    let cfg = SzConfig::new(ErrorBound::Absolute(1e-3));
    kernels::force_scalar(true);
    let scalar = compress_typed(&data, &dims, &cfg).unwrap().bytes;
    kernels::force_scalar(false);
    let fast = compress_typed(&data, &dims, &cfg).unwrap().bytes;
    kernels::reset_force_scalar();
    assert_eq!(scalar, fast, "fused-histogram fast path changed the stream");
    assert_eq!(
        (fast.len(), fnv64(&fast)),
        (1239326, 0xa14fe20444c14883),
        "fused-histogram stream changed format"
    );
    let (rec, got_dims) = decompress_typed::<f32>(&fast).expect("decompress");
    assert_eq!(got_dims, dims);
    assert_eq!(rec.len(), n);
}

#[test]
fn chunked_containers_match_pinned_hashes_across_threads() {
    let data = field_f32(32 * 9 * 7, 0xc0ffee);
    let cfg = SzConfig::new(ErrorBound::Absolute(1e-3));
    let out = compress_chunked(&data, &[32, 9, 7], &cfg, 2).expect("compress");
    assert_eq!(
        (out.bytes.len(), fnv64(&out.bytes)),
        (10939, 0x32c0636f4f1b249b),
        "chunked SZLP f32 container changed format"
    );
    // Chunk boundaries are shape-only: any thread count must emit the
    // identical container.
    for threads in [1usize, 3, 5, 8] {
        let other = compress_chunked(&data, &[32, 9, 7], &cfg, threads).expect("compress");
        assert_eq!(out.bytes, other.bytes, "SZLP stream depends on thread count {threads}");
    }

    let data64 = field_f64(40 * 8 * 6, 0xabcdef);
    let cfg64 = SzConfig::new(ErrorBound::Absolute(1e-4));
    let out64 = compress_chunked(&data64, &[40, 8, 6], &cfg64, 3).expect("compress");
    assert_eq!(
        (out64.bytes.len(), fnv64(&out64.bytes)),
        (13024, 0x0b5c1c976d8a8ab3),
        "chunked SZLP f64 container changed format"
    );
}

#[test]
fn pointwise_rel_matches_pinned_hash() {
    let data: Vec<f32> = field_f32(900, 0xfeed)
        .into_iter()
        .map(|v| if v == 0.0 { 0.0 } else { v * v + 0.5 })
        .collect();
    let out = compress_pointwise_rel(
        &data,
        &[30, 30],
        1e-3,
        &SzConfig::new(ErrorBound::Absolute(1.0)),
    )
    .expect("compress");
    assert_eq!(
        (out.bytes.len(), fnv64(&out.bytes)),
        (4719, 0x130883166a901ebc),
        "SZPR pointwise-relative stream changed format"
    );
}
