#![warn(missing_docs)]
//! # lcpio-bench — the paper's tables and figures, regenerated
//!
//! Each `cargo bench` target reproduces one artifact of the evaluation:
//!
//! | target | artifact |
//! |---|---|
//! | `table1_datasets` | Table I — datasets |
//! | `table2_hardware` | Table II — hardware |
//! | `table3_slices` | Table III — model slices |
//! | `table4_compression_models` | Table IV — compression power models + GF |
//! | `table5_transit_models` | Table V — transit power models + GF |
//! | `fig1_compression_power` | Figure 1 — compression scaled power |
//! | `fig2_compression_runtime` | Figure 2 — compression scaled runtime |
//! | `fig3_transit_power` | Figure 3 — transit scaled power |
//! | `fig4_transit_runtime` | Figure 4 — transit scaled runtime |
//! | `fig5_isabel_validation` | Figure 5 — Broadwell model vs ISABEL |
//! | `fig6_data_dump` | Figure 6 — 512 GB dump, base vs tuned |
//! | `eqn3_tuning_rule` | Eqn 3 + the §V-A3 savings numbers |
//! | `ablation_*` | design-choice ablations (DESIGN.md §5) |
//! | `criterion_compressors` | Criterion micro-benchmarks of both codecs |
//! | `ext_pipeline_overlap` | overlapped compress→write pipeline vs the sequential dump |
//!
//! Paper-vs-measured comparisons for every artifact are recorded in
//! `EXPERIMENTS.md` at the repository root.

use lcpio_core::experiment::{run_full_sweep, ExperimentConfig, SweepResult};

/// Run the standard paper-scale sweep used by most bench targets.
///
/// Honors `LCPIO_BENCH_SCALE` (element-count divisor, default 256) and
/// `LCPIO_BENCH_REPS` (default 10) so CI can trade fidelity for time.
pub fn paper_sweep() -> SweepResult {
    let mut cfg = ExperimentConfig::paper();
    if let Ok(s) = std::env::var("LCPIO_BENCH_SCALE") {
        if let Ok(v) = s.parse::<usize>() {
            cfg.scale = v.max(1);
        }
    }
    if let Ok(s) = std::env::var("LCPIO_BENCH_REPS") {
        if let Ok(v) = s.parse::<u32>() {
            cfg.reps = v.max(1);
        }
    }
    run_full_sweep(&cfg)
}

/// Print the standard bench banner.
pub fn banner(artifact: &str, paper_claim: &str) {
    println!("================================================================");
    println!("{artifact}");
    println!("paper: {paper_claim}");
    println!("================================================================");
}
