//! Ablation: is `a·f^b + c` actually the right family? AIC model selection
//! against polynomials on both chips' measured curves (the selection step
//! the paper delegates to the MATLAB toolbox).

use lcpio_bench::banner;
use lcpio_fit::polynomial::select_model;
use lcpio_powersim::{simulate, Chip, Machine, WorkProfile};

fn main() {
    banner(
        "ABLATION — model-family selection (AIC): power law vs polynomials",
        "the toolbox 'finds the most optimal model'; Eqn 2 should win on knee data",
    );
    let job = WorkProfile { compute_cycles: 30e9, memory_bytes: 160e9, ..Default::default() };
    for chip in Chip::ALL {
        let m = Machine::for_chip(chip);
        let xs: Vec<f64> = m.cpu.ladder().collect();
        let pmax = simulate(&m, m.cpu.f_max_ghz, &job).avg_power_w;
        let ys: Vec<f64> =
            xs.iter().map(|&f| simulate(&m, f, &job).avg_power_w / pmax).collect();
        let ranked = select_model(&xs, &ys).expect("selection");
        println!("\n{} scaled-power curve, families ranked by AIC:", chip.name());
        for f in &ranked {
            println!(
                "  {:<24} AIC {:>9.1}   SSE {:.3e}",
                f.name(),
                f.aic(),
                f.gof().sse
            );
        }
    }
}
