//! Extension: multi-threaded chunked SZ — wall-clock scaling and the
//! (tiny) size overhead of the chunk container.
//!
//! Unlike chunked ZFP, chunked SZ is a *different* (still bound-respecting)
//! approximation than the serial stream: the Lorenzo predictor resets at
//! every chunk boundary. The container bytes are nevertheless identical at
//! every thread count, so the speedup comes with full reproducibility.

use lcpio_bench::banner;
use lcpio_codec::{registry, BoundSpec};
use lcpio_datagen::nyx;
use std::time::Instant;

fn main() {
    banner(
        "EXTENSION — parallel (chunked) SZ compression",
        "reference codec's OpenMP mode; thread-count-invariant output, near-linear speedup",
    );
    let field = nyx::velocity_x(256, 3); // 256^3 = 16.8 M elements
    let dims: Vec<usize> = field.dims().extents().to_vec();
    let codec = registry().by_name("sz").expect("sz is registered");
    let bound = BoundSpec::Absolute(1e-3);

    let t0 = Instant::now();
    let serial = codec.compress(&field.data, &dims, bound).expect("compress");
    let serial_time = t0.elapsed();
    println!(
        "serial:             {:>8.1} ms   {:>9} bytes",
        serial_time.as_secs_f64() * 1e3,
        serial.bytes.len()
    );

    for threads in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let out = codec.compress_chunked(&field.data, &dims, bound, threads).expect("compress");
        let dt = t0.elapsed();
        let t1 = Instant::now();
        let (rec, _) = registry().decompress_auto(&out.bytes, threads).expect("decompress");
        let ddt = t1.elapsed();
        let overhead = out.bytes.len() as f64 / serial.bytes.len() as f64 - 1.0;
        assert_eq!(rec.len(), field.data.len());
        println!(
            "chunked x{threads}:         {:>8.1} ms   {:>9} bytes ({:+.2}% container overhead), decode {:>7.1} ms, speedup {:.2}x",
            dt.as_secs_f64() * 1e3,
            out.bytes.len(),
            overhead * 100.0,
            ddt.as_secs_f64() * 1e3,
            serial_time.as_secs_f64() / dt.as_secs_f64()
        );
    }
}
