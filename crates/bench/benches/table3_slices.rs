//! Table III — the model slices and the record counts they regress on.

use lcpio_bench::{banner, paper_sweep};
use lcpio_core::slicing::{CompressionSlice, TransitSlice};

fn main() {
    banner(
        "TABLE III — models produced for tuning",
        "five compression slices (Total/SZ/ZFP/Broadwell/Skylake), three transit slices",
    );
    let sweep = paper_sweep();
    println!("{:<11} {:<24} {:<22} {:>8}", "Model Data", "Compressor(s)", "CPU(s)", "records");
    for slice in CompressionSlice::ALL {
        let (comps, cpus) = match slice {
            CompressionSlice::Total => ("SZ, ZFP", "Broadwell, Skylake"),
            CompressionSlice::Sz => ("SZ", "Broadwell, Skylake"),
            CompressionSlice::Zfp => ("ZFP", "Broadwell, Skylake"),
            CompressionSlice::Broadwell => ("SZ, ZFP", "Broadwell"),
            CompressionSlice::Skylake => ("SZ, ZFP", "Skylake"),
        };
        println!(
            "{:<11} {:<24} {:<22} {:>8}",
            slice.name(),
            comps,
            cpus,
            slice.filter(&sweep.compression).len()
        );
    }
    println!("\ndata-transit slices:");
    for slice in TransitSlice::ALL {
        println!("{:<11} {:>8} records", slice.name(), slice.filter(&sweep.transit).len());
    }
}
