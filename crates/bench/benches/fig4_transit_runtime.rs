//! Figure 4 — data transit scaled runtime characteristics.
//!
//! Paper shape: lowest runtime at max clock; Broadwell is clearly
//! frequency-sensitive (+9.3% at −15%) while Skylake's write runtime is
//! nearly stagnant across the ladder.

use lcpio_bench::{banner, paper_sweep};
use lcpio_core::characteristics::transit_runtime_curves;
use lcpio_core::report::render_curves;

fn main() {
    banner(
        "FIGURE 4 — data transit scaled runtime characteristics",
        "+9.3% at -15% frequency on Broadwell; Skylake stagnant",
    );
    let sweep = paper_sweep();
    let curves = transit_runtime_curves(&sweep.transit);
    println!("{}", render_curves("scaled runtime vs frequency (95% CI)", &curves));
    for c in &curves {
        let fmax = c.chip.spec().f_max_ghz;
        println!(
            "{:<12} runtime at 0.85 f_max: {:.3}   at f_min: {:.3}",
            c.label,
            c.value_at(0.85 * fmax),
            c.floor()
        );
    }
}
