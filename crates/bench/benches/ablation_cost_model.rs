//! Ablation: how sensitive are the headline savings to the stats→work
//! mapping constants? (DESIGN.md §5, item 2.)
//!
//! Sweeps the memory-stall factor — which controls the compute-bound
//! fraction of compression — and reports the Eqn-3 savings each setting
//! produces. The paper's +7.5%-runtime observation pins this constant;
//! the ablation shows the conclusion (tuning saves double-digit power at
//! single-digit runtime cost) is robust across a wide band.

use lcpio_bench::banner;
use lcpio_core::characteristics::{compression_power_curves, compression_runtime_curves};
use lcpio_core::experiment::{run_compression_sweep, ExperimentConfig};
use lcpio_core::tuning::{evaluate_rule, TuningRule};

fn main() {
    banner(
        "ABLATION — memory-stall factor (compute-bound fraction of compression)",
        "paper's +7.5% runtime at -12.5% frequency implies ~52% compute-bound",
    );
    println!(
        "{:>12} {:>14} {:>16} {:>14}",
        "stall B/cyc", "power savings", "runtime increase", "energy savings"
    );
    for stall in [1.0, 2.7, 5.4, 10.8, 21.6] {
        let mut cfg = ExperimentConfig::paper();
        cfg.scale = 4096; // ablations trade sample size for sweep breadth
        cfg.reps = 3;
        cfg.cost_model.stall_bytes_per_cycle = stall;
        let recs = run_compression_sweep(&cfg);
        let report = evaluate_rule(
            TuningRule::PAPER,
            &compression_power_curves(&recs),
            &compression_runtime_curves(&recs),
            &[],
            &[],
        );
        println!(
            "{:>12.1} {:>13.1}% {:>15.1}% {:>13.1}%",
            stall,
            report.compression_power_savings * 100.0,
            report.compression_runtime_increase * 100.0,
            report.compression_energy_savings * 100.0
        );
    }
    println!("\nlower stall factor -> more compute-bound -> bigger runtime penalty;");
    println!("power savings stay double-digit throughout (the paper's conclusion).");
}
