//! Extension: the paper's future work — do the trends hold on a different
//! CPU? Sweeps the EPYC-like part, fits the same model family, and
//! compares Eqn 3 against a natively derived rule.

use lcpio_bench::banner;
use lcpio_core::experiment::ExperimentConfig;
use lcpio_core::generalization::run_generalization;

fn main() {
    banner(
        "EXTENSION — generalization to a third CPU (EPYC-like)",
        "paper §VI-B: 'whether these trends hold on different CPUs' (future work)",
    );
    let mut cfg = ExperimentConfig::paper();
    cfg.scale = cfg.scale.max(1024); // the study needs breadth, not sample size
    cfg.reps = 5;
    let r = run_generalization(&cfg);
    println!("fitted model: P(f) = {}   (RMSE {:.4})", r.model.fit.equation(), r.model.fit.gof.rmse);
    println!(
        "paper Eqn 3 applied blindly:  power savings {:>5.1}%, runtime +{:>4.1}%, energy savings {:>5.1}%",
        r.paper_rule.compression_power_savings * 100.0,
        r.paper_rule.compression_runtime_increase * 100.0,
        r.paper_rule.compression_energy_savings * 100.0
    );
    println!(
        "native rule ({:.3}·f_max):    power savings {:>5.1}%, runtime +{:>4.1}%, energy savings {:>5.1}%",
        r.native_rule.compression_fraction,
        r.native_report.compression_power_savings * 100.0,
        r.native_report.compression_runtime_increase * 100.0,
        r.native_report.compression_energy_savings * 100.0
    );
}
