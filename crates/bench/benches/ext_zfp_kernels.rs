//! Word-level ZFP kernel benchmarks: end-to-end compress/decompress
//! throughput on a 128³ smooth field (the acceptance target for the
//! batched bitstream + plane-wise coder rewrite), plus micro-benchmarks
//! of the kernels the rewrite touched.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lcpio_codec::{registry, BoundSpec, Codec};
use lcpio_zfp::bitstream::{ReadStream, WriteStream};
use lcpio_zfp::transform;

const SIDE: usize = 128;

/// Smooth 3-D field: the compressible regime the paper's NYX fields live in.
fn smooth_field() -> Vec<f32> {
    let mut out = Vec::with_capacity(SIDE * SIDE * SIDE);
    for z in 0..SIDE {
        for y in 0..SIDE {
            for x in 0..SIDE {
                let (x, y, z) = (x as f32, y as f32, z as f32);
                out.push((x * 0.08).sin() * (y * 0.05).cos() + (z * 0.03).sin() * 2.0);
            }
        }
    }
    out
}

fn bench_codec(c: &mut Criterion) {
    let data = smooth_field();
    let dims = vec![SIDE, SIDE, SIDE];
    let bytes = (data.len() * 4) as u64;
    let zfp: &dyn Codec = registry().by_name("zfp").expect("zfp is registered");
    let bound = BoundSpec::Absolute(1e-3);

    let mut group = c.benchmark_group("zfp_kernels/compress");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_with_input(BenchmarkId::new("serial", "128^3"), &bound, |b, &bound| {
        b.iter(|| zfp.compress(&data, &dims, bound).unwrap());
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("chunked", format!("128^3/t{threads}")),
            &threads,
            |b, &threads| {
                b.iter(|| zfp.compress_chunked(&data, &dims, bound, threads).unwrap());
            },
        );
    }
    group.finish();

    let stream = zfp.compress(&data, &dims, bound).unwrap();
    let chunked = zfp.compress_chunked(&data, &dims, bound, 4).unwrap();
    let mut group = c.benchmark_group("zfp_kernels/decompress");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_with_input(BenchmarkId::new("serial", "128^3"), &stream.bytes, |b, s| {
        b.iter(|| zfp.decompress(s, 1).unwrap());
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("chunked", format!("128^3/t{threads}")),
            &threads,
            |b, &threads| {
                b.iter(|| zfp.decompress(&chunked.bytes, threads).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    // Bitstream: write then drain 1 MiB of mixed-width fields.
    let widths: Vec<usize> = (0..4096).map(|i| (i * 7) % 65).collect();
    let total_bits: usize = widths.iter().sum();
    let mut group = c.benchmark_group("zfp_kernels/bitstream");
    group.throughput(Throughput::Bytes((total_bits / 8) as u64));
    group.bench_with_input(BenchmarkId::new("write_bits", "mixed"), &widths, |b, widths| {
        b.iter(|| {
            let mut w = WriteStream::new();
            for (i, &n) in widths.iter().enumerate() {
                w.write_bits(i as u64 ^ 0x9e37_79b9_7f4a_7c15, n);
            }
            w.into_bytes()
        });
    });
    let mut w = WriteStream::new();
    for (i, &n) in widths.iter().enumerate() {
        w.write_bits(i as u64 ^ 0x9e37_79b9_7f4a_7c15, n);
    }
    let buf = w.into_bytes();
    group.bench_with_input(BenchmarkId::new("read_bits", "mixed"), &buf, |b, buf| {
        b.iter(|| {
            let mut r = ReadStream::new(buf);
            let mut acc = 0u64;
            for &n in &widths {
                acc = acc.wrapping_add(r.read_bits(n));
            }
            acc
        });
    });
    group.finish();

    // Transform: forward+inverse lift of a 3-D block, specialized kernels.
    let block: Vec<i64> = (0..64).map(|i| (i as i64 * 977) % 4096 - 2048).collect();
    let mut group = c.benchmark_group("zfp_kernels/transform");
    group.throughput(Throughput::Bytes(64 * 8));
    group.bench_with_input(BenchmarkId::new("lift3d", "roundtrip"), &block, |b, block| {
        b.iter(|| {
            let mut v = block.clone();
            transform::forward(&mut v, 3);
            transform::inverse(&mut v, 3);
            v
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_codec, bench_kernels
}
criterion_main!(benches);
