//! Figure 5 — Broadwell power-consumption model validated on data it never
//! saw: six Hurricane-ISABEL fields at error bound 1e-4.
//!
//! Paper: SSE = 0.1463, RMSE = 0.0256 — "the model estimates power
//! behavior well, even with data not factored into our model."

use lcpio_bench::{banner, paper_sweep};
use lcpio_core::models::{compression_model_table, row};
use lcpio_core::report::render_curves;
use lcpio_core::validation::{validate_on_isabel, ValidationConfig};

fn main() {
    banner(
        "FIGURE 5 — Broadwell chip model for power consumption (ISABEL validation)",
        "SSE 0.1463, RMSE 0.0256 on unseen Hurricane-ISABEL fields",
    );
    println!("fitting the Broadwell model on CESM/HACC/NYX...");
    let sweep = paper_sweep();
    let t4 = compression_model_table(&sweep.compression);
    let bd = row(&t4, "Broadwell").expect("table IV always has a Broadwell row");
    println!("  model: P(f) = {}\n", bd.fit.equation());

    println!("validating on ISABEL (PRECIP, P, TC, U, V, W at eb 1e-4, SZ + ZFP)...");
    let result = validate_on_isabel(&ValidationConfig::paper(), &bd.fit);
    println!(
        "  SSE = {:.4}   RMSE = {:.4}   (paper: 0.1463 / 0.0256)\n",
        result.gof.sse, result.gof.rmse
    );
    println!(
        "{}",
        render_curves(
            "measured vs predicted scaled power",
            &[result.measured, result.predicted]
        )
    );
}
