//! Ablation: SZ predictor choice (DESIGN.md §5, item 3).
//!
//! Compares the SZ2-style block-adaptive predictor against pure Lorenzo on
//! every dataset and bound: compression ratio and the share of blocks that
//! chose regression.

use lcpio_bench::banner;
use lcpio_datagen::Dataset;
use lcpio_sz::{compress, ErrorBound, PredictorMode, SzConfig};

fn main() {
    banner(
        "ABLATION — SZ predictor: block-adaptive (SZ2) vs global Lorenzo (SZ1.4)",
        "regression wins on tilted smooth regions; Lorenzo on fine texture",
    );
    println!(
        "{:<10} {:>8} {:>14} {:>14} {:>12}",
        "dataset", "eb", "lorenzo ratio", "adaptive ratio", "reg blocks"
    );
    for ds in Dataset::MODEL_SETS {
        let field = ds.generate(2048, 3);
        let dims: Vec<usize> = field.dims().extents().to_vec();
        for eb in [1e-2, 1e-4] {
            let lor = compress(
                &field.data,
                &dims,
                &SzConfig::new(ErrorBound::Absolute(eb)).with_mode(PredictorMode::Lorenzo),
            )
            .expect("compress");
            let ada = compress(
                &field.data,
                &dims,
                &SzConfig::new(ErrorBound::Absolute(eb)).with_mode(PredictorMode::BlockAdaptive),
            )
            .expect("compress");
            let total_blocks = ada.stats.regression_blocks + ada.stats.lorenzo_blocks;
            let share = if total_blocks > 0 {
                ada.stats.regression_blocks as f64 / total_blocks as f64 * 100.0
            } else {
                0.0
            };
            println!(
                "{:<10} {:>8.0e} {:>13.2}x {:>13.2}x {:>11.1}%",
                ds.name(),
                eb,
                lor.stats.ratio(),
                ada.stats.ratio(),
                share
            );
        }
    }
}
