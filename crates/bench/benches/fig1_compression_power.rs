//! Figure 1 — compression scaled power characteristics.
//!
//! Paper shape: all four (chip × compressor) curves sit in a nearly flat
//! band around 0.75–0.85 at low frequency and climb steeply to 1.0 near
//! f_max (the critical power slope); Skylake's range is narrower than
//! Broadwell's; error bounds are indiscernible after scaling.

use lcpio_bench::{banner, paper_sweep};
use lcpio_core::characteristics::compression_power_curves;
use lcpio_core::report::render_curves;

fn main() {
    banner(
        "FIGURE 1 — compression scaled power characteristics",
        "critical power slope; floors ~0.75-0.85; Skylake range narrower than Broadwell",
    );
    let sweep = paper_sweep();
    let curves = compression_power_curves(&sweep.compression);
    println!("{}", render_curves("scaled power vs frequency (95% CI)", &curves));
}
