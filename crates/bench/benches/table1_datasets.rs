//! Table I — the datasets considered in the study.
//!
//! Regenerates the dataset inventory (domain, dimensions, field size) from
//! the descriptors, and verifies the synthetic generators actually produce
//! those shapes (at sample scale) with realistic value statistics.

use lcpio_bench::banner;
use lcpio_datagen::Dataset;

fn main() {
    banner(
        "TABLE I — data sets considered in study",
        "CESM-ATM 26x1800x3600 (673.9MB), HACC 1x280953867, NYX 512x512x512 (536.9MB)",
    );
    println!(
        "{:<18} {:<18} {:>14} {:>12} {:>12}",
        "Domain", "Dimensions", "Field size", "sample n", "sample sd"
    );
    for ds in Dataset::MODEL_SETS.iter().chain([Dataset::Isabel].iter()) {
        let field = ds.generate(4096, 1);
        println!(
            "{:<18} {:<18} {:>12.1}MB {:>12} {:>12.3}",
            ds.name(),
            ds.full_dims().to_string(),
            ds.full_field_bytes() as f64 / 1e6,
            field.data.len(),
            field.std_dev()
        );
    }
    println!("\n(HACC's field size is 280,953,867 x 4 B = 1123.8 MB; the paper's Table I");
    println!(" prints 1046.9 MB, which is inconsistent with its own element count.)");
}
