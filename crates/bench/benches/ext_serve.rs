//! Extension: compression-as-a-service throughput scaling (ROADMAP
//! item 2; no paper counterpart — the paper models one-shot checkpoint
//! I/O, this measures the same codecs behind the `lcpio-serve` daemon).
//!
//! Boots the daemon on a Unix socket and drives the mixed
//! compress/decompress/info workload at increasing worker-shard counts,
//! in two regimes:
//!
//! * **compute-bound** — raw codec work; scaling here is capped by the
//!   host's core count (informational, not asserted: CI containers may
//!   be single-core).
//! * **I/O-held** — each request additionally holds its worker for a
//!   fixed stall modeling the NFS-write phase of a checkpoint service
//!   (the paper's transit model, §V). Holds overlap across shards, so
//!   this regime isolates what the sharded pool itself buys; 4 shards
//!   must sustain >=1.5x the req/s of 1 (asserted).
//!
//! Both regimes report sustained req/s, client-observed p50/p99 latency,
//! and the modeled energy the server priced each run at.

use lcpio_bench::banner;
use lcpio_serve::{drive, Endpoint, FaultPlan, ServeConfig, Server, WorkloadConfig};

fn run_regime(
    dir: &std::path::Path,
    label: &str,
    cfg_of: impl Fn(usize) -> ServeConfig,
    workload: &WorkloadConfig,
) -> f64 {
    println!("\n[{label}]");
    println!(
        "{:>7} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "shards", "req/s", "p50 ms", "p99 ms", "MB in+out", "energy J"
    );
    let mut rates = Vec::new();
    for workers in [1usize, 2, 4] {
        let sock = dir.join(format!("serve-{label}-{workers}.sock"));
        let server = Server::bind(&Endpoint::Unix(sock), cfg_of(workers)).expect("bind");
        // One warmup pass populates codec scratch before the timed run.
        drive(server.endpoint(), &WorkloadConfig { requests: 16, ..*workload }).expect("warmup");
        let report = drive(server.endpoint(), workload).expect("drive");
        server.shutdown();
        let stats = server.wait();
        assert_eq!(report.ok, workload.requests, "busy={} errors={}", report.busy, report.errors);
        assert_eq!(stats.errors, 0);
        println!(
            "{:>7} {:>10.1} {:>10.2} {:>10.2} {:>12.1} {:>12.4}",
            workers,
            report.req_per_s,
            report.p50_us as f64 / 1e3,
            report.p99_us as f64 / 1e3,
            (report.bytes_in + report.bytes_out) as f64 / 1e6,
            report.energy_uj as f64 / 1e6,
        );
        rates.push(report.req_per_s);
    }
    rates[rates.len() - 1] / rates[0]
}

fn main() {
    banner(
        "EXT — lcpio-serve worker-shard scaling (mixed workload, Unix socket)",
        "no paper counterpart; I/O-held service path must scale >=1.5x, 1 -> 4 shards",
    );

    let dir = std::env::temp_dir().join(format!("lcpio-ext-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // Regime 1: pure codec work. Shards can only scale this as far as
    // the host has cores.
    let compute = WorkloadConfig {
        requests: 96,
        clients: 8,
        chunk_elements: 64 * 1024,
        ..WorkloadConfig::default()
    };
    let compute_scaling = run_regime(
        &dir,
        "compute-bound",
        |workers| ServeConfig { workers, queue_depth: 32, ..ServeConfig::default() },
        &compute,
    );
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("1 -> 4 shard scaling: {compute_scaling:.2}x (host has {cores} core(s); not asserted)");

    // Regime 2: each request holds its worker 15 ms, modeling the NFS
    // write of the compressed checkpoint. Holds overlap across shards.
    let held = WorkloadConfig {
        requests: 64,
        clients: 8,
        chunk_elements: 8 * 1024,
        ..WorkloadConfig::default()
    };
    let held_scaling = run_regime(
        &dir,
        "io-held-15ms",
        |workers| ServeConfig {
            workers,
            queue_depth: 32,
            fault: FaultPlan { worker_delay_ms: 15 },
            ..ServeConfig::default()
        },
        &held,
    );
    let _ = std::fs::remove_dir_all(&dir);

    println!("\n1 -> 4 shard scaling under the I/O hold: {held_scaling:.2}x");
    assert!(
        held_scaling >= 1.5,
        "4 worker shards sustained only {held_scaling:.2}x the req/s of 1 (bar: 1.5x)"
    );
    println!("overlapped holds show the pool schedules shards concurrently; on");
    println!("multicore hosts the compute-bound regime scales the same way.");
}
