//! Table IV — model equations and goodness of fit for compression.
//!
//! Paper values for comparison:
//! ```text
//! Total      0.0086f^4.038  + 0.757    SSE 11.407  RMSE 0.0442  R2 0.5771
//! SZ         0.0107f^3.788  + 0.754    SSE  5.964  RMSE 0.0441  R2 0.5864
//! ZFP        0.0062f^4.414  + 0.7589   SSE  5.359  RMSE 0.0440  R2 0.5725
//! Broadwell  0.0064f^5.315  + 0.7429   SSE  2.463  RMSE 0.0279  R2 0.8731
//! Skylake    2.235e-9f^23.31+ 0.7941   SSE  1.372  RMSE 0.0226  R2 0.8185
//! ```

use lcpio_bench::{banner, paper_sweep};
use lcpio_core::models::{compression_model_table, hardware_dominates};
use lcpio_core::report::render_model_table;

fn main() {
    banner(
        "TABLE IV — model equations and GF for compression",
        "per-chip fits beat pooled fits; Skylake exponent >> Broadwell exponent",
    );
    let sweep = paper_sweep();
    let table = compression_model_table(&sweep.compression);
    println!("{}", render_model_table("measured:", &table));
    println!(
        "hardware dominates fit quality (paper's key finding): {}",
        hardware_dominates(&table)
    );
}
