//! Figure 2 — compression scaled runtime characteristics.
//!
//! Paper shape: runtime is minimal at f_max (scaled 1.0) and grows toward
//! low frequency; SZ and ZFP overlap; −12.5% frequency costs ≈ +7.5%.

use lcpio_bench::{banner, paper_sweep};
use lcpio_core::characteristics::compression_runtime_curves;
use lcpio_core::report::render_curves;

fn main() {
    banner(
        "FIGURE 2 — compression scaled runtime characteristics",
        "best runtime at max clock; SZ and ZFP overlap; +7.5% at -12.5% frequency",
    );
    let sweep = paper_sweep();
    let curves = compression_runtime_curves(&sweep.compression);
    println!("{}", render_curves("scaled runtime vs frequency (95% CI)", &curves));
    for c in &curves {
        let fmax = c.chip.spec().f_max_ghz;
        let at_tuned = c.value_at(0.875 * fmax);
        println!("{:<16} runtime at 0.875 f_max: {:.3} (paper: ~1.075)", c.label, at_tuned);
    }
}
