//! Extension: whole-job checkpoint/restart energy with dump-phase tuning
//! (the workflow behind the paper's related work, Morán et al.).

use lcpio_bench::banner;
use lcpio_core::checkpoint::{run_checkpoint_study, CheckpointConfig};

fn main() {
    banner(
        "EXTENSION — checkpoint/restart workflow with Eqn-3 dump tuning",
        "simulation keeps f_max; only compress+write phases are tuned",
    );
    let cfg = CheckpointConfig::paper_like();
    let r = run_checkpoint_study(&cfg).expect("paper-like checkpoint config compresses");
    println!(
        "job: {} checkpoints x {:.0} GB (SZ @ {:.0e}), ratio {:.2}x",
        cfg.checkpoints,
        cfg.checkpoint_bytes / 1e9,
        cfg.error_bound,
        r.ratio
    );
    println!(
        "base clock: sim {:.0} kJ + compress {:.0} kJ + write {:.0} kJ = {:.0} kJ over {:.0} s",
        r.base.simulation_j / 1e3,
        r.base.compression_j / 1e3,
        r.base.writing_j / 1e3,
        r.base.total_j() / 1e3,
        r.base.runtime_s
    );
    println!(
        "tuned dumps: total {:.0} kJ over {:.0} s",
        r.tuned.total_j() / 1e3,
        r.tuned.runtime_s
    );
    println!(
        "dump share of job energy: {:.1}%   whole-job savings: {:.2}%   runtime cost: {:.2}%",
        r.dump_share() * 100.0,
        r.savings() * 100.0,
        r.runtime_increase() * 100.0
    );
}
