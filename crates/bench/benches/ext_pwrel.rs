//! Extension: pointwise-relative error bounds (SZ "PW_REL" mode) on a
//! field spanning many decades — NYX baryon density.

use lcpio_bench::banner;
use lcpio_codec::{registry, BoundSpec};
use lcpio_datagen::nyx;

fn main() {
    banner(
        "EXTENSION — pointwise-relative bounds on log-normal density data",
        "Di & Cappello TPDS'19 (paper ref [4]): relative bounds for high dynamic range",
    );
    let field = nyx::baryon_density(48, 7);
    let dims: Vec<usize> = field.dims().extents().to_vec();
    let (lo, hi) = field.value_range();
    println!("field range: [{lo:.3e}, {hi:.3e}]  ({:.1} decades)\n", (hi / lo).log10());

    let codec = registry().by_name("sz").expect("sz is registered");
    println!("{:>10} {:>12} {:>16}", "rel bound", "pwrel ratio", "abs-mode ratio*");
    for r in [1e-1, 1e-2, 1e-3, 1e-4] {
        let pw = codec
            .compress(&field.data, &dims, BoundSpec::PointwiseRelative(r))
            .expect("compress");
        // The "equivalent" absolute bound needed to protect the smallest
        // value: r * lo — brutally tight for the large values.
        let abs_eb = (r * lo as f64).max(1e-12);
        let abs = codec
            .compress(&field.data, &dims, BoundSpec::Absolute(abs_eb))
            .expect("compress");
        let (rec, _) = registry().decompress_auto(&pw.bytes, 1).expect("decompress");
        let worst_rel = field
            .data
            .iter()
            .zip(&rec)
            .filter(|(a, _)| **a != 0.0)
            .map(|(a, b)| ((*b as f64 - *a as f64) / *a as f64).abs())
            .fold(0.0f64, f64::max);
        assert!(worst_rel <= r * 1.01 + 1e-6, "bound violated: {worst_rel} > {r}");
        println!("{:>10.0e} {:>11.2}x {:>15.2}x", r, pw.stats.ratio(), abs.stats.ratio());
    }
    println!("\n*abs-mode uses the absolute bound required to give the smallest value");
    println!(" the same relative protection — the pwrel transform wins by construction.");
}
