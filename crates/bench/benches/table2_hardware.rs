//! Table II — the hardware utilized, as simulated CPU specifications.

use lcpio_bench::banner;
use lcpio_powersim::Chip;

fn main() {
    banner(
        "TABLE II — hardware utilized",
        "m510 Xeon D-1548 0.8-2.0GHz Broadwell; c220g5 Xeon Silver 4114 0.8-2.2GHz Skylake",
    );
    println!(
        "{:<10} {:<18} {:<22} {:<10} {:>6} {:>8}",
        "CloudLab", "CPU", "CPU Min - Base Clock", "Series", "TDP", "steps"
    );
    for (node, chip) in [("m510", Chip::Broadwell), ("c220g5", Chip::Skylake)] {
        let s = chip.spec();
        println!(
            "{:<10} {:<18} {:<22} {:<10} {:>5}W {:>8}",
            node,
            s.model,
            format!("{:.1}GHz - {:.1}GHz", s.f_min_ghz, s.f_max_ghz),
            chip.name(),
            s.tdp_w,
            s.ladder_len()
        );
    }
    println!("\nvoltage-frequency curves (the architectural difference behind Table IV):");
    for chip in Chip::ALL {
        let s = chip.spec();
        print!("  {:<10}", chip.name());
        for f in s.ladder().step_by(4) {
            print!(" {:.2}GHz:{:.3}V", f, s.voltage(f));
        }
        println!();
    }
}
