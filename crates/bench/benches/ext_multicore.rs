//! Extension: node-level (multi-core) scaling of the paper's conclusion.
//!
//! At node scale the dump becomes bandwidth-bound, so DVFS tuning costs
//! even less runtime than the single-core +7.5% — the regime the paper's
//! exascale motivation points at.

use lcpio_bench::banner;
use lcpio_powersim::multicore::NodeSpec;
use lcpio_powersim::{simulate, Chip, Machine, WorkProfile};

fn main() {
    banner(
        "EXTENSION — node-level (multi-core) tuning",
        "single-core: 19% power / +7.5% runtime; saturated nodes do better",
    );
    let job = WorkProfile { compute_cycles: 240e9, memory_bytes: 1280e9, ..Default::default() };
    for chip in Chip::ALL {
        let m = Machine::for_chip(chip);
        let fmax = m.cpu.f_max_ghz;
        let tuned_f = m.cpu.snap(0.875 * fmax);
        println!("\n{} (f_max {fmax:.2} GHz, tuned {tuned_f:.2} GHz):", chip.name());
        println!(
            "{:>7} {:>12} {:>12} {:>14} {:>16}",
            "cores", "base s", "base kJ", "energy saved", "runtime cost"
        );
        // cores = 1 uses the plain single-core model for reference.
        let base1 = simulate(&m, fmax, &job);
        let tuned1 = simulate(&m, tuned_f, &job);
        println!(
            "{:>7} {:>12.1} {:>12.2} {:>13.1}% {:>15.1}%",
            1,
            base1.runtime_s,
            base1.energy_j / 1e3,
            (1.0 - tuned1.energy_j / base1.energy_j) * 100.0,
            (tuned1.runtime_s / base1.runtime_s - 1.0) * 100.0
        );
        for cores in [4u32, 8, 16] {
            let node = NodeSpec::for_machine(&m, cores);
            let base = node.simulate(&m, fmax, &job, cores);
            let tuned = node.simulate(&m, tuned_f, &job, cores);
            println!(
                "{:>7} {:>12.1} {:>12.2} {:>13.1}% {:>15.1}%",
                cores,
                base.runtime_s,
                base.energy_j / 1e3,
                (1.0 - tuned.energy_j / base.energy_j) * 100.0,
                (tuned.runtime_s / base.runtime_s - 1.0) * 100.0
            );
        }
    }
}
