//! Ablation: multi-start vs single-start Levenberg–Marquardt (DESIGN.md
//! §5, item 5) on the paper's hardest fit — the Skylake knee curve.

use lcpio_bench::banner;
use lcpio_fit::lm::{fit, LmOptions};
use lcpio_fit::powerlaw::{fit_power_law, PowerLawModel};

fn main() {
    banner(
        "ABLATION — LM restarts on the Skylake-shaped fit",
        "single starts stall in local minima; the multi-start grid recovers b >> 1",
    );
    // Paper's Skylake model as ground truth.
    let xs: Vec<f64> = (0..29).map(|i| 0.8 + 0.05 * i as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|&f| 2.235e-9 * f.powf(23.31) + 0.7941).collect();

    println!("{:<28} {:>8} {:>12}", "initialization", "b", "SSE");
    for b0 in [0.5, 2.0, 8.0, 24.0] {
        let r = fit(&PowerLawModel, &xs, &ys, &[0.01, b0, 0.7], &LmOptions::default())
            .expect("lm runs");
        println!("{:<28} {:>8.2} {:>12.3e}", format!("single start b0={b0}"), r.params[1], r.sse);
    }
    let multi = fit_power_law(&xs, &ys).expect("fit");
    println!("{:<28} {:>8.2} {:>12.3e}", "multi-start grid (default)", multi.b, multi.gof.sse);
}
