//! Figure 6 — energy dissipation for dumping 512 GB of NYX data with SZ,
//! base clock vs Eqn-3 frequency tuning.
//!
//! Paper: tuning always reduces energy; 6.5 kJ (13%) saved on average
//! across error bounds 1e-1 … 1e-4.

use lcpio_bench::banner;
use lcpio_core::datadump::{run_data_dump, DataDumpConfig};
use lcpio_core::report::render_dump;

fn main() {
    banner(
        "FIGURE 6 — energy dissipation for data dumping (512 GB NYX, SZ, 10 GbE NFS)",
        "tuned clock always saves energy; mean 6.5 kJ / 13% across error bounds",
    );
    let (rows, summary) =
        run_data_dump(&DataDumpConfig::paper()).expect("paper dump config compresses");
    println!("{}", render_dump("base clock vs Eqn-3 tuning:", &rows));
    println!(
        "mean savings: {:.1} kJ ({:.1}%)   [paper: 6.5 kJ, 13%]",
        summary.mean_saved_j / 1e3,
        summary.mean_savings * 100.0
    );
}
