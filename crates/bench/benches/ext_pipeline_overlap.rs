//! Overlapped compress→write pipeline vs the sequential dump path.
//!
//! Two claims, both pinned:
//!
//! 1. **Real execution** — `run_streaming` on a NYX field with a
//!    wire-throttled sink beats `run_sequential` wall-clock at queue
//!    depth ≥ 2 while emitting byte-identical containers.
//! 2. **Energy model** — the overlapped accounting's per-phase joules sum
//!    to the sequential path's totals (overlap shortens wall time; it
//!    must never double-count or drop energy).

use lcpio_bench::banner;
use lcpio_core::pipeline::{
    run_sequential, run_streaming, scaled_overlap, ChunkSink, PipelineConfig, VecSink,
};
use lcpio_core::{Compressor, CostModel};
use lcpio_codec::BoundSpec;
use lcpio_powersim::{simulate, Chip, Machine};
use std::time::{Duration, Instant};

const REPS: usize = 5;

/// A sink that emulates a slow NFS wire: each committed chunk costs a
/// fixed sleep on top of the in-memory append.
struct ThrottledSink {
    inner: VecSink,
    delay: Duration,
}

impl ChunkSink for ThrottledSink {
    fn write_header(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.inner.write_header(bytes)
    }

    fn write_chunk(&mut self, seq: usize, bytes: &[u8]) -> std::io::Result<()> {
        std::thread::sleep(self.delay);
        self.inner.write_chunk(seq, bytes)
    }
}

fn main() {
    banner(
        "EXTENSION — overlapped compress→write streaming pipeline",
        "compression of chunk k+1 overlaps the write of chunk k (cf. CEAZ / To-Compress-or-Not)",
    );
    let field = lcpio_datagen::nyx::velocity_x(96, 0x0A11);
    let cfg = PipelineConfig {
        compressor: Compressor::Sz,
        bound: BoundSpec::Absolute(1e-3),
        chunk_elements: 1 << 16,
        compress_threads: 1, // one compression stream vs one write stream
        retry_backoff_ms: 0,
        ..PipelineConfig::default()
    };

    // Calibrate the throttle: make each chunk's write cost ~60% of its
    // compression cost, the regime where overlap pays but compression
    // stays the bottleneck (a 10 GbE wire against one SZ core).
    let mut probe = VecSink::default();
    let seq_probe = run_sequential(&field.data, &cfg, &mut probe).expect("sequential probe");
    let delay =
        Duration::from_secs_f64(0.6 * seq_probe.compress_busy_s / seq_probe.chunks as f64);
    println!(
        "field: 96^3 NYX, {} chunks of {} elements, per-chunk wire delay {:.2} ms",
        seq_probe.chunks,
        cfg.chunk_elements,
        delay.as_secs_f64() * 1e3
    );

    let run_with = |depth: usize, streaming: bool| -> (Vec<u8>, f64) {
        let c = PipelineConfig { queue_depth: depth, ..cfg.clone() };
        let mut best = f64::MAX;
        let mut bytes = Vec::new();
        for _ in 0..REPS {
            let mut sink = ThrottledSink { inner: VecSink::default(), delay };
            let t0 = Instant::now();
            if streaming {
                run_streaming(&field.data, &c, &mut sink).expect("streaming");
            } else {
                run_sequential(&field.data, &c, &mut sink).expect("sequential");
            }
            best = best.min(t0.elapsed().as_secs_f64());
            bytes = sink.inner.bytes;
        }
        (bytes, best)
    };

    let (seq_bytes, seq_s) = run_with(1, false);
    println!("sequential:        {:>7.1} ms  (best of {REPS})", seq_s * 1e3);
    for depth in [1usize, 2, 4] {
        let (bytes, wall_s) = run_with(depth, true);
        assert_eq!(bytes, seq_bytes, "depth {depth}: stream must be byte-identical");
        println!(
            "pipeline depth {depth}:  {:>7.1} ms  ({:.2}x)",
            wall_s * 1e3,
            seq_s / wall_s
        );
        if depth >= 2 {
            assert!(
                wall_s < seq_s,
                "depth {depth}: overlapped pipeline ({wall_s:.3} s) must beat sequential ({seq_s:.3} s)"
            );
        }
    }

    // Energy model: per-phase joules under overlap equal the sequential
    // accounting (within the integral-chunk-count rounding).
    let machine = Machine::for_chip(Chip::Broadwell);
    let cost_model = CostModel::default();
    let total_bytes = 512e9;
    let stats = {
        let codec = Compressor::Sz.codec();
        let dims: Vec<usize> = field.dims().extents().to_vec();
        codec
            .compress_chunked(&field.data, &dims, BoundSpec::Absolute(1e-3), 0)
            .expect("characterize")
            .stats
    };
    let fmax = machine.cpu.f_max_ghz;
    let overlap = scaled_overlap(
        &machine, fmax, fmax, &cost_model, Compressor::Sz, &stats, total_bytes, 4,
    );
    let scale = total_bytes / stats.input_bytes as f64;
    let comp_profile = cost_model.compression_profile(Compressor::Sz, &stats, scale);
    let write_profile = machine.nfs.write_profile(total_bytes / stats.ratio());
    let c = simulate(&machine, fmax, &comp_profile);
    let w = simulate(&machine, fmax, &write_profile);
    let rel = |a: f64, b: f64| (a - b).abs() / b;
    assert!(rel(overlap.compression_j, c.energy_j) < 1e-4, "compression joules must match");
    assert!(rel(overlap.writing_j, w.energy_j) < 1e-4, "writing joules must match");
    assert!(rel(overlap.sequential_s, c.runtime_s + w.runtime_s) < 1e-4);
    assert!(overlap.pipelined_s < overlap.sequential_s, "depth 4 must overlap");
    println!(
        "\n512 GB dump model @ f_max: sequential {:.0} s, pipelined {:.0} s ({:.2}x), \
         energy {:.1} kJ in both accountings",
        overlap.sequential_s,
        overlap.pipelined_s,
        overlap.speedup(),
        overlap.total_j() / 1e3
    );

    println!("\nPASS — overlapped pipeline: byte-identical, faster at depth >= 2, energy-conserving");
}
