//! Extension: the read side of the workflow — fetch 512 GB of compressed
//! NYX data from NFS and decompress it, base clock vs Eqn-3 tuning.

use lcpio_bench::banner;
use lcpio_core::readback::{run_readback, ReadbackConfig};

fn main() {
    banner(
        "EXTENSION — read-back energy (fetch from NFS + decompress)",
        "mirrors the paper's write-side Figure 6 on the analysis side",
    );
    let r = run_readback(&ReadbackConfig::paper());
    println!("compression ratio of the stored file: {:.2}x", r.ratio);
    println!(
        "base clock: fetch {:.1} kJ / {:.0} s + decompress {:.1} kJ / {:.0} s = {:.1} kJ",
        r.base.writing_j / 1e3,
        r.base.writing_s,
        r.base.compression_j / 1e3,
        r.base.compression_s,
        r.base.total_j() / 1e3
    );
    println!(
        "tuned:      fetch {:.1} kJ / {:.0} s + decompress {:.1} kJ / {:.0} s = {:.1} kJ",
        r.tuned.writing_j / 1e3,
        r.tuned.writing_s,
        r.tuned.compression_j / 1e3,
        r.tuned.compression_s,
        r.tuned.total_j() / 1e3
    );
    println!("savings: {:.1}%", r.savings() * 100.0);
}
