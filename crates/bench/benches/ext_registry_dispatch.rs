//! Registry dispatch overhead: the unified codec abstraction routes every
//! compression through one `&dyn Codec` virtual call per field. This bench
//! pins that indirection at <1% against the direct backend call on the
//! 128³ acceptance field, and checks the two paths emit identical bytes.
//!
//! (This file is deliberately exempt from the no-direct-backend-calls rule
//! enforced by `tests/codec_dispatch.rs` — it *is* the baseline.)

use lcpio_bench::banner;
use lcpio_codec::{registry, BoundSpec};
use lcpio_sz::{compress_chunked, ErrorBound, SzConfig};
use std::time::{Duration, Instant};

const SIDE: usize = 128;
const THREADS: usize = 4;
const REPS: usize = 9;

fn smooth_field() -> Vec<f32> {
    let mut out = Vec::with_capacity(SIDE * SIDE * SIDE);
    for z in 0..SIDE {
        for y in 0..SIDE {
            for x in 0..SIDE {
                let (x, y, z) = (x as f32, y as f32, z as f32);
                out.push((x * 0.08).sin() * (y * 0.05).cos() + (z * 0.03).sin() * 2.0);
            }
        }
    }
    out
}

fn main() {
    banner(
        "EXTENSION — trait-object dispatch overhead of the codec registry",
        "registry compress_chunked vs direct sz::compress_chunked on a 128^3 field",
    );
    let data = smooth_field();
    let dims = vec![SIDE, SIDE, SIDE];
    let cfg = SzConfig::new(ErrorBound::Absolute(1e-3));
    let codec = registry().by_name("sz").expect("sz is registered");
    let bound = BoundSpec::Absolute(1e-3);

    // Same bytes on both paths — the registry is a router, not a format.
    let direct_out = compress_chunked(&data, &dims, &cfg, THREADS).expect("compress");
    let registry_out = codec.compress_chunked(&data, &dims, bound, THREADS).expect("compress");
    assert_eq!(direct_out.bytes, registry_out.bytes, "dispatch must not change the stream");

    // Interleave the two paths and keep the minimum wall time of each: the
    // minimum is robust to scheduler noise, which dwarfs one virtual call.
    let mut best_direct = Duration::MAX;
    let mut best_registry = Duration::MAX;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = compress_chunked(&data, &dims, &cfg, THREADS).expect("compress");
        best_direct = best_direct.min(t0.elapsed());
        std::hint::black_box(out.bytes.len());

        let t0 = Instant::now();
        let out = codec.compress_chunked(&data, &dims, bound, THREADS).expect("compress");
        best_registry = best_registry.min(t0.elapsed());
        std::hint::black_box(out.bytes.len());
    }

    let overhead =
        best_registry.as_secs_f64() / best_direct.as_secs_f64() - 1.0;
    println!(
        "direct:   {:>8.2} ms  (best of {REPS})",
        best_direct.as_secs_f64() * 1e3
    );
    println!(
        "registry: {:>8.2} ms  (best of {REPS})",
        best_registry.as_secs_f64() * 1e3
    );
    println!("overhead: {:+.3}%", overhead * 100.0);
    assert!(
        overhead < 0.01,
        "registry dispatch added {:.3}% (>1%) over the direct call",
        overhead * 100.0
    );
    println!("\nPASS — trait-object dispatch adds <1% on a 128^3 field");
}
