//! Overlapped read→decompress restart pipeline vs sequential restart.
//!
//! Two claims, both pinned:
//!
//! 1. **Real execution** — `run_restart` on a 256³ NYX checkpoint behind a
//!    wire-throttled source beats `run_restart_sequential` wall-clock by
//!    ≥ 1.4x at queue depth ≥ 2 while restoring element-identical output.
//! 2. **Energy model** — the overlapped restart accounting's per-phase
//!    joules (fetch + decompress) sum to the sequential path's totals
//!    (overlap shortens the makespan; it must never double-count or drop
//!    energy).

use lcpio_bench::banner;
use lcpio_core::pipeline::{
    decode_stream, run_restart, run_restart_sequential, run_sequential, scaled_restart,
    ChunkSource, PipelineConfig, RestartConfig, SliceSource, VecSink,
};
use lcpio_core::{Compressor, CostModel};
use lcpio_codec::BoundSpec;
use lcpio_powersim::{simulate, Chip, Machine};
use std::time::{Duration, Instant};

const REPS: usize = 3;

/// A source that emulates a slow NFS wire: payload-sized reads cost a
/// fixed sleep on top of the in-memory copy. Header and frame-header
/// probes (≤ 20 bytes) stay free so the layout scan isn't penalized.
struct ThrottledSource<'a> {
    inner: SliceSource<'a>,
    delay: Duration,
}

impl ChunkSource for ThrottledSource<'_> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
        if buf.len() > 64 {
            std::thread::sleep(self.delay);
        }
        self.inner.read_at(offset, buf)
    }
}

fn main() {
    banner(
        "EXTENSION — overlapped read->decompress restart pipeline",
        "fetch of chunk k+1 overlaps the decode of chunk k (restart mirror of the dump pipeline)",
    );
    let field = lcpio_datagen::nyx::velocity_x(256, 0x0A11);
    let cfg = PipelineConfig {
        compressor: Compressor::Sz,
        bound: BoundSpec::Absolute(1e-3),
        chunk_elements: 1 << 18,
        retry_backoff_ms: 0,
        ..PipelineConfig::default()
    };

    // Write the checkpoint once; every restart below reads this container.
    let mut sink = VecSink::default();
    let wrote = run_sequential(&field.data, &cfg, &mut sink).expect("checkpoint write");
    let stream = sink.bytes;
    let reference = decode_stream(&stream).expect("serial decode reference");

    // Calibrate the throttle: make each chunk's fetch cost ~60% of its
    // decode cost, the regime where overlap pays but decompression stays
    // the bottleneck (a 10 GbE wire against one SZ core).
    let probe_cfg = RestartConfig { retry_backoff_ms: 0, ..RestartConfig::default() };
    let (_, probe) = run_restart_sequential(&SliceSource::new(&stream), &probe_cfg)
        .expect("unthrottled probe");
    let delay = Duration::from_secs_f64(0.6 * probe.decode_busy_s / probe.chunks as f64);
    println!(
        "checkpoint: 256^3 NYX, {} chunks of {} elements, ratio {:.2}x, per-chunk wire delay {:.2} ms",
        wrote.chunks,
        cfg.chunk_elements,
        wrote.ratio(),
        delay.as_secs_f64() * 1e3
    );

    let source = ThrottledSource { inner: SliceSource::new(&stream), delay };
    let run_with = |depth: usize, overlapped: bool| -> f64 {
        let c = RestartConfig { queue_depth: depth, retry_backoff_ms: 0, ..Default::default() };
        let mut best = f64::MAX;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let (vals, out) = if overlapped {
                run_restart(&source, &c).expect("overlapped restart")
            } else {
                run_restart_sequential(&source, &c).expect("sequential restart")
            };
            best = best.min(t0.elapsed().as_secs_f64());
            assert_eq!(vals, reference, "depth {depth}: restart must be element-identical");
            assert_eq!(out.chunks, wrote.chunks);
        }
        best
    };

    let seq_s = run_with(1, false);
    println!("sequential:       {:>7.1} ms  (best of {REPS})", seq_s * 1e3);
    for depth in [1usize, 2, 4] {
        let wall_s = run_with(depth, true);
        println!(
            "restart depth {depth}:  {:>7.1} ms  ({:.2}x)",
            wall_s * 1e3,
            seq_s / wall_s
        );
        if depth >= 2 {
            assert!(
                seq_s / wall_s >= 1.4,
                "depth {depth}: overlapped restart ({wall_s:.3} s) must beat sequential \
                 ({seq_s:.3} s) by >= 1.4x"
            );
        }
    }

    // Energy model: per-phase joules under overlap equal the sequential
    // accounting. `total_bytes` is an exact multiple of the sample so the
    // integral chunk count introduces no rounding at all.
    let machine = Machine::for_chip(Chip::Broadwell);
    let cost_model = CostModel::default();
    let stats = {
        let codec = Compressor::Sz.codec();
        let dims: Vec<usize> = field.dims().extents().to_vec();
        codec
            .compress_chunked(&field.data, &dims, BoundSpec::Absolute(1e-3), 0)
            .expect("characterize")
            .stats
    };
    let total_bytes = stats.input_bytes as f64 * 8192.0;
    let fmax = machine.cpu.f_max_ghz;
    let restart = scaled_restart(
        &machine, fmax, fmax, &cost_model, Compressor::Sz, &stats, total_bytes, 4,
    );
    let scale = total_bytes / stats.input_bytes as f64;
    let decomp_profile = cost_model.decompression_profile(Compressor::Sz, &stats, scale);
    let fetch_profile = machine.nfs.write_profile(total_bytes / stats.ratio());
    let d = simulate(&machine, fmax, &decomp_profile);
    let f = simulate(&machine, fmax, &fetch_profile);
    let rel = |a: f64, b: f64| (a - b).abs() / b;
    assert!(rel(restart.compression_j, d.energy_j) < 1e-4, "decompress joules must match");
    assert!(rel(restart.writing_j, f.energy_j) < 1e-4, "fetch joules must match");
    assert!(rel(restart.sequential_s, d.runtime_s + f.runtime_s) < 1e-4);
    assert!(restart.pipelined_s < restart.sequential_s, "depth 4 must overlap");
    println!(
        "\n{:.0} GB restart model @ f_max: sequential {:.0} s, pipelined {:.0} s ({:.2}x), \
         energy {:.1} kJ in both accountings",
        total_bytes / 1e9,
        restart.sequential_s,
        restart.pipelined_s,
        restart.speedup(),
        restart.total_j() / 1e3
    );

    println!(
        "\nPASS — overlapped restart: element-identical, >= 1.4x at depth >= 2, energy-conserving"
    );
}
