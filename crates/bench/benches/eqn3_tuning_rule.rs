//! Eqn 3 and the §V-A3 savings numbers.
//!
//! Paper: f_IO = 0.875 f_max (compression) / 0.85 f_max (writing), giving
//! 19.4% / 11.2% power savings, +7.5% / +9.3% runtime, 14.3% combined
//! savings at +8.4% combined runtime.

use lcpio_bench::{banner, paper_sweep};
use lcpio_core::characteristics::{
    compression_power_curves, compression_runtime_curves, transit_power_curves,
    transit_runtime_curves,
};
use lcpio_core::report::render_tuning;
use lcpio_core::tuning::{derive_rule, evaluate_rule, TuningRule};

fn main() {
    banner(
        "EQN 3 — frequency tuning rule evaluation",
        "19.4%/11.2% power savings, +7.5%/+9.3% runtime, 14.3% combined",
    );
    let sweep = paper_sweep();
    let cp = compression_power_curves(&sweep.compression);
    let cr = compression_runtime_curves(&sweep.compression);
    let wp = transit_power_curves(&sweep.transit);
    let wr = transit_runtime_curves(&sweep.transit);

    let report = evaluate_rule(TuningRule::PAPER, &cp, &cr, &wp, &wr);
    println!("{}", render_tuning(&report));

    let derived = derive_rule(&cp, &cr, &wp, &wr);
    println!(
        "energy-optimal fractions derived from the measured curves (<=10% runtime):\n  compression {:.3}, writing {:.3}   (paper Eqn 3: 0.875 / 0.850)",
        derived.compression_fraction, derived.writing_fraction
    );
}
