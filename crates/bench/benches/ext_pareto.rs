//! Extension: the full energy–runtime trade-off space behind Eqn 3 —
//! Pareto front, energy-optimal and EDP-optimal operating points per chip.

use lcpio_bench::banner;
use lcpio_core::pareto::{edp_optimal, energy_optimal, frequency_profile, pareto_front};
use lcpio_powersim::{Chip, Machine, WorkProfile};

fn main() {
    banner(
        "EXTENSION — energy/runtime Pareto analysis of the compression job",
        "the paper reports one point (Eqn 3); this prints the whole frontier",
    );
    let job = WorkProfile { compute_cycles: 30e9, memory_bytes: 160e9, ..Default::default() };
    for chip in [Chip::Broadwell, Chip::Skylake, Chip::EpycLike] {
        let m = Machine::for_chip(chip);
        let pts = frequency_profile(&m, &job);
        let front = pareto_front(&pts);
        let e_opt = energy_optimal(&pts).expect("ladder nonempty");
        let edp_opt = edp_optimal(&pts).expect("ladder nonempty");
        println!("\n{} (f_max {:.2} GHz):", chip.name(), m.cpu.f_max_ghz);
        println!("  pareto front ({} of {} ladder points):", front.len(), pts.len());
        for p in &front {
            println!(
                "    {:>5.2} GHz  {:>7.2} s  {:>8.1} J  (EDP {:>9.0})",
                p.f_ghz, p.runtime_s, p.energy_j, p.edp()
            );
        }
        println!(
            "  energy-optimal: {:.2} GHz ({:.3}·f_max)   EDP-optimal: {:.2} GHz ({:.3}·f_max)",
            e_opt.f_ghz,
            e_opt.f_ghz / m.cpu.f_max_ghz,
            edp_opt.f_ghz,
            edp_opt.f_ghz / m.cpu.f_max_ghz
        );
    }
    println!("\n(paper Eqn 3 uses 0.875·f_max for compression — compare the ratios above)");
}
