//! Figure 3 — data transit scaled power characteristics.
//!
//! Paper shape: same critical power slope as Figure 1 but with a higher
//! floor (~0.9 vs ~0.8): writing keeps the I/O path busy, diluting the
//! frequency-sensitive compute share. No data-size dependence remains
//! after scaling.

use lcpio_bench::{banner, paper_sweep};
use lcpio_core::characteristics::{compression_power_curves, transit_power_curves};
use lcpio_core::report::render_curves;

fn main() {
    banner(
        "FIGURE 3 — data transit scaled power characteristics",
        "floor ~0.9 (vs compression's ~0.8); Skylake range narrower",
    );
    let sweep = paper_sweep();
    let curves = transit_power_curves(&sweep.transit);
    println!("{}", render_curves("scaled power vs frequency (95% CI)", &curves));
    let comp = compression_power_curves(&sweep.compression);
    let mean_floor = |cs: &[lcpio_core::characteristics::CurveSeries]| {
        cs.iter().map(|c| c.floor()).sum::<f64>() / cs.len() as f64
    };
    println!(
        "mean floor: transit {:.3} vs compression {:.3} (paper: ~0.9 vs ~0.8)",
        mean_floor(&curves),
        mean_floor(&comp)
    );
}
