//! Ablation: the voltage-curve form drives the fitted exponent b.
//! (DESIGN.md §5, item 1.)
//!
//! Replaces each chip's V(f) curve with a linear ramp (no knee) and refits
//! Table IV. The knee is what produces the paper's extreme Skylake
//! exponent; without it both chips regress to small b.

use lcpio_bench::banner;
use lcpio_fit::powerlaw::fit_power_law;
use lcpio_powersim::{simulate, Chip, CpuSpec, Machine, VfCurve, WorkProfile};

fn table_row(name: &str, spec: CpuSpec) {
    let machine = Machine::new(spec);
    let job = WorkProfile { compute_cycles: 30e9, memory_bytes: 160e9, ..Default::default() };
    let xs: Vec<f64> = spec.ladder().collect();
    let pmax = simulate(&machine, spec.f_max_ghz, &job).avg_power_w;
    let ys: Vec<f64> = xs.iter().map(|&f| simulate(&machine, f, &job).avg_power_w / pmax).collect();
    let fit = fit_power_law(&xs, &ys).expect("fit");
    println!(
        "{:<22} b = {:>6.2}   (SSE {:.2e}, RMSE {:.4})",
        name, fit.b, fit.gof.sse, fit.gof.rmse
    );
}

fn main() {
    banner(
        "ABLATION — voltage-curve form vs fitted exponent b",
        "knee-shaped V(f) is what regresses to the paper's b~5.3 / b~23.3 split",
    );
    for chip in Chip::ALL {
        let spec = chip.spec();
        table_row(&format!("{} (calibrated)", chip.name()), spec);

        let mut linear = spec;
        // Same endpoint voltages, no knee.
        let v_hi = spec.voltage(spec.f_max_ghz);
        linear.vf = VfCurve {
            v_base: spec.vf.v_base,
            slope: (v_hi - spec.vf.v_base) / (spec.f_max_ghz - spec.f_min_ghz),
            knee_ghz: spec.f_max_ghz + 1.0,
            knee_slope: 0.0,
        };
        table_row(&format!("{} (linear V, no knee)", chip.name()), linear);
    }
}
