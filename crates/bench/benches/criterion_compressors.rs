//! Criterion micro-benchmarks of every registered codec: compression and
//! decompression throughput on a NYX-like field at two error bounds.
//!
//! The benchmark iterates [`registry()`], so a newly registered backend
//! shows up here with no edits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lcpio_codec::{registry, BoundSpec};
use lcpio_datagen::nyx;

fn bench_compressors(c: &mut Criterion) {
    let field = nyx::velocity_x(48, 11);
    let dims: Vec<usize> = field.dims().extents().to_vec();
    let bytes = field.data.len() as u64 * 4;

    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes(bytes));
    for eb in [1e-2f64, 1e-4] {
        for codec in registry().codecs() {
            group.bench_with_input(
                BenchmarkId::new(codec.name(), format!("{eb:e}")),
                &eb,
                |b, &eb| {
                    b.iter(|| {
                        codec.compress(&field.data, &dims, BoundSpec::Absolute(eb)).unwrap()
                    });
                },
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Bytes(bytes));
    for eb in [1e-2f64, 1e-4] {
        for codec in registry().codecs() {
            let stream = codec
                .compress(&field.data, &dims, BoundSpec::Absolute(eb))
                .unwrap();
            group.bench_with_input(
                BenchmarkId::new(codec.name(), format!("{eb:e}")),
                &stream.bytes,
                |b, bytes| b.iter(|| registry().decompress_auto(bytes, 1).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compressors
}
criterion_main!(benches);
