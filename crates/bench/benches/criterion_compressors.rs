//! Criterion micro-benchmarks of both codecs: compression and
//! decompression throughput on a NYX-like field at two error bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lcpio_datagen::nyx;
use lcpio_sz::{self as sz, ErrorBound, SzConfig};
use lcpio_zfp::{self as zfp, ZfpMode};

fn bench_compressors(c: &mut Criterion) {
    let field = nyx::velocity_x(48, 11);
    let dims: Vec<usize> = field.dims().extents().to_vec();
    let bytes = field.data.len() as u64 * 4;

    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes(bytes));
    for eb in [1e-2f64, 1e-4] {
        group.bench_with_input(BenchmarkId::new("sz", format!("{eb:e}")), &eb, |b, &eb| {
            let cfg = SzConfig::new(ErrorBound::Absolute(eb));
            b.iter(|| sz::compress(&field.data, &dims, &cfg).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("zfp", format!("{eb:e}")), &eb, |b, &eb| {
            let mode = ZfpMode::FixedAccuracy(eb);
            b.iter(|| zfp::compress(&field.data, &dims, &mode).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Bytes(bytes));
    for eb in [1e-2f64, 1e-4] {
        let sz_stream = sz::compress(
            &field.data,
            &dims,
            &SzConfig::new(ErrorBound::Absolute(eb)),
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("sz", format!("{eb:e}")),
            &sz_stream.bytes,
            |b, bytes| b.iter(|| sz::decompress(bytes).unwrap()),
        );
        let zfp_stream =
            zfp::compress(&field.data, &dims, &ZfpMode::FixedAccuracy(eb)).unwrap();
        group.bench_with_input(
            BenchmarkId::new("zfp", format!("{eb:e}")),
            &zfp_stream.bytes,
            |b, bytes| b.iter(|| zfp::decompress(bytes).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compressors
}
criterion_main!(benches);
