//! Ablation: ZFP rate-control policy (DESIGN.md §5, item 4).
//!
//! Fixed-accuracy (the paper's mode) vs fixed-precision vs fixed-rate on
//! the same field: achieved error and size.

use lcpio_bench::banner;
use lcpio_datagen::nyx;
use lcpio_zfp::{compress, decompress, ZfpMode};

fn max_err(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (*x as f64 - *y as f64).abs()).fold(0.0, f64::max)
}

fn main() {
    banner(
        "ABLATION — ZFP rate control: fixed-accuracy vs fixed-precision vs fixed-rate",
        "fixed-accuracy guarantees the bound; the others trade error for size control",
    );
    let field = nyx::velocity_x(48, 9);
    let dims: Vec<usize> = field.dims().extents().to_vec();
    let modes: Vec<(String, ZfpMode)> = vec![
        ("accuracy 1e-1".into(), ZfpMode::FixedAccuracy(1e-1)),
        ("accuracy 1e-3".into(), ZfpMode::FixedAccuracy(1e-3)),
        ("precision 16".into(), ZfpMode::FixedPrecision(16)),
        ("precision 28".into(), ZfpMode::FixedPrecision(28)),
        ("rate 4 bpv".into(), ZfpMode::FixedRate(4.0)),
        ("rate 12 bpv".into(), ZfpMode::FixedRate(12.0)),
    ];
    println!("{:<16} {:>8} {:>10} {:>14}", "mode", "ratio", "bpv", "max error");
    for (name, mode) in modes {
        let out = compress(&field.data, &dims, &mode).expect("compress");
        let (rec, _) = decompress(&out.bytes).expect("decompress");
        println!(
            "{:<16} {:>7.2}x {:>10.2} {:>14.3e}",
            name,
            out.stats.ratio(),
            out.stats.bits_per_element(),
            max_err(&field.data, &rec)
        );
    }
}
