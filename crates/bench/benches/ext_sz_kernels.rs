//! SZ SIMD-kernel benchmarks: serial compress throughput on 256³ f32
//! fields with the wavefront predict/quantize kernel forced off (scalar
//! reference) and on (AVX2 dispatch), plus an isolated comparison of the
//! per-symbol Huffman emitter against the batched pair-packing one.
//!
//! Two field characters bracket the paper's datasets: a smooth
//! CESM-like climate slab (quantization codes hug the zero bin) and a
//! noisy HACC-like particle field with escape-heavy outliers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lcpio_sz::bitio::BitWriter;
use lcpio_sz::huffman::HuffmanEncoder;
use lcpio_sz::{compress_typed_with, kernels, ErrorBound, PredictorMode, SzConfig, SzScratch};

const SIDE: usize = 256;

/// Smooth climate-like slab: long-wavelength structure plus a mild
/// latitudinal trend, strongly compressible.
fn cesm_like() -> Vec<f32> {
    let mut out = Vec::with_capacity(SIDE * SIDE * SIDE);
    for z in 0..SIDE {
        for y in 0..SIDE {
            for x in 0..SIDE {
                let (xf, yf, zf) = (x as f32, y as f32, z as f32);
                out.push(
                    (xf * 0.045).sin() * (yf * 0.03).cos() * 12.0
                        + (zf * 0.02).sin() * 5.0
                        + yf * 0.01,
                );
            }
        }
    }
    out
}

/// Noisy particle-like field: smooth large-scale structure carrying
/// broadband jitter a few tens of quantization bins wide (so codes spread
/// across the alphabet instead of hugging the zero bin), plus occasional
/// large outliers that escape the quantizer to the literal stream.
fn hacc_like() -> Vec<f32> {
    let mut s = 0x9e37_79b9_7f4a_7c15u64;
    (0..SIDE * SIDE * SIDE)
        .map(|i| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if i % 5003 == 0 {
                ((s >> 40) as f32 - 8.0e3) * 1.0e4
            } else {
                let jitter = ((s >> 40) as f32 * 5.96e-8 - 0.5) * 0.08;
                (i as f32 * 0.37).sin() * 3.0 + jitter
            }
        })
        .collect()
}

fn bench_compress(c: &mut Criterion) {
    let dims = vec![SIDE, SIDE, SIDE];
    let bytes = (SIDE * SIDE * SIDE * 4) as u64;
    for (field_name, data) in [("cesm_like", cesm_like()), ("hacc_like", hacc_like())] {
        let mut group = c.benchmark_group(format!("sz_kernels/compress/{field_name}"));
        group.throughput(Throughput::Bytes(bytes));
        for (path, scalar) in [("scalar", true), ("simd", false)] {
            for (tail, lossless) in [("", false), ("+lzss", true)] {
                let cfg = SzConfig::new(ErrorBound::Absolute(1e-3))
                    .with_mode(PredictorMode::Lorenzo)
                    .with_lossless(lossless);
                let mut scratch = SzScratch::new();
                group.bench_with_input(
                    BenchmarkId::new(&format!("{path}{tail}"), "256^3"),
                    &cfg,
                    |b, cfg| {
                        kernels::force_scalar(scalar);
                        b.iter(|| compress_typed_with(&data, &dims, cfg, &mut scratch).unwrap());
                        kernels::reset_force_scalar();
                    },
                );
            }
        }
        group.finish();
    }
}

fn bench_huffman(c: &mut Criterion) {
    // Symbol stream shaped like real quantizer output: codes cluster in a
    // narrow band around the zero symbol with a thin escape tail.
    const N: usize = 1 << 22;
    let radius = 32768u32;
    let mut s = 0x5eed_cafe_f00du64 | 1;
    let syms: Vec<u32> = (0..N)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            match s % 100 {
                0 => 0,                                  // escape literal
                1..=4 => radius + (s >> 32) as u32 % 200, // moderate residual
                _ => radius + (s >> 32) as u32 % 7,       // zero-bin cluster
            }
        })
        .collect();
    let mut freqs = vec![0u64; 2 * radius as usize + 1];
    for &sym in &syms {
        freqs[sym as usize] += 1;
    }
    let enc = HuffmanEncoder::from_freqs(&freqs).expect("huffman table");

    let mut group = c.benchmark_group("sz_kernels/huffman");
    group.throughput(Throughput::Bytes((N * 4) as u64));
    group.bench_with_input(BenchmarkId::new("per_symbol", "4Mi"), &syms, |b, syms| {
        b.iter(|| {
            let mut w = BitWriter::with_capacity(N / 2);
            for &sym in syms {
                enc.encode(sym, &mut w).unwrap();
            }
            w.into_bytes()
        });
    });
    group.bench_with_input(BenchmarkId::new("batched", "4Mi"), &syms, |b, syms| {
        b.iter(|| {
            let mut w = BitWriter::with_capacity(N / 2);
            enc.encode_slice(syms, &mut w).unwrap();
            w.into_bytes()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compress, bench_huffman
}
criterion_main!(benches);
