//! Per-chunk adaptive codec + DVFS policy versus every fixed arm.
//!
//! Three claims, all pinned:
//!
//! 1. **Dominance** — on the interleaved CESM+HACC workload (alternating
//!    smooth climate chunks and amplified particle chunks under one
//!    absolute bound), the adaptive policy dominates *every* fixed
//!    codec×frequency arm on the energy-vs-ratio front: no worse on both
//!    axes, strictly better on at least one — on both modelled chips, at
//!    the same chunk scale the sweep's policy axis runs.
//! 2. **Genuine mixing** — the adaptive plans route chunks to both SZ and
//!    ZFP; the win is per-chunk routing, not a single better fixed choice.
//! 3. **Cheap planning** — at the production chunk size (1 Mi elements),
//!    the adaptive pre-pass (sampled-window pricing of every
//!    codec×frequency arm, per chunk) costs < 2% of the pipeline's
//!    compress wall time.

use lcpio_bench::banner;
use lcpio_core::pipeline::{run_sequential, PipelineConfig, VecSink};
use lcpio_core::policy::{interleaved_cesm_hacc, run_policy_study, PolicyRecord, PolicyStudy};
use lcpio_core::PolicyKind;
use lcpio_powersim::Chip;

/// Chunk scale of the dominance study — the same the sweep's policy axis
/// and the core acceptance test use (`POLICY_SWEEP_CHUNK_ELEMENTS`).
const STUDY_CHUNK_ELEMENTS: usize = 8192;
const STUDY_CHUNKS: usize = 8;
/// Production-scale chunks for the plan-overhead claim (the pipeline's
/// default `--chunk-elems`, quadrupled: sampling cost is constant per
/// chunk, so overhead shrinks as chunks grow).
const PIPELINE_CHUNK_ELEMENTS: usize = 1 << 20;
const PIPELINE_CHUNKS: usize = 4;
const SEED: u64 = 20220530;

fn show(r: &PolicyRecord) {
    println!(
        "  {:<22} {:>10.4} J  {:>6.2}x  {:>8.2} ms compress  {:>7.3} ms plan  (sz {} / zfp {} / raw {})",
        r.label,
        r.energy_j,
        r.ratio(),
        r.compress_s * 1e3,
        r.plan_s * 1e3,
        r.sz_chunks,
        r.zfp_chunks,
        r.raw_chunks
    );
}

fn main() {
    banner(
        "EXTENSION — per-chunk adaptive codec + DVFS policy",
        "adaptive routing dominates every fixed codec x frequency arm on energy vs ratio",
    );
    let data = interleaved_cesm_hacc(STUDY_CHUNK_ELEMENTS, STUDY_CHUNKS, SEED);
    println!(
        "workload: {} chunks x {} elements (CESM-smooth / amplified-HACC interleave)\n",
        STUDY_CHUNKS, STUDY_CHUNK_ELEMENTS
    );

    for chip in [Chip::Broadwell, Chip::Skylake] {
        let study =
            PolicyStudy { chip, chunk_elements: STUDY_CHUNK_ELEMENTS, ..PolicyStudy::default() };
        let result = run_policy_study(&data, &study);

        // The fixed frontier: the energy-best and ratio-best arms bracket
        // everything a single (codec, frequency) choice can do.
        let energy_best = result
            .fixed
            .iter()
            .min_by(|a, b| a.energy_j.total_cmp(&b.energy_j))
            .expect("fixed arms");
        let ratio_best = result
            .fixed
            .iter()
            .max_by(|a, b| a.ratio().total_cmp(&b.ratio()))
            .expect("fixed arms");
        println!("{} ({} fixed arms):", chip.name(), result.fixed.len());
        show(energy_best);
        if ratio_best.label != energy_best.label {
            show(ratio_best);
        }
        show(&result.heuristic);
        show(&result.adaptive);

        // Claim 1: nothing on the fixed grid survives.
        let undominated = result.undominated_fixed();
        assert!(
            undominated.is_empty(),
            "{}: adaptive fails to dominate {} fixed arms, e.g. {}",
            chip.name(),
            undominated.len(),
            undominated[0].label
        );

        // Claim 2: the adaptive plans genuinely mix codecs.
        assert!(
            result.adaptive.sz_chunks > 0 && result.adaptive.zfp_chunks > 0,
            "{}: adaptive routed sz {} / zfp {} — expected both",
            chip.name(),
            result.adaptive.sz_chunks,
            result.adaptive.zfp_chunks
        );
        println!();
    }

    // Claim 3: plan overhead at production chunk size, through the real
    // pipeline (the pre-pass prices every arm from a 1024-element sample,
    // so its cost is constant per chunk while compression grows with the
    // chunk).
    let big = interleaved_cesm_hacc(PIPELINE_CHUNK_ELEMENTS, PIPELINE_CHUNKS, SEED);
    let cfg = PipelineConfig {
        chunk_elements: PIPELINE_CHUNK_ELEMENTS,
        wire_format: true,
        policy: PolicyKind::Adaptive,
        ..PipelineConfig::default()
    };
    let mut sink = VecSink::default();
    let outcome = run_sequential(&big, &cfg, &mut sink).expect("adaptive pipeline");
    let overhead = outcome.plan_s / (outcome.wall_s - outcome.plan_s).max(1e-12);
    println!(
        "pipeline at {} x {} elements: {:.2}x ratio, plan {:.2} ms vs compress+write {:.1} ms \
         ({:.3}% overhead)",
        PIPELINE_CHUNKS,
        PIPELINE_CHUNK_ELEMENTS,
        outcome.ratio(),
        outcome.plan_s * 1e3,
        (outcome.wall_s - outcome.plan_s) * 1e3,
        overhead * 100.0
    );
    assert!(
        overhead < 0.02,
        "plan overhead {:.2}% must stay < 2% of compress time",
        overhead * 100.0
    );

    println!(
        "\nPASS — adaptive per-chunk routing dominates every fixed codec x frequency arm \
         on both chips, with < 2% planning overhead at production chunk size"
    );
}
