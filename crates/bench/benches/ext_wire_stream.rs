//! LCW1 wire envelope + incremental streamed restart.
//!
//! Three claims, all pinned:
//!
//! 1. **Format equivalence** — a 256³ NYX checkpoint written as an `LCW1`
//!    wire container decodes element-identically to the legacy `LCS1`
//!    container of the same data, through both the random-access restart
//!    and the push-based streamed restart.
//! 2. **Bounded buffering** — the streamed restart's peak buffering stays
//!    within one frame plus one read-buffer fill plus the header budget;
//!    it never holds a significant fraction of the container in memory.
//! 3. **No toll** — the wire framing costs < 1% container-size overhead
//!    versus the legacy header.

use lcpio_bench::banner;
use lcpio_core::pipeline::{
    decode_stream, run_restart, run_restart_streamed, run_sequential, scan_stream,
    PipelineConfig, RestartConfig, SliceSource, VecSink,
};
use lcpio_core::Compressor;
use lcpio_codec::BoundSpec;
use std::time::Instant;

const REPS: usize = 3;

fn container_of(data: &[f32], wire: bool) -> Vec<u8> {
    let cfg = PipelineConfig {
        compressor: Compressor::Sz,
        bound: BoundSpec::Absolute(1e-3),
        chunk_elements: 1 << 18,
        retry_backoff_ms: 0,
        wire_format: wire,
        ..PipelineConfig::default()
    };
    let mut sink = VecSink::default();
    run_sequential(data, &cfg, &mut sink).expect("checkpoint write");
    sink.bytes
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn main() {
    banner(
        "EXTENSION — LCW1 wire envelope + incremental streamed restart",
        "one validated frame index, decode of chunk k overlaps arrival of chunk k+1",
    );
    let field = lcpio_datagen::nyx::velocity_x(256, 0x0B22);
    let legacy = container_of(&field.data, false);
    let wire = container_of(&field.data, true);
    assert_eq!(&legacy[..4], b"LCS1");
    assert_eq!(&wire[..4], b"LCW1");

    // Claim 3: wire framing overhead versus the legacy container.
    let overhead = wire.len() as f64 / legacy.len() as f64 - 1.0;
    println!(
        "containers: legacy {} B, wire {} B ({:+.3}% framing overhead)",
        legacy.len(),
        wire.len(),
        overhead * 100.0
    );
    assert!(overhead.abs() < 0.01, "wire framing overhead {overhead:.4} must stay < 1%");

    // Claim 1: every decode surface agrees, bit for bit.
    let reference = decode_stream(&legacy).expect("legacy decode");
    let wire_serial = decode_stream(&wire).expect("wire decode");
    assert_eq!(bits(&reference), bits(&wire_serial), "serial decode must be format-blind");
    let cfg = RestartConfig { queue_depth: 4, retry_backoff_ms: 0, ..RestartConfig::default() };
    let (wire_restart, _) = run_restart(&SliceSource::new(&wire), &cfg).expect("wire restart");
    assert_eq!(bits(&reference), bits(&wire_restart), "positioned restart must be format-blind");

    // Claim 2: streamed restart — element-identical with bounded peak
    // buffering on both formats.
    for (label, stream) in [("legacy LCS1", &legacy), ("wire LCW1", &wire)] {
        let layout = scan_stream(&SliceSource::new(stream)).expect("scan");
        let max_frame = layout.max_frame_len();
        let bound = max_frame + (1 << 16) + lcpio_wire::MAX_HEADER_LEN;
        let mut best = f64::MAX;
        let mut peak = 0usize;
        for _ in 0..REPS {
            let mut rd: &[u8] = stream;
            let t0 = Instant::now();
            let (vals, out) = run_restart_streamed(&mut rd, &cfg).expect("streamed restart");
            best = best.min(t0.elapsed().as_secs_f64());
            peak = out.peak_buffered_bytes;
            assert_eq!(bits(&vals), bits(&reference), "{label}: streamed restart must match");
        }
        println!(
            "streamed {label:<12} {:>7.1} ms  peak buffer {:>8} B (frame max {} B, {:.1}% of container)",
            best * 1e3,
            peak,
            max_frame,
            peak as f64 / stream.len() as f64 * 100.0
        );
        assert!(
            peak <= bound,
            "{label}: peak buffering {peak} B must stay within one frame + read buffer ({bound} B)"
        );
        assert!(
            peak < stream.len() / 4,
            "{label}: peak buffering {peak} B must not approach the container size {}",
            stream.len()
        );
    }

    println!(
        "\nPASS — wire and legacy containers decode identically; streamed restart is \
         element-identical with one-frame-bounded buffering"
    );
}
