//! Table V — model equations and goodness of fit for data transit.
//!
//! Paper values for comparison:
//! ```text
//! Total      0.0133f^3.379 + 0.7985   SSE 0.8446   RMSE 0.05631  R2 0.4361
//! Broadwell  0.0261f^3.395 + 0.7097   SSE 0.03423  RMSE 0.01675  R2 0.9578
//! Skylake    9.095e-9f^20.9 + 0.888   SSE 0.07875  RMSE 0.02355  R2 0.5992
//! ```

use lcpio_bench::{banner, paper_sweep};
use lcpio_core::models::{hardware_dominates, transit_model_table};
use lcpio_core::report::render_model_table;

fn main() {
    banner(
        "TABLE V — models and GF, data transit",
        "per-chip transit fits beat the pooled fit (SSE/RMSE minimized per CPU)",
    );
    let sweep = paper_sweep();
    let table = transit_model_table(&sweep.transit);
    println!("{}", render_model_table("measured:", &table));
    println!(
        "hardware dominates fit quality (paper's key finding): {}",
        hardware_dominates(&table)
    );
}
