//! LEB128 variable-length integers, the only number encoding in LCW1.
//!
//! Canonical form is enforced on read (no padded continuation groups), so
//! every value has exactly one wire representation — a byte-for-byte
//! round-trip guarantee the compat shim relies on.

use crate::WireError;

/// Maximum encoded length of a `u64` (10 × 7 bits ≥ 64 bits).
pub const MAX_LEN: usize = 10;

/// Result of an incremental parse step: a value plus the bytes it
/// consumed, or a request for more input. Distinct from an error — more
/// bytes could still make the input valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partial<T> {
    /// Parsed `T`, consuming the given number of bytes.
    Ready(T, usize),
    /// The input ends mid-value; feed more bytes and retry.
    NeedMore,
}

/// Append `v` in canonical LEB128.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded length of `v` in bytes.
pub fn encoded_len(v: u64) -> usize {
    let bits = 64 - v.leading_zeros() as usize;
    bits.div_ceil(7).max(1)
}

/// Incremental read from the front of `buf`. Returns `NeedMore` when the
/// buffer ends mid-value; rejects over-long and non-canonical encodings.
pub fn read_partial(buf: &[u8]) -> Result<Partial<u64>, WireError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().take(MAX_LEN).enumerate() {
        if i == MAX_LEN - 1 && (b & 0x7f) > 1 {
            return Err(WireError::Overflow { what: "varint" });
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            if i > 0 && b == 0 {
                return Err(WireError::Malformed { what: "non-canonical varint" });
            }
            return Ok(Partial::Ready(v, i + 1));
        }
        if i == MAX_LEN - 1 {
            return Err(WireError::Malformed { what: "varint too long" });
        }
        shift += 7;
    }
    Ok(Partial::NeedMore)
}

/// Read a varint at `buf[*pos..]`, advancing `pos`. A buffer that ends
/// mid-value is a hard [`WireError::Truncated`] (whole-buffer parsing has
/// no more bytes coming).
pub fn read(buf: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let rest = buf.get(*pos..).ok_or(WireError::Truncated { section: "varint" })?;
    match read_partial(rest)? {
        Partial::Ready(v, n) => {
            *pos += n;
            Ok(v)
        }
        Partial::NeedMore => Err(WireError::Truncated { section: "varint" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), encoded_len(v), "encoded_len mismatch for {v}");
            let mut pos = 0;
            assert_eq!(read(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn incremental_read_needs_more_then_completes() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 300); // two bytes
        assert_eq!(read_partial(&buf[..1]).unwrap(), Partial::NeedMore);
        assert_eq!(read_partial(&buf).unwrap(), Partial::Ready(300, 2));
    }

    #[test]
    fn truncated_is_an_error_for_whole_buffer_read() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(
            read(&buf[..5], &mut pos).unwrap_err(),
            WireError::Truncated { section: "varint" }
        );
    }

    #[test]
    fn overlong_and_noncanonical_rejected() {
        // 11 continuation bytes: too long.
        let buf = [0x80u8; 11];
        assert_eq!(
            read_partial(&buf).unwrap_err(),
            WireError::Malformed { what: "varint too long" }
        );
        // Tenth byte carrying more than one bit overflows u64.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        assert_eq!(read_partial(&buf).unwrap_err(), WireError::Overflow { what: "varint" });
        // Padded zero continuation group: 0x80 0x00 encodes 0 non-canonically.
        assert_eq!(
            read_partial(&[0x80, 0x00]).unwrap_err(),
            WireError::Malformed { what: "non-canonical varint" }
        );
    }

    #[test]
    fn max_value_uses_ten_bytes() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
        assert_eq!(read_partial(&buf).unwrap(), Partial::Ready(u64::MAX, 10));
    }
}
