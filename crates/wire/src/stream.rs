//! Push-based incremental envelope decoding.
//!
//! [`StreamDecoder`] accepts byte slices of arbitrary size (network
//! reads, file reads, single bytes) and yields each frame payload as soon
//! as its last byte arrives — decode of frame *k* can overlap arrival of
//! frame *k+1* without ever buffering the whole container. Internal
//! buffering is bounded by one partial frame (plus the most recent feed),
//! which [`StreamDecoder::peak_buffered`] exposes so pipelines can assert
//! the bound instead of eyeballing it.

use crate::envelope::{parse_header_partial, Envelope};
use crate::varint::{self, Partial};
use crate::{WireError, MAX_FRAME_LEN};

/// One completed frame, in wire order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamFrame {
    /// Zero-based frame index.
    pub index: usize,
    /// The frame's payload bytes.
    pub payload: Vec<u8>,
}

/// The envelope header, owned by the decoder once it completes.
#[derive(Debug, Clone)]
pub struct StreamHeader {
    raw: Vec<u8>,
    /// Envelope major version.
    pub major: u8,
    /// Envelope minor version.
    pub minor: u8,
    /// Inner legacy container magic.
    pub container: [u8; 4],
    /// Total frames the envelope declares.
    pub frame_count: usize,
}

impl StreamHeader {
    /// Re-parse the stored header bytes into a borrowed [`Envelope`] for
    /// access to the typed TLV fields (dims, params, ...).
    pub fn envelope(&self) -> Envelope<'_> {
        match parse_header_partial(&self.raw) {
            Ok(Partial::Ready(env, _)) => env,
            // The decoder only stores bytes that already parsed once.
            _ => unreachable!("stored header bytes no longer parse"),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Header,
    Frames,
    Done,
}

/// Incremental push decoder for one LCW1 envelope.
///
/// Feed byte slices as they arrive; completed frames come back from the
/// same call. Any error is terminal — the decoder must be discarded.
#[derive(Debug)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    state: State,
    header: Option<StreamHeader>,
    next_frame: usize,
    peak_buffered: usize,
    consumed: u64,
}

impl Default for StreamDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamDecoder {
    /// Fresh decoder awaiting the envelope magic.
    pub fn new() -> Self {
        StreamDecoder {
            buf: Vec::new(),
            state: State::Header,
            header: None,
            next_frame: 0,
            peak_buffered: 0,
            consumed: 0,
        }
    }

    /// Push `chunk` into the decoder, returning every frame it completed.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Vec<StreamFrame>, WireError> {
        if self.state == State::Done {
            if chunk.is_empty() {
                return Ok(Vec::new());
            }
            return Err(WireError::TrailingBytes { extra: chunk.len() });
        }
        self.buf.extend_from_slice(chunk);
        self.peak_buffered = self.peak_buffered.max(self.buf.len());
        let mut out = Vec::new();
        let mut cursor = 0usize;
        loop {
            match self.state {
                State::Header => match parse_header_partial(&self.buf[cursor..])? {
                    Partial::Ready(env, used) => {
                        let frame_count = env.frame_count;
                        self.header = Some(StreamHeader {
                            raw: self.buf[cursor..cursor + used].to_vec(),
                            major: env.major,
                            minor: env.minor,
                            container: env.container,
                            frame_count,
                        });
                        cursor += used;
                        if frame_count == 0 {
                            self.state = State::Done;
                            if cursor != self.buf.len() {
                                return Err(WireError::TrailingBytes {
                                    extra: self.buf.len() - cursor,
                                });
                            }
                            break;
                        }
                        self.state = State::Frames;
                    }
                    Partial::NeedMore => break,
                },
                State::Frames => {
                    let rest = &self.buf[cursor..];
                    match varint::read_partial(rest)? {
                        Partial::Ready(len, used) => {
                            if len > MAX_FRAME_LEN {
                                return Err(WireError::LimitExceeded { what: "frame length" });
                            }
                            let len = len as usize;
                            let total = used
                                .checked_add(len)
                                .ok_or(WireError::Overflow { what: "frame extent" })?;
                            if rest.len() < total {
                                break; // partial frame: wait for more bytes
                            }
                            out.push(StreamFrame {
                                index: self.next_frame,
                                payload: rest[used..total].to_vec(),
                            });
                            self.next_frame += 1;
                            cursor += total;
                            let declared =
                                self.header.as_ref().expect("header precedes frames").frame_count;
                            if self.next_frame == declared {
                                self.state = State::Done;
                                if cursor != self.buf.len() {
                                    return Err(WireError::TrailingBytes {
                                        extra: self.buf.len() - cursor,
                                    });
                                }
                                break;
                            }
                        }
                        Partial::NeedMore => break,
                    }
                }
                State::Done => break,
            }
        }
        self.consumed += cursor as u64;
        self.buf.drain(..cursor);
        Ok(out)
    }

    /// Declare end-of-input. Errors if the envelope is incomplete.
    pub fn finish(&self) -> Result<(), WireError> {
        match self.state {
            State::Done => Ok(()),
            State::Header => Err(WireError::Truncated { section: "envelope header" }),
            State::Frames => Err(WireError::Truncated { section: "frame payload" }),
        }
    }

    /// The parsed header, available once enough bytes arrived.
    pub fn header(&self) -> Option<&StreamHeader> {
        self.header.as_ref()
    }

    /// True once every declared frame has been yielded.
    pub fn is_done(&self) -> bool {
        self.state == State::Done
    }

    /// Bytes currently buffered (the unconsumed partial frame or header).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// High-water mark of internal buffering across all feeds. Bounded by
    /// the largest frame (payload + length prefix) plus the largest
    /// single feed.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Total bytes consumed from the stream so far.
    pub fn bytes_consumed(&self) -> u64 {
        self.consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::EnvelopeBuilder;

    fn sample(frames: &[&[u8]]) -> Vec<u8> {
        EnvelopeBuilder::new(*b"SZLP").element_type(1).dims(&[4, 4]).build(frames)
    }

    #[test]
    fn byte_at_a_time_equals_whole_buffer() {
        let frames: Vec<Vec<u8>> =
            vec![vec![1u8; 37], vec![2u8; 1], Vec::new(), (0..=255).collect()];
        let refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
        let bytes = sample(&refs);

        let mut whole = StreamDecoder::new();
        let got_whole = whole.feed(&bytes).unwrap();
        whole.finish().unwrap();

        let mut trickle = StreamDecoder::new();
        let mut got_trickle = Vec::new();
        for b in &bytes {
            got_trickle.extend(trickle.feed(std::slice::from_ref(b)).unwrap());
        }
        trickle.finish().unwrap();

        assert_eq!(got_whole, got_trickle);
        assert_eq!(got_whole.len(), frames.len());
        for (i, f) in got_whole.iter().enumerate() {
            assert_eq!(f.index, i);
            assert_eq!(f.payload, frames[i]);
        }
        assert_eq!(trickle.header().unwrap().container, *b"SZLP");
        assert_eq!(trickle.bytes_consumed(), bytes.len() as u64);
    }

    #[test]
    fn frames_yield_as_soon_as_complete() {
        let bytes = sample(&[b"aaaa", b"bb"]);
        let env = Envelope::parse(&bytes).unwrap();
        let idx = env.index(&bytes).unwrap();
        let first_end = idx.entries[0].off + idx.entries[0].len;
        let mut dec = StreamDecoder::new();
        // Feeding exactly through frame 0's last byte yields frame 0 only.
        let got = dec.feed(&bytes[..first_end]).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, b"aaaa");
        assert!(!dec.is_done());
        let got = dec.feed(&bytes[first_end..]).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, b"bb");
        assert!(dec.is_done());
    }

    #[test]
    fn buffering_stays_bounded_by_one_frame_plus_feed() {
        let big = vec![7u8; 10_000];
        let frames: Vec<&[u8]> = vec![&big, &big, &big];
        let bytes = sample(&frames);
        const FEED: usize = 256;
        let mut dec = StreamDecoder::new();
        let mut n_frames = 0;
        for chunk in bytes.chunks(FEED) {
            n_frames += dec.feed(chunk).unwrap().len();
        }
        dec.finish().unwrap();
        assert_eq!(n_frames, 3);
        let bound = big.len() + varint::MAX_LEN + FEED;
        assert!(
            dec.peak_buffered() <= bound,
            "peak {} exceeds one frame + feed bound {}",
            dec.peak_buffered(),
            bound
        );
        assert_eq!(dec.buffered(), 0, "everything consumed at the end");
    }

    #[test]
    fn truncated_stream_reported_on_finish() {
        let bytes = sample(&[b"payload"]);
        let mut dec = StreamDecoder::new();
        dec.feed(&bytes[..bytes.len() - 1]).unwrap();
        assert!(!dec.is_done());
        assert_eq!(dec.finish().unwrap_err(), WireError::Truncated { section: "frame payload" });
        // Cut inside the header reports the header section.
        let mut dec = StreamDecoder::new();
        dec.feed(&bytes[..5]).unwrap();
        assert_eq!(
            dec.finish().unwrap_err(),
            WireError::Truncated { section: "envelope header" }
        );
    }

    #[test]
    fn trailing_bytes_rejected_in_and_after_final_feed() {
        let mut bytes = sample(&[b"p"]);
        let clean = bytes.clone();
        bytes.push(0xff);
        let mut dec = StreamDecoder::new();
        assert!(matches!(dec.feed(&bytes), Err(WireError::TrailingBytes { extra: 1 })));
        // Bytes pushed after completion are also trailing.
        let mut dec = StreamDecoder::new();
        dec.feed(&clean).unwrap();
        assert!(dec.is_done());
        assert!(matches!(dec.feed(&[0]), Err(WireError::TrailingBytes { extra: 1 })));
        assert!(dec.feed(&[]).unwrap().is_empty());
    }

    #[test]
    fn corrupt_streams_fail_typed_never_panic() {
        let bytes = sample(&[b"aaaa", b"bb"]);
        // Flip every byte of the header one at a time; decode must yield
        // a typed error or a (possibly wrong) clean decode, never panic.
        let env = Envelope::parse(&bytes).unwrap();
        for i in 0..env.frames_at {
            let mut bad = bytes.clone();
            bad[i] ^= 0xff;
            let mut dec = StreamDecoder::new();
            let mut result = Ok(());
            for chunk in bad.chunks(3) {
                if let Err(e) = dec.feed(chunk) {
                    result = Err(e);
                    break;
                }
            }
            let _ = result.and_then(|()| dec.finish());
        }
    }

    #[test]
    fn zero_frame_envelope_completes_immediately() {
        let bytes = EnvelopeBuilder::new(*b"LCS1").build(&[]);
        let mut dec = StreamDecoder::new();
        assert!(dec.feed(&bytes).unwrap().is_empty());
        assert!(dec.is_done());
        dec.finish().unwrap();
        assert_eq!(dec.header().unwrap().frame_count, 0);
    }

    #[test]
    fn header_envelope_accessor_roundtrips_fields() {
        let bytes = sample(&[b"x"]);
        let mut dec = StreamDecoder::new();
        dec.feed(&bytes).unwrap();
        let header = dec.header().unwrap();
        let env = header.envelope();
        assert_eq!(env.dims().unwrap(), Some(vec![4, 4]));
        assert_eq!(env.element_type().unwrap(), Some(1));
    }
}
