//! LCW1 — the unified, versioned wire envelope for lcpio containers.
//!
//! Every legacy container (`SZL1`, `SZLP`, `SZPR`, `ZFL1`, `ZFLP`,
//! `LCS1`) hand-rolls its own header, which forces whole-container
//! buffering and has bred a family of forged-header and truncation bugs
//! patched one container at a time. LCW1 is the one framing they all map
//! onto:
//!
//! ```text
//! offset 0   magic            b"LCW1"
//!        4   version major    u8  (decoder rejects newer majors)
//!        5   version minor    u8  (decoder accepts any minor)
//!        6   header length    varint, bytes of the TLV block
//!        ..  TLV block        sequence of (u8 tag, varint len, value)
//!        ..  frames           frame_count x (varint len, payload)
//! ```
//!
//! The TLV block carries a required container id (the legacy 4-byte
//! magic) and frame count, plus optional typed fields (element type,
//! dims, chunk table, opaque params). Unknown tags are skipped, so a
//! minor-version bump can add fields without breaking old decoders;
//! a major bump fails with a typed [`WireError::UnsupportedMajor`].
//!
//! Validation is centralized: [`envelope::Envelope::parse`] checks every
//! header field against a hard ceiling, [`envelope::Envelope::index`]
//! walks the frames once with checked arithmetic (never trusting a
//! length it has not compared against the bytes actually present), and
//! [`guard_element_count`] is the single decoded-size gate shared by all
//! container ports. The push-based [`stream::StreamDecoder`] accepts
//! arbitrary byte slices and yields each frame as soon as it completes,
//! buffering at most one partial frame.
//!
//! This crate is dependency-free and does no I/O; the container-specific
//! wrap/unwrap bridges live in `lcpio-codec` (SZ/ZFP containers) and
//! `lcpio-core` (LCS1 pipeline streams).

pub mod envelope;
pub mod stream;
pub mod varint;

pub use envelope::{Envelope, EnvelopeBuilder, FrameExtent, FrameIndex, RawField};
pub use stream::{StreamDecoder, StreamFrame, StreamHeader};
pub use varint::Partial;

/// Envelope magic.
pub const MAGIC: [u8; 4] = *b"LCW1";

/// Highest envelope major version this build can decode (and the one it
/// writes). A stream with a newer major fails with
/// [`WireError::UnsupportedMajor`].
pub const VERSION_MAJOR: u8 = 1;

/// Minor version written by this build. Decoders accept any minor: new
/// minors may only add TLV fields, which old decoders skip.
pub const VERSION_MINOR: u8 = 0;

/// Ceiling on the TLV header block in bytes. Real headers are tens of
/// bytes; a forged multi-megabyte claim is rejected before any buffering.
pub const MAX_HEADER_LEN: usize = 1 << 20;

/// Ceiling on the per-envelope frame count.
pub const MAX_FRAMES: usize = 1 << 22;

/// Ceiling on a single frame's payload length.
pub const MAX_FRAME_LEN: u64 = u32::MAX as u64;

/// Ceiling on array rank in the dims field (legacy containers allow 4;
/// headroom for future layouts without unbounded allocation).
pub const MAX_RANK: usize = 8;

/// Decoded-elements-per-payload-byte ceiling. Every lcpio codec spends at
/// least one bit per coding block and a block covers at most 64 elements,
/// so a header claiming more than `64 * 8 = 512` elements per payload
/// byte is forged. Shared by all container ports via
/// [`guard_element_count`].
pub const MAX_EXPANSION: u64 = 512;

/// TLV tags understood by this version. Unknown tags are skipped on
/// decode (forward compatibility); known tags may appear at most once.
pub mod tag {
    /// Required. 4-byte legacy container magic (e.g. `SZLP`).
    pub const CONTAINER: u8 = 0x01;
    /// Required. Frame count as a varint.
    pub const FRAME_COUNT: u8 = 0x02;
    /// Optional. Element type tag (1 byte; matches the codecs' tags).
    pub const ELEMENT_TYPE: u8 = 0x03;
    /// Optional. Array dims: varint rank, then one varint per extent.
    pub const DIMS: u8 = 0x04;
    /// Optional. Per-frame slow-dimension ranges: frame_count pairs of
    /// varints `(start, end)`.
    pub const CHUNK_TABLE: u8 = 0x05;
    /// Optional. Container-specific opaque parameter bytes.
    pub const PARAMS: u8 = 0x06;
    /// Optional. Per-frame codec tags: exactly `frame_count` bytes, one
    /// codec id per frame, so a single envelope can carry mixed-codec
    /// chunks. Id values are assigned by the codec layer (0 = raw); the
    /// wire layer only enforces the field's shape. Old decoders skip the
    /// tag (forward compatibility), so tagged containers still decode
    /// under pre-tag readers.
    pub const CODEC_TAGS: u8 = 0x07;
}

/// Typed decode error. Every failure mode of the envelope layer is a
/// distinct variant, so callers (and tests) can tell a cut stream from a
/// forged one from a version skew.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The stream ends before `section` is complete.
    Truncated { section: &'static str },
    /// First four bytes are not `LCW1`.
    BadMagic([u8; 4]),
    /// Envelope major version is newer than this decoder understands.
    UnsupportedMajor { have: u8, supported: u8 },
    /// Structurally invalid data (bad varint, malformed field, ...).
    Malformed { what: &'static str },
    /// Arithmetic on a header field overflowed.
    Overflow { what: &'static str },
    /// A required TLV field is missing.
    MissingField { tag: u8 },
    /// A known TLV tag appeared more than once.
    DuplicateField { tag: u8 },
    /// A header field exceeds its hard ceiling.
    LimitExceeded { what: &'static str },
    /// Bytes remain after the last frame.
    TrailingBytes { extra: usize },
    /// Claimed element count exceeds what the payload could decode to.
    CapacityGuard { claimed: u64, payload_bytes: u64 },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { section } => {
                write!(f, "wire stream truncated in {section}")
            }
            WireError::BadMagic(m) => {
                write!(f, "not an LCW1 envelope (magic {:?})", String::from_utf8_lossy(m))
            }
            WireError::UnsupportedMajor { have, supported } => write!(
                f,
                "envelope major version {have} is newer than supported {supported}"
            ),
            WireError::Malformed { what } => write!(f, "malformed wire data: {what}"),
            WireError::Overflow { what } => write!(f, "wire header overflow in {what}"),
            WireError::MissingField { tag } => {
                write!(f, "required TLV field 0x{tag:02x} missing")
            }
            WireError::DuplicateField { tag } => {
                write!(f, "TLV field 0x{tag:02x} appears more than once")
            }
            WireError::LimitExceeded { what } => write!(f, "{what} exceeds hard limit"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after the last frame")
            }
            WireError::CapacityGuard { claimed, payload_bytes } => write!(
                f,
                "claimed {claimed} elements exceeds capacity of {payload_bytes} payload bytes"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// The one decoded-size gate: validate a header-claimed element count
/// against the payload bytes actually present *before* any allocation.
///
/// Returns the count as `usize` only if it is within the [`MAX_EXPANSION`]
/// capacity of the payload, so a forged 2^40 count can neither drive an
/// oversized reservation on 64-bit targets nor silently truncate on
/// 32-bit ones.
pub fn guard_element_count(claimed: u64, payload_bytes: usize) -> Result<usize, WireError> {
    if claimed > (payload_bytes as u64).saturating_mul(MAX_EXPANSION) {
        return Err(WireError::CapacityGuard { claimed, payload_bytes: payload_bytes as u64 });
    }
    usize::try_from(claimed).map_err(|_| WireError::Overflow { what: "element count" })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_guard_accepts_sane_and_rejects_forged() {
        assert_eq!(guard_element_count(1000, 100), Ok(1000));
        assert_eq!(guard_element_count(512 * 100, 100), Ok(51200));
        assert_eq!(
            guard_element_count(512 * 100 + 1, 100),
            Err(WireError::CapacityGuard { claimed: 51201, payload_bytes: 100 })
        );
        assert!(guard_element_count(1 << 40, 16).is_err());
        assert_eq!(guard_element_count(0, 0), Ok(0));
        assert!(guard_element_count(1, 0).is_err());
    }

    #[test]
    fn errors_display_without_panicking() {
        let cases: Vec<WireError> = vec![
            WireError::Truncated { section: "frame payload" },
            WireError::BadMagic(*b"SZLP"),
            WireError::UnsupportedMajor { have: 2, supported: 1 },
            WireError::Malformed { what: "x" },
            WireError::Overflow { what: "y" },
            WireError::MissingField { tag: 1 },
            WireError::DuplicateField { tag: 2 },
            WireError::LimitExceeded { what: "z" },
            WireError::TrailingBytes { extra: 3 },
            WireError::CapacityGuard { claimed: 9, payload_bytes: 1 },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
