//! Envelope header parsing/building and the validated frame index.

use crate::varint::{self, Partial};
use crate::{
    tag, WireError, MAGIC, MAX_FRAMES, MAX_FRAME_LEN, MAX_HEADER_LEN, MAX_RANK, VERSION_MAJOR,
    VERSION_MINOR,
};

/// One TLV field as it appeared on the wire, including unknown tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawField<'a> {
    /// Field tag (see [`crate::tag`]).
    pub tag: u8,
    /// Raw value bytes.
    pub value: &'a [u8],
}

/// A parsed, validated envelope header.
#[derive(Debug, Clone)]
pub struct Envelope<'a> {
    /// Envelope major version (≤ [`VERSION_MAJOR`], enforced on parse).
    pub major: u8,
    /// Envelope minor version (any value accepted).
    pub minor: u8,
    /// Inner legacy container magic (`SZLP`, `LCS1`, ...).
    pub container: [u8; 4],
    /// Number of frames following the header.
    pub frame_count: usize,
    /// Every TLV field in wire order, unknown tags included.
    pub fields: Vec<RawField<'a>>,
    /// Byte offset of the first frame (total header length).
    pub frames_at: usize,
}

/// Tags this version understands; each may appear at most once.
const KNOWN_TAGS: [u8; 7] = [
    tag::CONTAINER,
    tag::FRAME_COUNT,
    tag::ELEMENT_TYPE,
    tag::DIMS,
    tag::CHUNK_TABLE,
    tag::PARAMS,
    tag::CODEC_TAGS,
];

/// Incremental header parse from the front of `buf`.
///
/// `NeedMore` means the buffer ends before the header does and more bytes
/// could complete it; every `Err` is final (corruption or version skew no
/// amount of further input can repair).
pub fn parse_header_partial(buf: &[u8]) -> Result<Partial<Envelope<'_>>, WireError> {
    if buf.len() >= 4 && buf[..4] != MAGIC {
        return Err(WireError::BadMagic([buf[0], buf[1], buf[2], buf[3]]));
    }
    if buf.len() < 6 {
        return Ok(Partial::NeedMore);
    }
    let (major, minor) = (buf[4], buf[5]);
    if major > VERSION_MAJOR {
        return Err(WireError::UnsupportedMajor { have: major, supported: VERSION_MAJOR });
    }
    if major == 0 {
        return Err(WireError::Malformed { what: "major version zero" });
    }
    let mut pos = 6usize;
    let tlv_len = match varint::read_partial(&buf[pos..])? {
        Partial::Ready(v, n) => {
            pos += n;
            v
        }
        Partial::NeedMore => return Ok(Partial::NeedMore),
    };
    if tlv_len > MAX_HEADER_LEN as u64 {
        return Err(WireError::LimitExceeded { what: "TLV header length" });
    }
    let end = pos + tlv_len as usize; // pos ≤ 16 and tlv_len ≤ 1 MiB: no overflow
    if buf.len() < end {
        return Ok(Partial::NeedMore);
    }
    let fields = parse_tlv_block(&buf[pos..end])?;

    let mut container: Option<[u8; 4]> = None;
    let mut frame_count: Option<u64> = None;
    for f in &fields {
        match f.tag {
            tag::CONTAINER => {
                let v: [u8; 4] = f
                    .value
                    .try_into()
                    .map_err(|_| WireError::Malformed { what: "container id must be 4 bytes" })?;
                container = Some(v);
            }
            tag::FRAME_COUNT => {
                let mut p = 0usize;
                let v = varint::read(f.value, &mut p)?;
                if p != f.value.len() {
                    return Err(WireError::Malformed { what: "frame count field" });
                }
                if v > MAX_FRAMES as u64 {
                    return Err(WireError::LimitExceeded { what: "frame count" });
                }
                frame_count = Some(v);
            }
            _ => {}
        }
    }
    let container = container.ok_or(WireError::MissingField { tag: tag::CONTAINER })?;
    let frame_count =
        frame_count.ok_or(WireError::MissingField { tag: tag::FRAME_COUNT })? as usize;
    Ok(Partial::Ready(
        Envelope { major, minor, container, frame_count, fields, frames_at: end },
        end,
    ))
}

/// Walk a complete TLV block, collecting every field and rejecting
/// duplicate known tags. Unknown tags are collected but otherwise skipped
/// (forward compatibility).
fn parse_tlv_block(block: &[u8]) -> Result<Vec<RawField<'_>>, WireError> {
    let mut fields = Vec::new();
    let mut seen = [false; 256];
    let mut pos = 0usize;
    while pos < block.len() {
        let t = block[pos];
        pos += 1;
        let len = varint::read(block, &mut pos)
            .map_err(|_| WireError::Truncated { section: "TLV field length" })?;
        let end = pos
            .checked_add(usize::try_from(len).map_err(|_| WireError::Overflow { what: "TLV field length" })?)
            .ok_or(WireError::Overflow { what: "TLV field length" })?;
        if end > block.len() {
            return Err(WireError::Truncated { section: "TLV field value" });
        }
        if KNOWN_TAGS.contains(&t) {
            if seen[t as usize] {
                return Err(WireError::DuplicateField { tag: t });
            }
            seen[t as usize] = true;
        }
        fields.push(RawField { tag: t, value: &block[pos..end] });
        pos = end;
    }
    Ok(fields)
}

/// Extent of one frame's payload inside the envelope bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameExtent {
    /// Payload start offset.
    pub off: usize,
    /// Payload length in bytes.
    pub len: usize,
}

/// Validated one-pass index over every frame in an envelope: each length
/// checked against the bytes actually present with overflow-proof
/// arithmetic, and nothing allowed to trail the final frame.
#[derive(Debug, Clone)]
pub struct FrameIndex {
    /// Per-frame payload extents, in wire order.
    pub entries: Vec<FrameExtent>,
    /// Total payload bytes across all frames.
    pub payload_bytes: usize,
}

impl<'a> Envelope<'a> {
    /// Parse a complete envelope header from the front of `bytes`.
    pub fn parse(bytes: &'a [u8]) -> Result<Envelope<'a>, WireError> {
        match parse_header_partial(bytes)? {
            Partial::Ready(env, _) => Ok(env),
            Partial::NeedMore => Err(WireError::Truncated { section: "envelope header" }),
        }
    }

    /// True if `bytes` start with the LCW1 magic.
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.starts_with(&MAGIC)
    }

    /// Build the validated frame index for the envelope `bytes` this
    /// header was parsed from. This is the single length-validation pass:
    /// after it succeeds, every `entries[i]` is a proven in-bounds slice.
    pub fn index(&self, bytes: &[u8]) -> Result<FrameIndex, WireError> {
        let mut pos = self.frames_at;
        if pos > bytes.len() {
            return Err(WireError::Truncated { section: "frame table" });
        }
        let mut entries = Vec::with_capacity(self.frame_count.min(1 << 16));
        let mut payload_bytes = 0usize;
        for _ in 0..self.frame_count {
            let len = varint::read(bytes, &mut pos)
                .map_err(|_| WireError::Truncated { section: "frame length" })?;
            if len > MAX_FRAME_LEN {
                return Err(WireError::LimitExceeded { what: "frame length" });
            }
            let len = len as usize;
            let end = pos.checked_add(len).ok_or(WireError::Overflow { what: "frame extent" })?;
            if end > bytes.len() {
                return Err(WireError::Truncated { section: "frame payload" });
            }
            entries.push(FrameExtent { off: pos, len });
            payload_bytes += len;
            pos = end;
        }
        if pos != bytes.len() {
            return Err(WireError::TrailingBytes { extra: bytes.len() - pos });
        }
        Ok(FrameIndex { entries, payload_bytes })
    }

    /// First field with tag `t`, if present.
    pub fn field(&self, t: u8) -> Option<&'a [u8]> {
        self.fields.iter().find(|f| f.tag == t).map(|f| f.value)
    }

    /// Element type tag, if the field is present.
    pub fn element_type(&self) -> Result<Option<u8>, WireError> {
        match self.field(tag::ELEMENT_TYPE) {
            None => Ok(None),
            Some([t]) => Ok(Some(*t)),
            Some(_) => Err(WireError::Malformed { what: "element type field" }),
        }
    }

    /// Array dims, if the field is present: varint rank then one varint
    /// per extent, rank ≤ [`MAX_RANK`], extents nonzero, product checked.
    pub fn dims(&self) -> Result<Option<Vec<usize>>, WireError> {
        let Some(v) = self.field(tag::DIMS) else { return Ok(None) };
        let mut pos = 0usize;
        let rank = varint::read(v, &mut pos)?;
        if rank == 0 || rank > MAX_RANK as u64 {
            return Err(WireError::LimitExceeded { what: "dims rank" });
        }
        let mut dims = Vec::with_capacity(rank as usize);
        for _ in 0..rank {
            let d = varint::read(v, &mut pos)?;
            let d = usize::try_from(d).map_err(|_| WireError::Overflow { what: "dim extent" })?;
            if d == 0 {
                return Err(WireError::Malformed { what: "zero dim extent" });
            }
            dims.push(d);
        }
        if pos != v.len() {
            return Err(WireError::Malformed { what: "dims field" });
        }
        dims.iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or(WireError::Overflow { what: "dims product" })?;
        Ok(Some(dims))
    }

    /// Per-frame chunk table, if present: exactly `frame_count` pairs of
    /// varints `(start, end)`.
    pub fn chunk_table(&self) -> Result<Option<Vec<(usize, usize)>>, WireError> {
        let Some(v) = self.field(tag::CHUNK_TABLE) else { return Ok(None) };
        let mut pos = 0usize;
        let mut table = Vec::with_capacity(self.frame_count);
        for _ in 0..self.frame_count {
            let a = varint::read(v, &mut pos)?;
            let b = varint::read(v, &mut pos)?;
            let a = usize::try_from(a).map_err(|_| WireError::Overflow { what: "chunk range" })?;
            let b = usize::try_from(b).map_err(|_| WireError::Overflow { what: "chunk range" })?;
            table.push((a, b));
        }
        if pos != v.len() {
            return Err(WireError::Malformed { what: "chunk table field" });
        }
        Ok(Some(table))
    }

    /// Container-specific opaque parameter bytes, if present.
    pub fn params(&self) -> Option<&'a [u8]> {
        self.field(tag::PARAMS)
    }

    /// Per-frame codec tags, if present: exactly `frame_count` bytes, one
    /// codec id per frame. The id values themselves are owned by the codec
    /// layer; the wire layer validates only the field's shape.
    pub fn codec_tags(&self) -> Result<Option<&'a [u8]>, WireError> {
        let Some(v) = self.field(tag::CODEC_TAGS) else { return Ok(None) };
        if v.len() != self.frame_count {
            return Err(WireError::Malformed { what: "codec tags field" });
        }
        Ok(Some(v))
    }
}

/// Builder for envelope headers and whole envelopes.
///
/// Field order is fixed (container, frame count, then extras in insertion
/// order) so identical inputs always serialize to identical bytes.
#[derive(Debug, Clone)]
pub struct EnvelopeBuilder {
    container: [u8; 4],
    major: u8,
    minor: u8,
    fields: Vec<(u8, Vec<u8>)>,
}

impl EnvelopeBuilder {
    /// New builder for the given inner container magic.
    pub fn new(container: [u8; 4]) -> Self {
        EnvelopeBuilder { container, major: VERSION_MAJOR, minor: VERSION_MINOR, fields: Vec::new() }
    }

    /// Override the major version (tests of version skew only).
    pub fn major(mut self, v: u8) -> Self {
        self.major = v;
        self
    }

    /// Override the minor version.
    pub fn minor(mut self, v: u8) -> Self {
        self.minor = v;
        self
    }

    /// Append an arbitrary TLV field (also how unknown-tag streams are
    /// built in forward-compat tests).
    pub fn raw_field(mut self, tag: u8, value: Vec<u8>) -> Self {
        self.fields.push((tag, value));
        self
    }

    /// Append the element type field.
    pub fn element_type(self, t: u8) -> Self {
        self.raw_field(tag::ELEMENT_TYPE, vec![t])
    }

    /// Append the dims field.
    pub fn dims(self, dims: &[usize]) -> Self {
        let mut v = Vec::new();
        varint::write_u64(&mut v, dims.len() as u64);
        for &d in dims {
            varint::write_u64(&mut v, d as u64);
        }
        self.raw_field(tag::DIMS, v)
    }

    /// Append the chunk table field.
    pub fn chunk_table(self, table: &[(usize, usize)]) -> Self {
        let mut v = Vec::new();
        for &(a, b) in table {
            varint::write_u64(&mut v, a as u64);
            varint::write_u64(&mut v, b as u64);
        }
        self.raw_field(tag::CHUNK_TABLE, v)
    }

    /// Append the opaque params field.
    pub fn params(self, bytes: &[u8]) -> Self {
        self.raw_field(tag::PARAMS, bytes.to_vec())
    }

    /// Append the per-frame codec-tag field (one id byte per frame; the
    /// caller must pass exactly as many bytes as frames it will emit).
    pub fn codec_tags(self, tags: &[u8]) -> Self {
        self.raw_field(tag::CODEC_TAGS, tags.to_vec())
    }

    /// Serialize the header for an envelope that will carry `frame_count`
    /// frames. Streaming writers emit this first, then each frame via
    /// [`frame_prefix`] as it completes.
    pub fn header_bytes(&self, frame_count: usize) -> Vec<u8> {
        let mut tlv = Vec::new();
        push_tlv(&mut tlv, tag::CONTAINER, &self.container);
        let mut fc = Vec::new();
        varint::write_u64(&mut fc, frame_count as u64);
        push_tlv(&mut tlv, tag::FRAME_COUNT, &fc);
        for (t, v) in &self.fields {
            push_tlv(&mut tlv, *t, v);
        }
        let mut out = Vec::with_capacity(6 + varint::MAX_LEN + tlv.len());
        out.extend_from_slice(&MAGIC);
        out.push(self.major);
        out.push(self.minor);
        varint::write_u64(&mut out, tlv.len() as u64);
        out.extend_from_slice(&tlv);
        out
    }

    /// Serialize a complete envelope: header plus every frame.
    pub fn build(&self, frames: &[&[u8]]) -> Vec<u8> {
        let mut out = self.header_bytes(frames.len());
        for f in frames {
            varint::write_u64(&mut out, f.len() as u64);
            out.extend_from_slice(f);
        }
        out
    }
}

/// Length prefix a streaming writer emits before each frame payload.
pub fn frame_prefix(len: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(varint::MAX_LEN);
    varint::write_u64(&mut v, len as u64);
    v
}

fn push_tlv(out: &mut Vec<u8>, tag: u8, value: &[u8]) {
    out.push(tag);
    varint::write_u64(out, value.len() as u64);
    out.extend_from_slice(value);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        EnvelopeBuilder::new(*b"SZLP")
            .element_type(1)
            .dims(&[32, 9, 7])
            .chunk_table(&[(0, 16), (16, 32)])
            .params(&[0xaa, 0xbb])
            .build(&[b"first frame", b"second"])
    }

    #[test]
    fn roundtrip_header_and_index() {
        let bytes = sample();
        let env = Envelope::parse(&bytes).unwrap();
        assert_eq!(env.major, VERSION_MAJOR);
        assert_eq!(env.minor, VERSION_MINOR);
        assert_eq!(env.container, *b"SZLP");
        assert_eq!(env.frame_count, 2);
        assert_eq!(env.element_type().unwrap(), Some(1));
        assert_eq!(env.dims().unwrap(), Some(vec![32, 9, 7]));
        assert_eq!(env.chunk_table().unwrap(), Some(vec![(0, 16), (16, 32)]));
        assert_eq!(env.params(), Some(&[0xaa, 0xbb][..]));
        let idx = env.index(&bytes).unwrap();
        assert_eq!(idx.entries.len(), 2);
        let f0 = idx.entries[0];
        let f1 = idx.entries[1];
        assert_eq!(&bytes[f0.off..f0.off + f0.len], b"first frame");
        assert_eq!(&bytes[f1.off..f1.off + f1.len], b"second");
        assert_eq!(idx.payload_bytes, 17);
    }

    #[test]
    fn empty_envelope_is_valid() {
        let bytes = EnvelopeBuilder::new(*b"LCS1").build(&[]);
        let env = Envelope::parse(&bytes).unwrap();
        assert_eq!(env.frame_count, 0);
        let idx = env.index(&bytes).unwrap();
        assert!(idx.entries.is_empty());
    }

    #[test]
    fn bad_magic_and_missing_fields() {
        let bytes = sample();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(Envelope::parse(&bad), Err(WireError::BadMagic(_))));
        // Header with no container field.
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.push(VERSION_MAJOR);
        out.push(VERSION_MINOR);
        let mut tlv = Vec::new();
        let mut fc = Vec::new();
        varint::write_u64(&mut fc, 0);
        push_tlv(&mut tlv, tag::FRAME_COUNT, &fc);
        varint::write_u64(&mut out, tlv.len() as u64);
        out.extend_from_slice(&tlv);
        assert_eq!(
            Envelope::parse(&out).unwrap_err(),
            WireError::MissingField { tag: tag::CONTAINER }
        );
    }

    #[test]
    fn duplicate_known_tag_rejected() {
        let bytes = EnvelopeBuilder::new(*b"SZLP").element_type(1).element_type(2).build(&[]);
        assert_eq!(
            Envelope::parse(&bytes).unwrap_err(),
            WireError::DuplicateField { tag: tag::ELEMENT_TYPE }
        );
    }

    #[test]
    fn unknown_tags_are_skipped_but_preserved() {
        let bytes = EnvelopeBuilder::new(*b"ZFLP")
            .raw_field(0x7f, vec![1, 2, 3])
            .raw_field(0xee, Vec::new())
            .build(&[b"x"]);
        let env = Envelope::parse(&bytes).unwrap();
        assert_eq!(env.field(0x7f), Some(&[1u8, 2, 3][..]));
        assert_eq!(env.field(0xee), Some(&[][..]));
        env.index(&bytes).unwrap();
    }

    #[test]
    fn version_rules() {
        // Higher minor decodes fine.
        let bytes = EnvelopeBuilder::new(*b"SZLP").minor(9).build(&[b"p"]);
        let env = Envelope::parse(&bytes).unwrap();
        assert_eq!(env.minor, 9);
        env.index(&bytes).unwrap();
        // Higher major is a typed error.
        let bytes = EnvelopeBuilder::new(*b"SZLP").major(VERSION_MAJOR + 1).build(&[b"p"]);
        assert_eq!(
            Envelope::parse(&bytes).unwrap_err(),
            WireError::UnsupportedMajor { have: VERSION_MAJOR + 1, supported: VERSION_MAJOR }
        );
        // Major zero is malformed.
        let bytes = EnvelopeBuilder::new(*b"SZLP").major(0).build(&[b"p"]);
        assert!(matches!(Envelope::parse(&bytes), Err(WireError::Malformed { .. })));
    }

    #[test]
    fn every_truncation_yields_a_typed_error() {
        let bytes = sample();
        let env = Envelope::parse(&bytes).unwrap();
        for cut in 0..bytes.len() {
            let prefix = &bytes[..cut];
            let whole = Envelope::parse(prefix).and_then(|e| e.index(prefix).map(|_| ()));
            assert!(whole.is_err(), "cut at {cut} must fail");
            // The incremental parser must report NeedMore or a real error,
            // never a premature Ready of the full header... unless the cut
            // is past the header, in which case index() catches it above.
            if cut < env.frames_at {
                match parse_header_partial(prefix) {
                    Ok(Partial::NeedMore) | Err(_) => {}
                    Ok(Partial::Ready(_, used)) => {
                        panic!("cut at {cut} yielded a complete header of {used} bytes")
                    }
                }
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample();
        bytes.push(0);
        let env = Envelope::parse(&bytes).unwrap();
        assert_eq!(env.index(&bytes).unwrap_err(), WireError::TrailingBytes { extra: 1 });
    }

    #[test]
    fn forged_frame_length_rejected_before_slicing() {
        // Header claims one frame of 2^40 bytes.
        let mut bytes = EnvelopeBuilder::new(*b"SZLP").header_bytes(1);
        varint::write_u64(&mut bytes, 1 << 40);
        bytes.extend_from_slice(&[0u8; 64]);
        let env = Envelope::parse(&bytes).unwrap();
        assert_eq!(env.index(&bytes).unwrap_err(), WireError::LimitExceeded { what: "frame length" });
        // Within the limit but beyond the buffer: truncated.
        let mut bytes = EnvelopeBuilder::new(*b"SZLP").header_bytes(1);
        varint::write_u64(&mut bytes, 1 << 20);
        bytes.extend_from_slice(&[0u8; 64]);
        let env = Envelope::parse(&bytes).unwrap();
        assert_eq!(
            env.index(&bytes).unwrap_err(),
            WireError::Truncated { section: "frame payload" }
        );
    }

    #[test]
    fn codec_tags_roundtrip_and_shape_validation() {
        // One tag byte per frame round-trips.
        let bytes = EnvelopeBuilder::new(*b"LCS1")
            .codec_tags(&[1, 2, 0])
            .build(&[b"a", b"bb", b"ccc"]);
        let env = Envelope::parse(&bytes).unwrap();
        assert_eq!(env.codec_tags().unwrap(), Some(&[1u8, 2, 0][..]));
        env.index(&bytes).unwrap();
        // Absent field reads back as None.
        let bytes = EnvelopeBuilder::new(*b"LCS1").build(&[b"a"]);
        assert_eq!(Envelope::parse(&bytes).unwrap().codec_tags().unwrap(), None);
        // Wrong length (fewer or more bytes than frames) is malformed.
        for tags in [&[1u8][..], &[1, 2, 0, 0][..]] {
            let bytes = EnvelopeBuilder::new(*b"LCS1").codec_tags(tags).build(&[b"a", b"b", b"c"]);
            let env = Envelope::parse(&bytes).unwrap();
            assert_eq!(
                env.codec_tags().unwrap_err(),
                WireError::Malformed { what: "codec tags field" }
            );
        }
        // Duplicate codec-tag field is rejected like any known tag.
        let bytes =
            EnvelopeBuilder::new(*b"LCS1").codec_tags(&[1]).codec_tags(&[2]).build(&[b"a"]);
        assert_eq!(
            Envelope::parse(&bytes).unwrap_err(),
            WireError::DuplicateField { tag: tag::CODEC_TAGS }
        );
        // Pre-tag decoders skip it: the field is just an unknown tag to
        // them, which parse_tlv_block collects without interpreting.
        let bytes = EnvelopeBuilder::new(*b"LCS1").codec_tags(&[1, 2]).build(&[b"a", b"b"]);
        let env = Envelope::parse(&bytes).unwrap();
        assert_eq!(env.field(tag::CODEC_TAGS), Some(&[1u8, 2][..]));
    }

    #[test]
    fn malformed_typed_fields_rejected() {
        // dims field with trailing garbage.
        let bytes = EnvelopeBuilder::new(*b"SZLP").raw_field(tag::DIMS, vec![1, 5, 9]).build(&[]);
        let env = Envelope::parse(&bytes).unwrap();
        assert!(env.dims().is_err());
        // element type of the wrong width.
        let bytes =
            EnvelopeBuilder::new(*b"SZLP").raw_field(tag::ELEMENT_TYPE, vec![1, 2]).build(&[]);
        let env = Envelope::parse(&bytes).unwrap();
        assert!(env.element_type().is_err());
        // zero dim extent.
        let bytes = EnvelopeBuilder::new(*b"SZLP").dims(&[4, 0]).build(&[]);
        let env = Envelope::parse(&bytes).unwrap();
        assert!(env.dims().is_err());
    }
}
