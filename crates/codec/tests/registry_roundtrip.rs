//! Registry round-trip matrix: every container magic × {single, chunked}
//! decode paths × f32, plus a proptest that magic sniffing never panics.

use lcpio_codec::{registry, BoundSpec, CodecError};
use proptest::prelude::*;

fn smooth_3d(nz: usize, ny: usize, nx: usize) -> Vec<f32> {
    (0..nz * ny * nx)
        .map(|idx| {
            let k = idx / (ny * nx);
            let j = (idx / nx) % ny;
            let i = idx % nx;
            (i as f32 * 0.2).sin() * (j as f32 * 0.15).cos() + (k as f32 * 0.1).sin() * 3.0
        })
        .collect()
}

fn max_err(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (*x as f64 - *y as f64).abs()).fold(0.0, f64::max)
}

/// Compress via every (codec, mode) pair that exists, check the expected
/// magic comes out, then decode through the registry sniffer at both one
/// and several worker threads and verify the bound.
#[test]
fn roundtrip_matrix_covers_every_magic() {
    let dims = [20usize, 12, 13];
    let data = smooth_3d(dims[0], dims[1], dims[2]);
    let eb = 1e-3;
    let sz = registry().by_name("sz").expect("sz registered");
    let zfp = registry().by_name("zfp").expect("zfp registered");

    type Job<'a> = (&'static str, Box<dyn Fn() -> lcpio_codec::Encoded + 'a>, f64);
    let jobs: Vec<Job> = vec![
        (
            "SZL1",
            Box::new(|| sz.compress(&data, &dims, BoundSpec::Absolute(eb)).expect("sz")),
            eb,
        ),
        (
            "SZLP",
            Box::new(|| {
                sz.compress_chunked(&data, &dims, BoundSpec::Absolute(eb), 3).expect("sz chunked")
            }),
            eb,
        ),
        (
            "SZPR",
            Box::new(|| {
                sz.compress(&data, &dims, BoundSpec::PointwiseRelative(1e-2)).expect("sz pwrel")
            }),
            // Pointwise bound: validated separately below; this slot holds
            // the *relative* tolerance for the generic check via range.
            f64::NAN,
        ),
        (
            "ZFL1",
            Box::new(|| zfp.compress(&data, &dims, BoundSpec::Absolute(eb)).expect("zfp")),
            eb,
        ),
        (
            "ZFLP",
            Box::new(|| {
                zfp.compress_chunked(&data, &dims, BoundSpec::Absolute(eb), 3)
                    .expect("zfp chunked")
            }),
            eb,
        ),
    ];

    let mut seen = Vec::new();
    for (expect_magic, make, bound) in jobs {
        let out = make();
        assert_eq!(&out.bytes[..4], expect_magic.as_bytes(), "container {expect_magic}");
        assert!(out.stats.elements as usize == data.len(), "stats for {expect_magic}");
        assert!(out.stats.ratio() > 1.0, "ratio for {expect_magic}");
        let (codec, info) = registry().by_magic(&out.bytes).expect("sniff");
        assert_eq!(info.magic_str(), expect_magic);
        for threads in [1usize, 3] {
            let (rec, got_dims) =
                registry().decompress_auto(&out.bytes, threads).expect("decode");
            assert_eq!(got_dims, dims.to_vec(), "{expect_magic} dims at {threads} threads");
            assert_eq!(rec.len(), data.len());
            if bound.is_nan() {
                // Pointwise-relative contract.
                for (a, b) in data.iter().zip(&rec) {
                    let tol = 1e-2 * a.abs() as f64 + 1e-9;
                    assert!(
                        ((*a - *b).abs() as f64) <= tol * 1.001,
                        "{expect_magic}: pwrel violated ({a} vs {b})"
                    );
                }
            } else {
                assert!(
                    max_err(&data, &rec) <= bound * 1.0001 + 1e-9,
                    "{expect_magic} bound at {threads} threads"
                );
            }
        }
        seen.push((expect_magic, codec.name()));
    }
    assert_eq!(
        seen,
        vec![
            ("SZL1", "sz"),
            ("SZLP", "sz"),
            ("SZPR", "sz"),
            ("ZFL1", "zfp"),
            ("ZFLP", "zfp"),
        ]
    );
}

#[test]
fn f64_streams_roundtrip_through_registry() {
    let data: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.001).sin() * 1e5).collect();
    for name in ["sz", "zfp"] {
        let codec = registry().by_name(name).expect("registered");
        let out = codec.compress_f64(&data, &[16, 256], BoundSpec::Absolute(1e-6)).expect(name);
        let (rec, dims) = registry().decompress_auto_f64(&out.bytes, 2).expect("decode");
        assert_eq!(dims, vec![16, 256]);
        for (a, b) in data.iter().zip(&rec) {
            assert!((a - b).abs() <= 1e-6 * 1.0001 + 1e-12, "{name}: {a} vs {b}");
        }
    }
}

#[test]
fn unsupported_bounds_are_reported_not_panicked() {
    let data = vec![1.0f32; 64];
    let zfp = registry().by_name("zfp").expect("zfp");
    for bound in [BoundSpec::ValueRangeRelative(1e-3), BoundSpec::PointwiseRelative(1e-3)] {
        match zfp.compress(&data, &[64], bound) {
            Err(CodecError::UnsupportedBound { codec, .. }) => assert_eq!(codec, "zfp"),
            other => panic!("expected UnsupportedBound, got {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Sniffing, describing, and auto-decoding arbitrary short prefixes
    /// must never panic — they return clean errors instead.
    #[test]
    fn sniffing_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..17)) {
        let _ = registry().by_magic(&bytes);
        let _ = registry().describe(&bytes);
        prop_assert!(registry().decompress_auto(&bytes, 1).is_err());
        prop_assert!(registry().decompress_auto_f64(&bytes, 1).is_err());
    }

    /// Prefixes that *do* carry a registered magic still decode-fail
    /// cleanly (they are truncated garbage past the magic).
    #[test]
    fn magic_prefixed_garbage_fails_cleanly(
        which in 0..5usize,
        tail in proptest::collection::vec(any::<u8>(), 0..12),
    ) {
        let magics = [*b"SZL1", *b"SZLP", *b"SZPR", *b"ZFL1", *b"ZFLP"];
        let mut bytes = magics[which].to_vec();
        bytes.extend_from_slice(&tail);
        prop_assert!(registry().by_magic(&bytes).is_ok());
        prop_assert!(registry().decompress_auto(&bytes, 1).is_err());
    }
}
