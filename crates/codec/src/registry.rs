//! The static codec registry: name → codec and magic → codec resolution.

use crate::sz_adapter::SzCodec;
use crate::wire;
use crate::zfp_adapter::ZfpCodec;
use crate::{Codec, CodecError, ContainerInfo};
use std::sync::OnceLock;

static SZ: SzCodec = SzCodec::new();
static ZFP: ZfpCodec = ZfpCodec::new();
static REGISTRY: CodecRegistry = CodecRegistry { codecs: &[&SZ, &ZFP] };

/// The process-wide registry holding every built-in backend.
///
/// The built-in set is validated once, on first access: duplicate magics
/// across codecs are a registration error (never resolved
/// first-match-wins), so a misconfigured build fails loudly here rather
/// than silently shadowing a container.
pub fn registry() -> &'static CodecRegistry {
    static VALIDATED: OnceLock<()> = OnceLock::new();
    VALIDATED.get_or_init(|| {
        if let Err(e) = REGISTRY.validate() {
            panic!("built-in codec registry is invalid: {e:?}");
        }
    });
    &REGISTRY
}

/// Resolves codecs by CLI name and compressed containers by magic bytes.
///
/// Registration is static: the backends live in `static` items and the
/// registry is a `const` slice over them, so lookups are allocation-free
/// and `&'static dyn Codec` handles can be stored anywhere. Custom codec
/// sets go through [`CodecRegistry::with_codecs`], which rejects
/// duplicate/overlapping magics with a typed error at registration time.
pub struct CodecRegistry {
    codecs: &'static [&'static dyn Codec],
}

impl CodecRegistry {
    /// Build a registry over `codecs`, rejecting any container magic
    /// claimed by more than one codec (or twice by the same codec) with
    /// [`CodecError::DuplicateMagic`]. Magics are fixed four-byte strings,
    /// so "overlapping" and "duplicate" coincide.
    pub fn with_codecs(
        codecs: &'static [&'static dyn Codec],
    ) -> Result<CodecRegistry, CodecError> {
        let reg = CodecRegistry { codecs };
        reg.validate()?;
        Ok(reg)
    }

    /// Check the invariant [`CodecRegistry::with_codecs`] enforces.
    pub fn validate(&self) -> Result<(), CodecError> {
        let mut seen: Vec<([u8; 4], &'static str)> = Vec::new();
        for &codec in self.codecs {
            for info in codec.containers() {
                if let Some(&(magic, first)) = seen.iter().find(|(m, _)| *m == info.magic) {
                    return Err(CodecError::DuplicateMagic {
                        magic,
                        first,
                        second: codec.name(),
                    });
                }
                if info.magic == wire::WIRE_CONTAINER.magic {
                    return Err(CodecError::DuplicateMagic {
                        magic: info.magic,
                        first: "wire",
                        second: codec.name(),
                    });
                }
                seen.push((info.magic, codec.name()));
            }
        }
        Ok(())
    }

    /// All registered codecs, in registration order.
    pub fn codecs(&self) -> &'static [&'static dyn Codec] {
        self.codecs
    }

    /// Registered codec names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.codecs.iter().map(|c| c.name()).collect()
    }

    /// Every `(codec, container)` pair the registry knows, in
    /// registration order — the CLI renders its supported-container table
    /// from this.
    pub fn list(&self) -> Vec<(&'static dyn Codec, &'static ContainerInfo)> {
        self.codecs
            .iter()
            .flat_map(|&c| c.containers().iter().map(move |info| (c, info)))
            .collect()
    }

    /// Every magic this registry can resolve: each codec's containers in
    /// registration order, then the `LCW1` wire envelope.
    pub fn known_magics(&self) -> Vec<[u8; 4]> {
        let mut magics: Vec<[u8; 4]> = self.list().iter().map(|(_, i)| i.magic).collect();
        magics.push(wire::WIRE_CONTAINER.magic);
        magics
    }

    /// Look a codec up by its CLI name (ASCII case-insensitive, so the
    /// driver-facing `Compressor::name()` spellings "SZ"/"ZFP" also
    /// resolve).
    ///
    /// # Examples
    ///
    /// ```
    /// use lcpio_codec::registry;
    ///
    /// assert_eq!(registry().by_name("sz").unwrap().name(), "sz");
    /// assert_eq!(registry().by_name("ZFP").unwrap().name(), "zfp");
    /// assert!(registry().by_name("lz4").is_none());
    /// ```
    pub fn by_name(&self, name: &str) -> Option<&'static dyn Codec> {
        self.codecs.iter().copied().find(|c| c.name().eq_ignore_ascii_case(name))
    }

    /// Resolve the codec and container behind a stream's 4-byte magic.
    ///
    /// An `LCW1` stream resolves through its envelope to the codec owning
    /// the *inner* container; the returned [`ContainerInfo`] is then the
    /// wire envelope's ([`wire::WIRE_CONTAINER`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use lcpio_codec::{registry, CodecError};
    ///
    /// let (codec, info) = registry().by_magic(b"ZFL1....").unwrap();
    /// assert_eq!(codec.name(), "zfp");
    /// assert_eq!(info.magic_str(), "ZFL1");
    /// assert_eq!(registry().by_magic(b"NOPE").err(),
    ///            Some(CodecError::UnknownMagic(*b"NOPE")));
    /// ```
    pub fn by_magic(
        &self,
        stream: &[u8],
    ) -> Result<(&'static dyn Codec, &'static ContainerInfo), CodecError> {
        if stream.len() < 4 {
            return Err(CodecError::TooShort);
        }
        let magic: [u8; 4] = stream[..4].try_into().expect("4 bytes");
        if magic == wire::WIRE_CONTAINER.magic {
            let inner = wire::inner_magic(stream)?;
            for (codec, info) in self.list() {
                if info.magic == inner {
                    return Ok((codec, &wire::WIRE_CONTAINER));
                }
            }
            return Err(CodecError::UnknownMagic(inner));
        }
        for (codec, info) in self.list() {
            if info.magic == magic {
                return Ok((codec, info));
            }
        }
        Err(CodecError::UnknownMagic(magic))
    }

    /// One-line description of a stream's container, if recognized.
    pub fn describe(&self, stream: &[u8]) -> Option<&'static str> {
        self.by_magic(stream).ok().map(|(_, info)| info.description)
    }

    /// Decompress a stream into `f32` after sniffing its container.
    /// `LCW1` envelopes are unwrapped to their legacy container first, so
    /// wire and legacy streams decode identically.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcpio_codec::{registry, BoundSpec};
    ///
    /// let data: Vec<f32> = (0..256).map(|i| (i as f32 * 0.1).cos()).collect();
    /// let enc = registry().by_name("zfp").unwrap()
    ///     .compress(&data, &[256], BoundSpec::Absolute(1e-3)).unwrap();
    /// // No codec name needed on the way back — the magic decides.
    /// let (restored, dims) = registry().decompress_auto(&enc.bytes, 1).unwrap();
    /// assert_eq!(dims, vec![256]);
    /// assert_eq!(restored.len(), data.len());
    /// ```
    pub fn decompress_auto(
        &self,
        stream: &[u8],
        threads: usize,
    ) -> Result<(Vec<f32>, Vec<usize>), CodecError> {
        if wire::is_wire(stream) {
            let legacy = wire::unwrap(stream)?;
            let (codec, _) = self.by_magic(&legacy)?;
            return codec.decompress(&legacy, threads);
        }
        let (codec, _) = self.by_magic(stream)?;
        codec.decompress(stream, threads)
    }

    /// Decompress a stream into `f64` after sniffing its container.
    pub fn decompress_auto_f64(
        &self,
        stream: &[u8],
        threads: usize,
    ) -> Result<(Vec<f64>, Vec<usize>), CodecError> {
        if wire::is_wire(stream) {
            let legacy = wire::unwrap(stream)?;
            let (codec, _) = self.by_magic(&legacy)?;
            return codec.decompress_f64(&legacy, threads);
        }
        let (codec, _) = self.by_magic(stream)?;
        codec.decompress_f64(stream, threads)
    }
}

/// Render the registry's containers as a Markdown table (the README's
/// "Supported containers" section is generated from this and pinned by a
/// test). The last column shows how each legacy container maps onto the
/// LCW1 wire envelope.
pub fn render_container_table() -> String {
    let mut out = String::from(
        "| Magic | Codec | Container | LCW1 mapping |\n|-------|-------|-----------|--------------|\n",
    );
    out.push_str(&format!(
        "| `LCW1` | any | {} | — |\n",
        wire::WIRE_CONTAINER.description
    ));
    for (codec, info) in registry().list() {
        out.push_str(&format!(
            "| `{}` | {} | {} | container id `{}`, {} |\n",
            info.magic_str(),
            codec.name(),
            info.description,
            info.magic_str(),
            wire::frame_shape(info.magic),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoundSpec;

    #[test]
    fn names_and_lookup() {
        assert_eq!(registry().names(), vec!["sz", "zfp"]);
        assert_eq!(registry().by_name("sz").expect("sz").name(), "sz");
        assert_eq!(registry().by_name("ZFP").expect("zfp case-insensitive").name(), "zfp");
        assert!(registry().by_name("lz4").is_none());
    }

    #[test]
    fn list_covers_all_five_containers() {
        let magics: Vec<&str> = registry().list().iter().map(|(_, i)| i.magic_str()).collect();
        assert_eq!(magics, vec!["SZL1", "SZLP", "SZPR", "ZFL1", "ZFLP"]);
    }

    #[test]
    fn known_magics_include_wire() {
        let magics = registry().known_magics();
        assert_eq!(
            magics,
            vec![*b"SZL1", *b"SZLP", *b"SZPR", *b"ZFL1", *b"ZFLP", *b"LCW1"]
        );
    }

    #[test]
    fn magic_resolution() {
        let (codec, info) = registry().by_magic(b"SZLP....").expect("sz chunked");
        assert_eq!(codec.name(), "sz");
        assert_eq!(info.description, "SZ chunked (parallel) stream");
        assert_eq!(registry().by_magic(b"XY").err(), Some(CodecError::TooShort));
        assert_eq!(
            registry().by_magic(b"NOPE").err(),
            Some(CodecError::UnknownMagic(*b"NOPE"))
        );
    }

    #[test]
    fn unknown_magic_display_lists_known_magics() {
        let msg = CodecError::UnknownMagic(*b"NOPE").to_string();
        for magic in ["SZL1", "SZLP", "SZPR", "ZFL1", "ZFLP", "LCW1"] {
            assert!(msg.contains(magic), "message missing {magic}: {msg}");
        }
    }

    #[test]
    fn wire_stream_resolves_to_inner_codec() {
        let data: Vec<f32> = (0..512).map(|i| (i as f32 * 0.05).sin()).collect();
        let enc = registry()
            .by_name("zfp")
            .unwrap()
            .compress(&data, &[512], BoundSpec::Absolute(1e-3))
            .unwrap();
        let wrapped = wire::wrap(&enc.bytes).unwrap();
        let (codec, info) = registry().by_magic(&wrapped).unwrap();
        assert_eq!(codec.name(), "zfp");
        assert_eq!(info.magic, *b"LCW1");
        // Wire and legacy decode identically through decompress_auto.
        let (a, da) = registry().decompress_auto(&enc.bytes, 1).unwrap();
        let (b, db) = registry().decompress_auto(&wrapped, 1).unwrap();
        assert_eq!(da, db);
        assert_eq!(a, b);
    }

    /// A fake codec claiming SZ's serial magic, to exercise duplicate
    /// rejection.
    struct Clashing;
    impl Codec for Clashing {
        fn name(&self) -> &'static str {
            "clash"
        }
        fn containers(&self) -> &'static [ContainerInfo] {
            static C: [ContainerInfo; 1] =
                [ContainerInfo { magic: *b"SZL1", description: "imposter" }];
            &C
        }
        fn compress(
            &self,
            _: &[f32],
            _: &[usize],
            _: BoundSpec,
        ) -> Result<crate::Encoded, CodecError> {
            unimplemented!()
        }
        fn compress_chunked(
            &self,
            _: &[f32],
            _: &[usize],
            _: BoundSpec,
            _: usize,
        ) -> Result<crate::Encoded, CodecError> {
            unimplemented!()
        }
        fn compress_f64(
            &self,
            _: &[f64],
            _: &[usize],
            _: BoundSpec,
        ) -> Result<crate::Encoded, CodecError> {
            unimplemented!()
        }
        fn decompress(&self, _: &[u8], _: usize) -> Result<(Vec<f32>, Vec<usize>), CodecError> {
            unimplemented!()
        }
        fn decompress_f64(
            &self,
            _: &[u8],
            _: usize,
        ) -> Result<(Vec<f64>, Vec<usize>), CodecError> {
            unimplemented!()
        }
    }

    /// A fake codec claiming the wire envelope's magic.
    struct WireSquatter;
    impl Codec for WireSquatter {
        fn name(&self) -> &'static str {
            "squatter"
        }
        fn containers(&self) -> &'static [ContainerInfo] {
            static C: [ContainerInfo; 1] =
                [ContainerInfo { magic: *b"LCW1", description: "imposter" }];
            &C
        }
        fn compress(
            &self,
            _: &[f32],
            _: &[usize],
            _: BoundSpec,
        ) -> Result<crate::Encoded, CodecError> {
            unimplemented!()
        }
        fn compress_chunked(
            &self,
            _: &[f32],
            _: &[usize],
            _: BoundSpec,
            _: usize,
        ) -> Result<crate::Encoded, CodecError> {
            unimplemented!()
        }
        fn compress_f64(
            &self,
            _: &[f64],
            _: &[usize],
            _: BoundSpec,
        ) -> Result<crate::Encoded, CodecError> {
            unimplemented!()
        }
        fn decompress(&self, _: &[u8], _: usize) -> Result<(Vec<f32>, Vec<usize>), CodecError> {
            unimplemented!()
        }
        fn decompress_f64(
            &self,
            _: &[u8],
            _: usize,
        ) -> Result<(Vec<f64>, Vec<usize>), CodecError> {
            unimplemented!()
        }
    }

    #[test]
    fn duplicate_magic_rejected_at_registration() {
        static CLASH: Clashing = Clashing;
        static CODECS: [&'static dyn Codec; 3] = [&SZ, &ZFP, &CLASH];
        let err = CodecRegistry::with_codecs(&CODECS).err().expect("must reject");
        assert_eq!(
            err,
            CodecError::DuplicateMagic { magic: *b"SZL1", first: "sz", second: "clash" }
        );
        assert!(err.to_string().contains("SZL1"));

        static SQUAT: WireSquatter = WireSquatter;
        static CODECS2: [&'static dyn Codec; 2] = [&SZ, &SQUAT];
        let err = CodecRegistry::with_codecs(&CODECS2).err().expect("must reject");
        assert_eq!(
            err,
            CodecError::DuplicateMagic { magic: *b"LCW1", first: "wire", second: "squatter" }
        );

        // The built-in set is clean.
        registry().validate().expect("built-in registry validates");
        static OK: [&'static dyn Codec; 2] = [&SZ, &ZFP];
        assert!(CodecRegistry::with_codecs(&OK).is_ok());
    }

    #[test]
    fn table_lists_every_magic() {
        let table = render_container_table();
        for magic in ["LCW1", "SZL1", "SZLP", "SZPR", "ZFL1", "ZFLP"] {
            assert!(table.contains(magic), "table missing {magic}:\n{table}");
        }
    }
}
