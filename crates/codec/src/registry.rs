//! The static codec registry: name → codec and magic → codec resolution.

use crate::sz_adapter::SzCodec;
use crate::zfp_adapter::ZfpCodec;
use crate::{Codec, CodecError, ContainerInfo};

static SZ: SzCodec = SzCodec::new();
static ZFP: ZfpCodec = ZfpCodec::new();
static REGISTRY: CodecRegistry = CodecRegistry { codecs: &[&SZ, &ZFP] };

/// The process-wide registry holding every built-in backend.
pub fn registry() -> &'static CodecRegistry {
    &REGISTRY
}

/// Resolves codecs by CLI name and compressed containers by magic bytes.
///
/// Registration is static: the backends live in `static` items and the
/// registry is a `const` slice over them, so lookups are allocation-free
/// and `&'static dyn Codec` handles can be stored anywhere.
pub struct CodecRegistry {
    codecs: &'static [&'static dyn Codec],
}

impl CodecRegistry {
    /// All registered codecs, in registration order.
    pub fn codecs(&self) -> &'static [&'static dyn Codec] {
        self.codecs
    }

    /// Registered codec names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.codecs.iter().map(|c| c.name()).collect()
    }

    /// Every `(codec, container)` pair the registry knows, in
    /// registration order — the CLI renders its supported-container table
    /// from this.
    pub fn list(&self) -> Vec<(&'static dyn Codec, &'static ContainerInfo)> {
        self.codecs
            .iter()
            .flat_map(|&c| c.containers().iter().map(move |info| (c, info)))
            .collect()
    }

    /// Look a codec up by its CLI name (ASCII case-insensitive, so the
    /// driver-facing `Compressor::name()` spellings "SZ"/"ZFP" also
    /// resolve).
    ///
    /// # Examples
    ///
    /// ```
    /// use lcpio_codec::registry;
    ///
    /// assert_eq!(registry().by_name("sz").unwrap().name(), "sz");
    /// assert_eq!(registry().by_name("ZFP").unwrap().name(), "zfp");
    /// assert!(registry().by_name("lz4").is_none());
    /// ```
    pub fn by_name(&self, name: &str) -> Option<&'static dyn Codec> {
        self.codecs.iter().copied().find(|c| c.name().eq_ignore_ascii_case(name))
    }

    /// Resolve the codec and container behind a stream's 4-byte magic.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcpio_codec::{registry, CodecError};
    ///
    /// let (codec, info) = registry().by_magic(b"ZFL1....").unwrap();
    /// assert_eq!(codec.name(), "zfp");
    /// assert_eq!(info.magic_str(), "ZFL1");
    /// assert_eq!(registry().by_magic(b"NOPE").err(),
    ///            Some(CodecError::UnknownMagic(*b"NOPE")));
    /// ```
    pub fn by_magic(
        &self,
        stream: &[u8],
    ) -> Result<(&'static dyn Codec, &'static ContainerInfo), CodecError> {
        if stream.len() < 4 {
            return Err(CodecError::TooShort);
        }
        let magic: [u8; 4] = stream[..4].try_into().expect("4 bytes");
        for (codec, info) in self.list() {
            if info.magic == magic {
                return Ok((codec, info));
            }
        }
        Err(CodecError::UnknownMagic(magic))
    }

    /// One-line description of a stream's container, if recognized.
    pub fn describe(&self, stream: &[u8]) -> Option<&'static str> {
        self.by_magic(stream).ok().map(|(_, info)| info.description)
    }

    /// Decompress a stream into `f32` after sniffing its container.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcpio_codec::{registry, BoundSpec};
    ///
    /// let data: Vec<f32> = (0..256).map(|i| (i as f32 * 0.1).cos()).collect();
    /// let enc = registry().by_name("zfp").unwrap()
    ///     .compress(&data, &[256], BoundSpec::Absolute(1e-3)).unwrap();
    /// // No codec name needed on the way back — the magic decides.
    /// let (restored, dims) = registry().decompress_auto(&enc.bytes, 1).unwrap();
    /// assert_eq!(dims, vec![256]);
    /// assert_eq!(restored.len(), data.len());
    /// ```
    pub fn decompress_auto(
        &self,
        stream: &[u8],
        threads: usize,
    ) -> Result<(Vec<f32>, Vec<usize>), CodecError> {
        let (codec, _) = self.by_magic(stream)?;
        codec.decompress(stream, threads)
    }

    /// Decompress a stream into `f64` after sniffing its container.
    pub fn decompress_auto_f64(
        &self,
        stream: &[u8],
        threads: usize,
    ) -> Result<(Vec<f64>, Vec<usize>), CodecError> {
        let (codec, _) = self.by_magic(stream)?;
        codec.decompress_f64(stream, threads)
    }
}

/// Render the registry's containers as a Markdown table (the README's
/// "Supported containers" section is generated from this and pinned by a
/// test).
pub fn render_container_table() -> String {
    let mut out = String::from("| Magic | Codec | Container |\n|-------|-------|-----------|\n");
    for (codec, info) in registry().list() {
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            info.magic_str(),
            codec.name(),
            info.description
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_lookup() {
        assert_eq!(registry().names(), vec!["sz", "zfp"]);
        assert_eq!(registry().by_name("sz").expect("sz").name(), "sz");
        assert_eq!(registry().by_name("ZFP").expect("zfp case-insensitive").name(), "zfp");
        assert!(registry().by_name("lz4").is_none());
    }

    #[test]
    fn list_covers_all_five_containers() {
        let magics: Vec<&str> = registry().list().iter().map(|(_, i)| i.magic_str()).collect();
        assert_eq!(magics, vec!["SZL1", "SZLP", "SZPR", "ZFL1", "ZFLP"]);
    }

    #[test]
    fn magic_resolution() {
        let (codec, info) = registry().by_magic(b"SZLP....").expect("sz chunked");
        assert_eq!(codec.name(), "sz");
        assert_eq!(info.description, "SZ chunked (parallel) stream");
        assert_eq!(registry().by_magic(b"XY").err(), Some(CodecError::TooShort));
        assert_eq!(
            registry().by_magic(b"NOPE").err(),
            Some(CodecError::UnknownMagic(*b"NOPE"))
        );
    }

    #[test]
    fn table_lists_every_magic() {
        let table = render_container_table();
        for magic in ["SZL1", "SZLP", "SZPR", "ZFL1", "ZFLP"] {
            assert!(table.contains(magic), "table missing {magic}:\n{table}");
        }
    }
}
