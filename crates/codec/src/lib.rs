#![warn(missing_docs)]
//! # lcpio-codec — unified codec abstraction and container registry
//!
//! The paper treats SZ and ZFP as interchangeable error-bounded
//! compressors feeding the same power/energy model (P(f) = a·f^b + c,
//! Tables IV–V). This crate makes that interchangeability structural: an
//! object-safe [`Codec`] trait with one adapter per backend, and a static
//! [`CodecRegistry`] that resolves codecs by CLI name and compressed
//! containers by their magic bytes. Drivers, the CLI, and the benches all
//! dispatch through the registry, so adding a third backend is a
//! one-crate change rather than a shotgun edit across every call site.
//!
//! ```
//! use lcpio_codec::{registry, BoundSpec};
//!
//! let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
//! let codec = registry().by_name("sz").unwrap();
//! let out = codec.compress(&data, &[4096], BoundSpec::Absolute(1e-3)).unwrap();
//! // Decode without knowing which codec produced the stream:
//! let (restored, dims) = registry().decompress_auto(&out.bytes, 1).unwrap();
//! assert_eq!(dims, vec![4096]);
//! assert_eq!(restored.len(), data.len());
//! ```

pub mod policy;
mod registry;
mod sz_adapter;
pub mod wire;
mod zfp_adapter;

pub use policy::{ChunkPlan, ChunkPolicy, CodecId, FixedPolicy, HeuristicPolicy};
pub use registry::{registry, render_container_table, CodecRegistry};
pub use sz_adapter::SzCodec;
pub use zfp_adapter::ZfpCodec;

use lcpio_sz::SzError;
use lcpio_wire::WireError;
use lcpio_zfp::ZfpError;

/// How the compression error is bounded, across all backends.
///
/// Each codec supports a subset: SZ accepts all three; ZFP accepts only
/// [`BoundSpec::Absolute`] (its fixed-accuracy mode) and reports
/// [`CodecError::UnsupportedBound`] otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundSpec {
    /// `|x̂ − x| ≤ eb` for every element (the paper's mode).
    Absolute(f64),
    /// `|x̂ − x| ≤ r · (max − min)` over the dataset (SZ "REL").
    ValueRangeRelative(f64),
    /// `|x̂ − x| ≤ r · |x|` for every element (SZ "PW_REL").
    PointwiseRelative(f64),
}

impl std::fmt::Display for BoundSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundSpec::Absolute(eb) => write!(f, "absolute {eb}"),
            BoundSpec::ValueRangeRelative(r) => write!(f, "value-range-relative {r}"),
            BoundSpec::PointwiseRelative(r) => write!(f, "pointwise-relative {r}"),
        }
    }
}

/// Codec-neutral statistics from one compression run.
///
/// The fields are the least common denominator the
/// [`CostModel`](https://docs.rs/lcpio-core) needs to turn a run into a
/// work profile: SZ maps `unpredictable → literal_elements` and
/// `huffman_bits → coded_bits`; ZFP maps `payload_bits → coded_bits` and
/// has no literal path (`literal_elements = 0`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CodecStats {
    /// Input element count.
    pub elements: u64,
    /// Input bytes (`elements × element size`).
    pub input_bytes: u64,
    /// Output bytes including the container envelope.
    pub output_bytes: u64,
    /// Elements that escaped the predictive/transform path and were stored
    /// as raw literals (SZ's unpredictable count; 0 for ZFP).
    pub literal_elements: u64,
    /// Bits spent in the entropy-coded payload (SZ Huffman bits, ZFP
    /// bit-plane payload bits).
    pub coded_bits: u64,
}

impl CodecStats {
    /// Compression ratio `input/output`.
    pub fn ratio(&self) -> f64 {
        if self.output_bytes == 0 {
            0.0
        } else {
            self.input_bytes as f64 / self.output_bytes as f64
        }
    }

    /// Bits per element in the output.
    pub fn bits_per_element(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.output_bytes as f64 * 8.0 / self.elements as f64
        }
    }

    /// Fraction of elements that did *not* escape to literals.
    pub fn hit_rate(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            1.0 - self.literal_elements as f64 / self.elements as f64
        }
    }
}

/// A compressed stream plus the statistics of the run that produced it.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// The serialized compressed stream (self-describing via its magic).
    pub bytes: Vec<u8>,
    /// Codec-neutral counters collected during compression.
    pub stats: CodecStats,
}

/// One container format a codec can produce and decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerInfo {
    /// The 4-byte magic prefix identifying the container.
    pub magic: [u8; 4],
    /// Human-readable one-liner (also used by the CLI's `info` command).
    pub description: &'static str,
}

impl ContainerInfo {
    /// The magic rendered as ASCII (all registered magics are ASCII).
    pub fn magic_str(&self) -> &str {
        std::str::from_utf8(&self.magic).unwrap_or("????")
    }
}

/// Errors surfaced by the codec abstraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CodecError {
    /// The SZ backend failed.
    Sz(SzError),
    /// The ZFP backend failed.
    Zfp(ZfpError),
    /// The requested error-bound mode is not supported by this codec.
    UnsupportedBound {
        /// Codec that rejected the request.
        codec: &'static str,
        /// The offending bound.
        bound: BoundSpec,
    },
    /// No registered container matches the stream's 4-byte magic.
    /// `Display` lists every known magic so the holder of a mystery file
    /// can see what this build could have decoded.
    UnknownMagic([u8; 4]),
    /// The stream is shorter than a 4-byte magic.
    TooShort,
    /// Two registered codecs claim the same container magic (rejected at
    /// registration time — resolution is never first-match-wins).
    DuplicateMagic {
        /// The contested magic.
        magic: [u8; 4],
        /// Codec that registered it first.
        first: &'static str,
        /// Codec that tried to register it again.
        second: &'static str,
    },
    /// The LCW1 wire envelope layer failed.
    Wire(WireError),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Sz(e) => write!(f, "{e}"),
            CodecError::Zfp(e) => write!(f, "{e}"),
            CodecError::UnsupportedBound { codec, bound } => {
                write!(f, "codec `{codec}` does not support {bound} error bounds")
            }
            CodecError::UnknownMagic(m) => {
                let known: Vec<String> = registry::registry()
                    .known_magics()
                    .iter()
                    .map(|m| String::from_utf8_lossy(m).into_owned())
                    .collect();
                write!(
                    f,
                    "unknown stream magic {:?} (known: {})",
                    String::from_utf8_lossy(m),
                    known.join(", ")
                )
            }
            CodecError::TooShort => write!(f, "stream too short"),
            CodecError::DuplicateMagic { magic, first, second } => write!(
                f,
                "container magic {:?} registered by both `{first}` and `{second}`",
                String::from_utf8_lossy(magic)
            ),
            CodecError::Wire(e) => write!(f, "wire envelope: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<WireError> for CodecError {
    fn from(e: WireError) -> Self {
        CodecError::Wire(e)
    }
}

impl From<SzError> for CodecError {
    fn from(e: SzError) -> Self {
        CodecError::Sz(e)
    }
}

impl From<ZfpError> for CodecError {
    fn from(e: ZfpError) -> Self {
        CodecError::Zfp(e)
    }
}

/// An error-bounded lossy compressor backend.
///
/// The trait is object-safe — the registry hands out `&'static dyn Codec`
/// — and deliberately narrow: `f32`/`f64` fields, one bound per call, and
/// self-describing output streams. Backend-specific knobs (SZ predictor
/// modes, ZFP fixed-rate/precision) stay on the backend crates; code that
/// ablates those knobs is expected to call the backend directly.
///
/// # Examples
///
/// Round-trip a field through whichever backend the registry hands out:
///
/// ```
/// use lcpio_codec::{registry, BoundSpec, Codec};
///
/// let codec: &'static dyn Codec = registry().by_name("sz").unwrap();
/// let field: Vec<f32> = (0..512).map(|i| (i as f32 * 0.05).sin()).collect();
/// let enc = codec.compress(&field, &[512], BoundSpec::Absolute(1e-3)).unwrap();
/// assert!(enc.stats.ratio() > 1.0);
///
/// let (restored, dims) = codec.decompress(&enc.bytes, 1).unwrap();
/// assert_eq!(dims, vec![512]);
/// assert!(restored.iter().zip(&field).all(|(r, x)| (r - x).abs() <= 1e-3 * 1.001));
/// ```
pub trait Codec: Send + Sync {
    /// Registry/CLI name (lowercase, e.g. `"sz"`).
    fn name(&self) -> &'static str;

    /// Container formats this codec produces and decodes.
    fn containers(&self) -> &'static [ContainerInfo];

    /// Compress a whole field serially.
    fn compress(
        &self,
        data: &[f32],
        dims: &[usize],
        bound: BoundSpec,
    ) -> Result<Encoded, CodecError>;

    /// Compress using up to `threads` workers (0 ⇒ all available).
    ///
    /// Falls back to the serial container when the bound has no chunked
    /// path (SZ pointwise-relative).
    fn compress_chunked(
        &self,
        data: &[f32],
        dims: &[usize],
        bound: BoundSpec,
        threads: usize,
    ) -> Result<Encoded, CodecError>;

    /// Compress for *work characterization* (cost-model sampling) rather
    /// than for a specific thread budget.
    ///
    /// The default is the serial path. A codec whose chunked container is
    /// thread-count-invariant may instead return that (SZ does), so sweep
    /// drivers characterize the same stream the parallel dump writes.
    fn compress_for_profile(
        &self,
        data: &[f32],
        dims: &[usize],
        bound: BoundSpec,
    ) -> Result<Encoded, CodecError> {
        self.compress(data, dims, bound)
    }

    /// Compress an `f64` field serially.
    fn compress_f64(
        &self,
        data: &[f64],
        dims: &[usize],
        bound: BoundSpec,
    ) -> Result<Encoded, CodecError>;

    /// Decompress any of this codec's containers into `f32`, using up to
    /// `threads` workers where the container supports it.
    fn decompress(&self, stream: &[u8], threads: usize)
        -> Result<(Vec<f32>, Vec<usize>), CodecError>;

    /// Decompress any of this codec's containers into `f64`.
    fn decompress_f64(
        &self,
        stream: &[u8],
        threads: usize,
    ) -> Result<(Vec<f64>, Vec<usize>), CodecError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        let s = CodecStats {
            elements: 100,
            input_bytes: 400,
            output_bytes: 100,
            literal_elements: 25,
            coded_bits: 640,
        };
        assert!((s.ratio() - 4.0).abs() < 1e-12);
        assert!((s.bits_per_element() - 8.0).abs() < 1e-12);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        let zero = CodecStats::default();
        assert_eq!(zero.ratio(), 0.0);
        assert_eq!(zero.bits_per_element(), 0.0);
        assert_eq!(zero.hit_rate(), 0.0);
    }

    #[test]
    fn error_display_matches_backends() {
        // CoreError's historical Display strings wrap these verbatim, so
        // they must pass straight through.
        assert_eq!(
            CodecError::Sz(SzError::InvalidDims).to_string(),
            SzError::InvalidDims.to_string()
        );
        assert_eq!(
            CodecError::Zfp(ZfpError::InvalidMode).to_string(),
            ZfpError::InvalidMode.to_string()
        );
        let ub = CodecError::UnsupportedBound {
            codec: "zfp",
            bound: BoundSpec::PointwiseRelative(1e-3),
        };
        assert!(ub.to_string().contains("zfp"));
        assert!(ub.to_string().contains("pointwise-relative"));
    }
}
