//! [`Codec`] adapter over `lcpio-zfp`.

use crate::{BoundSpec, Codec, CodecError, CodecStats, ContainerInfo, Encoded};
use lcpio_zfp as zfp;
use lcpio_zfp::ZfpStats;

/// The ZFP backend: block floating point, lifted transform, embedded
/// bit-plane coding. Only fixed-accuracy (absolute) bounds travel through
/// the portable trait; fixed-rate/precision stay backend-specific.
///
/// ZFP's chunked path is allocation-light (no per-worker scratch type),
/// so the adapter carries no buffer pool.
pub struct ZfpCodec;

/// Containers the ZFP adapter produces/decodes. Descriptions are the
/// CLI's historical `info` strings — tests pin them.
static ZFP_CONTAINERS: [ContainerInfo; 2] = [
    ContainerInfo { magic: zfp::MAGIC, description: "ZFP compressed stream" },
    ContainerInfo {
        magic: zfp::CHUNKED_MAGIC,
        description: "ZFP chunked (parallel) stream",
    },
];

impl ZfpCodec {
    /// New adapter (usable in a `static`).
    pub const fn new() -> Self {
        ZfpCodec
    }

    /// ZFP supports only absolute (fixed-accuracy) bounds.
    fn mode(bound: BoundSpec) -> Result<zfp::ZfpMode, CodecError> {
        match bound {
            BoundSpec::Absolute(eb) => Ok(zfp::ZfpMode::FixedAccuracy(eb)),
            other => Err(CodecError::UnsupportedBound { codec: "zfp", bound: other }),
        }
    }
}

impl Default for ZfpCodec {
    fn default() -> Self {
        Self::new()
    }
}

/// ZFP stats → codec-neutral stats: no literal path, coded bits are the
/// bit-plane payload.
fn convert(stats: &ZfpStats) -> CodecStats {
    CodecStats {
        elements: stats.elements,
        input_bytes: stats.input_bytes,
        output_bytes: stats.output_bytes,
        literal_elements: 0,
        coded_bits: stats.payload_bits,
    }
}

fn encoded(out: zfp::ZfpCompressed) -> Encoded {
    Encoded { stats: convert(&out.stats), bytes: out.bytes }
}

impl Codec for ZfpCodec {
    fn name(&self) -> &'static str {
        "zfp"
    }

    fn containers(&self) -> &'static [ContainerInfo] {
        &ZFP_CONTAINERS
    }

    fn compress(
        &self,
        data: &[f32],
        dims: &[usize],
        bound: BoundSpec,
    ) -> Result<Encoded, CodecError> {
        Ok(encoded(zfp::compress(data, dims, &Self::mode(bound)?)?))
    }

    fn compress_chunked(
        &self,
        data: &[f32],
        dims: &[usize],
        bound: BoundSpec,
        threads: usize,
    ) -> Result<Encoded, CodecError> {
        Ok(encoded(zfp::compress_chunked(data, dims, &Self::mode(bound)?, threads)?))
    }

    // compress_for_profile: default (serial). Unlike SZ, ZFP's chunked
    // framing depends on the worker count, so the thread-neutral stream
    // to characterize is the serial one.

    fn compress_f64(
        &self,
        data: &[f64],
        dims: &[usize],
        bound: BoundSpec,
    ) -> Result<Encoded, CodecError> {
        Ok(encoded(zfp::compress_f64(data, dims, &Self::mode(bound)?)?))
    }

    fn decompress(
        &self,
        stream: &[u8],
        threads: usize,
    ) -> Result<(Vec<f32>, Vec<usize>), CodecError> {
        if stream.starts_with(&zfp::CHUNKED_MAGIC) {
            Ok(zfp::decompress_chunked::<f32>(stream, threads)?)
        } else {
            Ok(zfp::decompress(stream)?)
        }
    }

    fn decompress_f64(
        &self,
        stream: &[u8],
        threads: usize,
    ) -> Result<(Vec<f64>, Vec<usize>), CodecError> {
        if stream.starts_with(&zfp::CHUNKED_MAGIC) {
            Ok(zfp::decompress_chunked::<f64>(stream, threads)?)
        } else {
            Ok(zfp::decompress_f64(stream)?)
        }
    }
}
