//! Per-chunk codec/DVFS policy layer.
//!
//! Every chunk that flows through the pipeline is assigned a [`ChunkPlan`]
//! — which codec to run, at what error bound, and at what simulated CPU
//! frequency — by a [`ChunkPolicy`]. The policies in this crate are the
//! ones that need nothing beyond the codecs themselves:
//!
//! * [`FixedPolicy`] reproduces the legacy behaviour: one codec, one
//!   bound, one frequency for every chunk (byte-identical output to the
//!   pre-policy pipeline).
//! * [`HeuristicPolicy`] samples each chunk cheaply — second-difference
//!   smoothness plus the SZ predictor hit ratio on a small contiguous
//!   window — and routes smooth/predictable chunks to SZ and rough ones
//!   to ZFP.
//!
//! The energy-aware `ParetoAdaptive` policy lives in `lcpio-core`
//! (`core::policy`), because it needs the fitted power models and the
//! Pareto machinery that sit above this crate in the dependency graph.
//!
//! Chunk codec ids are also what the per-frame codec-tag TLV
//! ([`lcpio_wire::tag::CODEC_TAGS`]) carries on the wire, one byte per
//! frame, so a single LCW1 container can hold mixed-codec chunks.

use crate::{registry, BoundSpec, CodecStats};

/// Wire-stable codec identifier, one byte per chunk on the wire.
///
/// `Raw` tags a chunk stored as uncompressed little-endian `f32`s (the
/// pipeline's fallback framing); the other ids name registry codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CodecId {
    /// Uncompressed little-endian f32 payload (pipeline raw fallback).
    Raw = 0,
    /// The SZ prediction + quantization codec.
    Sz = 1,
    /// The ZFP transform codec.
    Zfp = 2,
}

impl CodecId {
    /// Every id, in wire order.
    pub const ALL: [CodecId; 3] = [CodecId::Raw, CodecId::Sz, CodecId::Zfp];

    /// Decode a wire tag byte. Unknown ids are `None` — the decode path
    /// turns that into a typed error, never a panic.
    pub fn from_u8(v: u8) -> Option<CodecId> {
        match v {
            0 => Some(CodecId::Raw),
            1 => Some(CodecId::Sz),
            2 => Some(CodecId::Zfp),
            _ => None,
        }
    }

    /// The wire tag byte.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Registry name for compressing codecs (`"raw"` for the fallback).
    pub fn name(self) -> &'static str {
        match self {
            CodecId::Raw => "raw",
            CodecId::Sz => "sz",
            CodecId::Zfp => "zfp",
        }
    }
}

/// The per-chunk decision a policy hands to the pipeline: codec, error
/// bound, and the simulated DVFS frequency the energy model should
/// attribute the chunk's compression work at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkPlan {
    /// Codec to compress this chunk with.
    pub codec: CodecId,
    /// Error bound for this chunk.
    pub bound: BoundSpec,
    /// Simulated CPU frequency (GHz) for the chunk's compression phase.
    pub f_ghz: f64,
}

/// A per-chunk codec/frequency decision procedure.
///
/// `plan` must be a *pure function* of the chunk contents and sequence
/// number: the pipeline calls it once per chunk before streaming begins
/// (the wire header carries the per-frame codec tags up front), and the
/// sequential and overlapped paths must produce byte-identical containers.
pub trait ChunkPolicy: Send + Sync {
    /// Short policy name (`"fixed"`, `"heuristic"`, `"adaptive"`).
    fn name(&self) -> &'static str;

    /// Decide the plan for chunk `seq` with contents `chunk`.
    fn plan(&self, chunk: &[f32], seq: usize) -> ChunkPlan;
}

/// The legacy behaviour as a policy: every chunk gets the same plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedPolicy {
    /// The plan applied to every chunk.
    pub plan: ChunkPlan,
}

impl FixedPolicy {
    /// Fixed policy for one codec/bound/frequency triple.
    pub fn new(codec: CodecId, bound: BoundSpec, f_ghz: f64) -> Self {
        FixedPolicy { plan: ChunkPlan { codec, bound, f_ghz } }
    }
}

impl ChunkPolicy for FixedPolicy {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn plan(&self, _chunk: &[f32], _seq: usize) -> ChunkPlan {
        self.plan
    }
}

/// Elements sampled (as one contiguous window) per chunk by the
/// estimators. A window keeps the SZ predictor's locality intact, unlike
/// a strided sample, and caps the planning cost at a small fraction of
/// the chunk's compression time.
pub const SAMPLE_WINDOW: usize = 2048;

/// Ranges below this are treated as "constant field": smaller than any
/// normal f64, so subnormal-only and constant chunks take the same guarded
/// path instead of dividing by a (sub)normal-zero range.
const MIN_RANGE: f64 = f64::MIN_POSITIVE;

/// Steepness of the smoothness curve: decorrelated noise has
/// `mean|Δ²x| / range ≈ 0.5`, which must land well below any routing
/// threshold, while smooth fields (relative curvature ≲ 1e-2) stay near 1.
const SMOOTHNESS_GAIN: f64 = 8.0;

/// Second-difference smoothness of a chunk, in `[0, 1]` and always finite.
///
/// Computed as `1 / (1 + 8 · mean|Δ²x| / range)` over the finite
/// elements: 1.0 for fields a linear predictor nails exactly, falling
/// toward 0 as neighbouring values decorrelate (iid noise scores ≈ 0.2).
/// The guarded cases all return exact constants rather than NaN:
///
/// * empty, single-element, or two-element chunks → 1.0 (nothing to
///   predict across);
/// * constant chunks (range 0) → 1.0;
/// * all-NaN chunks (no finite triple) → 1.0 — deterministic, and the
///   codec choice is irrelevant for a field with no finite content;
/// * subnormal-only chunks (range below `MIN_RANGE`) → 1.0, avoiding a
///   subnormal/subnormal division.
pub fn smoothness(chunk: &[f32]) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in chunk {
        let x = x as f64;
        if x.is_finite() {
            lo = lo.min(x);
            hi = hi.max(x);
        }
    }
    let range = hi - lo; // NaN if no finite element was seen
    if !range.is_finite() || range < MIN_RANGE {
        return 1.0;
    }
    let mut sum = 0.0f64;
    let mut n = 0u64;
    for w in chunk.windows(3) {
        let (a, b, c) = (w[0] as f64, w[1] as f64, w[2] as f64);
        let d2 = a - 2.0 * b + c;
        if d2.is_finite() {
            sum += d2.abs();
            n += 1;
        }
    }
    if n == 0 {
        return 1.0;
    }
    let rel = (sum / n as f64) / range;
    let s = 1.0 / (1.0 + SMOOTHNESS_GAIN * rel);
    debug_assert!(s.is_finite() && (0.0..=1.0).contains(&s));
    s
}

/// Compress a contiguous sample window of `chunk` with the named registry
/// codec and return the run's stats, or `None` if the codec rejects the
/// request (e.g. ZFP with a non-absolute bound), the window is zero, or
/// the chunk is empty.
///
/// The window is taken from the middle of the chunk (up to `max_window`
/// elements) so edge padding does not skew the estimate. Used by
/// [`HeuristicPolicy`] for the SZ hit ratio (at [`SAMPLE_WINDOW`]) and by
/// the core `ParetoAdaptive` policy to predict per-arm ratio and work.
pub fn sample_stats(
    codec_name: &str,
    chunk: &[f32],
    bound: BoundSpec,
    max_window: usize,
) -> Option<CodecStats> {
    if chunk.is_empty() || max_window == 0 {
        return None;
    }
    let n = chunk.len().min(max_window);
    let start = (chunk.len() - n) / 2;
    let window = &chunk[start..start + n];
    if codec_name == "sz" {
        // SZ's fixed per-call cost is proportional to the quantizer
        // radius, which at the default dwarfs the window itself; probe at
        // a window-sized radius so planning stays a small fraction of the
        // chunk's compression time (see `sz_adapter::probe_stats`).
        let radius = (n as u32).max(PROBE_MIN_RADIUS);
        if let Some(stats) = crate::sz_adapter::probe_stats(window, bound, radius) {
            return Some(stats);
        }
    }
    let codec = registry().by_name(codec_name)?;
    codec.compress(window, &[n], bound).ok().map(|e| e.stats)
}

/// Floor for the probe quantizer radius: tiny windows still get enough
/// bins that quantizable residuals are not misclassified as literals.
const PROBE_MIN_RADIUS: u32 = 64;

/// SZ predictor hit ratio on a sample window, in `[0, 1]` and always
/// finite. Returns 0.0 when the sample cannot be compressed (empty chunk
/// or backend error), which steers the heuristic toward the
/// transform-domain codec.
pub fn sample_hit_rate(chunk: &[f32], bound: BoundSpec) -> f64 {
    match sample_stats("sz", chunk, bound, SAMPLE_WINDOW) {
        Some(stats) => stats.hit_rate().clamp(0.0, 1.0),
        None => 0.0,
    }
}

/// Smoothness / predictor-hit-ratio routing policy.
///
/// Scores each chunk as the *product* of [`smoothness`] and
/// [`sample_hit_rate`] — either a rough field or a poorly-predicted one
/// drags the score down. Chunks scoring at or above the threshold go to
/// SZ (whose linear predictor thrives on smooth fields), the rest to ZFP
/// (whose block transform degrades more gracefully on rough data).
/// Bounds ZFP cannot honour (non-absolute modes) force SZ regardless of
/// score. Both estimators are guarded, so the score is always finite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeuristicPolicy {
    /// Error bound applied to every chunk.
    pub bound: BoundSpec,
    /// Simulated frequency attributed to every chunk's compression.
    pub f_ghz: f64,
    /// Score at or above which a chunk routes to SZ.
    pub sz_threshold: f64,
}

impl HeuristicPolicy {
    /// Default routing threshold: CESM-like smooth fields score ≈ 0.9+,
    /// HACC-like particle data ≈ 0.3 or below, so the midpoint separates
    /// them with wide margins on both sides.
    pub const DEFAULT_THRESHOLD: f64 = 0.6;

    /// Heuristic policy at the given bound and simulated frequency.
    pub fn new(bound: BoundSpec, f_ghz: f64) -> Self {
        HeuristicPolicy { bound, f_ghz, sz_threshold: Self::DEFAULT_THRESHOLD }
    }

    /// The routing score for a chunk (smoothness × hit ratio).
    pub fn score(&self, chunk: &[f32]) -> f64 {
        let s = smoothness(chunk) * sample_hit_rate(chunk, self.bound);
        debug_assert!(s.is_finite());
        s
    }
}

impl ChunkPolicy for HeuristicPolicy {
    fn name(&self) -> &'static str {
        "heuristic"
    }

    fn plan(&self, chunk: &[f32], _seq: usize) -> ChunkPlan {
        let absolute = matches!(self.bound, BoundSpec::Absolute(_));
        let codec = if !absolute || self.score(chunk) >= self.sz_threshold {
            CodecId::Sz
        } else {
            CodecId::Zfp
        };
        ChunkPlan { codec, bound: self.bound, f_ghz: self.f_ghz }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_chunk(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.01).sin()).collect()
    }

    fn rough_chunk(n: usize) -> Vec<f32> {
        // Deterministic pseudo-noise: decorrelated neighbours.
        let mut state = 0x9E3779B97F4A7C15u64;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn codec_id_roundtrips_and_rejects_unknown() {
        for id in CodecId::ALL {
            assert_eq!(CodecId::from_u8(id.as_u8()), Some(id));
        }
        for v in 3..=255u8 {
            assert_eq!(CodecId::from_u8(v), None);
        }
        assert_eq!(CodecId::Sz.name(), "sz");
        assert_eq!(CodecId::Zfp.name(), "zfp");
        assert_eq!(CodecId::Raw.name(), "raw");
    }

    #[test]
    fn smoothness_separates_smooth_from_rough() {
        assert!(smoothness(&smooth_chunk(4096)) > 0.9);
        assert!(smoothness(&rough_chunk(4096)) < 0.6);
    }

    // Satellite regression tests: the estimators must stay finite on
    // degenerate fields — constant, all-NaN, subnormal-only — with no
    // div-by-zero or NaN plan scores.
    #[test]
    fn estimators_guard_degenerate_fields() {
        let bound = BoundSpec::Absolute(1e-3);
        let constant = vec![4.25f32; 1024];
        let all_nan = vec![f32::NAN; 1024];
        let subnormal = vec![f32::from_bits(1); 1024]; // smallest positive subnormal
        let mixed_subnormal: Vec<f32> =
            (0..1024).map(|i| f32::from_bits((i % 7 + 1) as u32)).collect();
        let empty: Vec<f32> = Vec::new();
        let tiny = vec![1.0f32, 2.0];
        let inf_laced: Vec<f32> =
            (0..1024).map(|i| if i % 5 == 0 { f32::INFINITY } else { i as f32 }).collect();

        for (name, chunk) in [
            ("constant", &constant),
            ("all_nan", &all_nan),
            ("subnormal", &subnormal),
            ("mixed_subnormal", &mixed_subnormal),
            ("empty", &empty),
            ("tiny", &tiny),
            ("inf_laced", &inf_laced),
        ] {
            let s = smoothness(chunk);
            assert!(s.is_finite() && (0.0..=1.0).contains(&s), "{name}: smoothness {s}");
            let h = sample_hit_rate(chunk, bound);
            assert!(h.is_finite() && (0.0..=1.0).contains(&h), "{name}: hit rate {h}");
            let pol = HeuristicPolicy::new(bound, 2.0);
            let score = pol.score(chunk);
            assert!(score.is_finite(), "{name}: score {score}");
            let plan = pol.plan(chunk, 0);
            assert!(plan.f_ghz.is_finite(), "{name}: plan frequency");
        }
        // Degenerate-but-smooth fields must take the SZ path (smoothness
        // guard returns 1.0, SZ encodes constants in a handful of bytes).
        let pol = HeuristicPolicy::new(bound, 2.0);
        assert_eq!(pol.plan(&constant, 0).codec, CodecId::Sz);
    }

    #[test]
    fn heuristic_routes_by_content() {
        let pol = HeuristicPolicy::new(BoundSpec::Absolute(1e-3), 2.4);
        let smooth = pol.plan(&smooth_chunk(8192), 0);
        assert_eq!(smooth.codec, CodecId::Sz);
        assert_eq!(smooth.bound, BoundSpec::Absolute(1e-3));
        assert_eq!(smooth.f_ghz, 2.4);
        let rough = pol.plan(&rough_chunk(8192), 1);
        assert_eq!(rough.codec, CodecId::Zfp);
        // Non-absolute bounds force SZ: ZFP cannot honour them.
        let pol = HeuristicPolicy::new(BoundSpec::PointwiseRelative(1e-3), 2.4);
        assert_eq!(pol.plan(&rough_chunk(8192), 0).codec, CodecId::Sz);
    }

    #[test]
    fn fixed_policy_is_constant() {
        let pol = FixedPolicy::new(CodecId::Zfp, BoundSpec::Absolute(1e-4), 1.2);
        for seq in 0..4 {
            let p = pol.plan(&smooth_chunk(64), seq);
            assert_eq!(p.codec, CodecId::Zfp);
            assert_eq!(p.bound, BoundSpec::Absolute(1e-4));
            assert_eq!(p.f_ghz, 1.2);
        }
        assert_eq!(pol.name(), "fixed");
    }

    #[test]
    fn sample_stats_respects_codec_limits() {
        let chunk = smooth_chunk(4096);
        let sz = sample_stats("sz", &chunk, BoundSpec::Absolute(1e-3), SAMPLE_WINDOW).unwrap();
        assert!(sz.elements as usize <= SAMPLE_WINDOW);
        assert!(sz.ratio() > 1.0);
        let small = sample_stats("sz", &chunk, BoundSpec::Absolute(1e-3), 256).unwrap();
        assert_eq!(small.elements, 256);
        // ZFP rejects non-absolute bounds → None, not a panic.
        assert!(sample_stats("zfp", &chunk, BoundSpec::PointwiseRelative(1e-3), 2048).is_none());
        assert!(sample_stats("nope", &chunk, BoundSpec::Absolute(1e-3), 2048).is_none());
        assert!(sample_stats("sz", &[], BoundSpec::Absolute(1e-3), 2048).is_none());
        assert!(sample_stats("sz", &chunk, BoundSpec::Absolute(1e-3), 0).is_none());
    }
}
