//! [`Codec`] adapter over `lcpio-sz`.

use crate::{BoundSpec, Codec, CodecError, CodecStats, ContainerInfo, Encoded};
use lcpio_sz as sz;
use lcpio_sz::{CompressionStats, SzScratchPool};

/// The SZ backend: Lorenzo/regression prediction, error-bounded
/// quantization, Huffman coding, LZSS lossless stage.
///
/// Owns an [`SzScratchPool`] so chunked compression *and* decompression
/// reuse worker scratch buffers across calls instead of reallocating per
/// field (or per restart chunk).
pub struct SzCodec {
    pool_f32: SzScratchPool<f32>,
}

/// Containers the SZ adapter produces/decodes. Descriptions are the CLI's
/// historical `info` strings — tests pin them.
static SZ_CONTAINERS: [ContainerInfo; 3] = [
    ContainerInfo { magic: sz::header::MAGIC, description: "SZ compressed stream" },
    ContainerInfo {
        magic: sz::CHUNKED_MAGIC,
        description: "SZ chunked (parallel) stream",
    },
    ContainerInfo {
        magic: sz::pwrel::PWREL_MAGIC,
        description: "SZ pointwise-relative stream",
    },
];

impl SzCodec {
    /// New adapter with empty scratch pools (usable in a `static`).
    pub const fn new() -> Self {
        SzCodec { pool_f32: SzScratchPool::new() }
    }

    /// Map a portable bound onto an SZ config; pointwise-relative streams
    /// take a separate wrapper pipeline and are handled by the caller.
    fn config(bound: BoundSpec) -> Option<sz::SzConfig> {
        match bound {
            BoundSpec::Absolute(eb) => Some(sz::SzConfig::new(sz::ErrorBound::Absolute(eb))),
            BoundSpec::ValueRangeRelative(r) => {
                Some(sz::SzConfig::new(sz::ErrorBound::ValueRangeRelative(r)))
            }
            BoundSpec::PointwiseRelative(_) => None,
        }
    }

    /// The inner config the pointwise-relative wrapper runs its log-domain
    /// pipeline with (the wrapper substitutes the real log-domain bound).
    fn pwrel_inner_config() -> sz::SzConfig {
        sz::SzConfig::new(sz::ErrorBound::Absolute(1.0))
    }
}

/// Compress a policy probe window with a quantizer radius clamped to the
/// window length. SZ's per-call fixed cost is O(radius): the frequency
/// table, the code-length histogram, and the Huffman table are all sized
/// by the dense `2·radius+1` alphabet, which at the default radius
/// (32768) costs more than compressing the whole 1–2 Ki window. A window
/// of `n` elements can populate at most `n` bins, so pricing it at radius
/// `n` keeps the probe O(window) with near-identical stats — residuals
/// past the clamped radius fall back to literals, exactly the elements
/// the full-radius run spends the most bits on.
///
/// `None` when the bound has no direct SZ config (pointwise-relative runs
/// a wrapper pipeline) or the backend rejects the window; callers fall
/// back to the full-price registry path.
pub(crate) fn probe_stats(
    window: &[f32],
    bound: BoundSpec,
    radius: u32,
) -> Option<CodecStats> {
    let cfg = SzCodec::config(bound)?.with_radius(radius);
    sz::compress(window, &[window.len()], &cfg).ok().map(|out| convert(&out.stats))
}

impl Default for SzCodec {
    fn default() -> Self {
        Self::new()
    }
}

/// SZ stats → codec-neutral stats: literals are the unpredictable
/// elements, coded bits are the Huffman payload.
fn convert(stats: &CompressionStats) -> CodecStats {
    CodecStats {
        elements: stats.elements,
        input_bytes: stats.input_bytes,
        output_bytes: stats.output_bytes,
        literal_elements: stats.unpredictable,
        coded_bits: stats.huffman_bits,
    }
}

fn encoded(out: sz::Compressed) -> Encoded {
    Encoded { stats: convert(&out.stats), bytes: out.bytes }
}

impl Codec for SzCodec {
    fn name(&self) -> &'static str {
        "sz"
    }

    fn containers(&self) -> &'static [ContainerInfo] {
        &SZ_CONTAINERS
    }

    fn compress(
        &self,
        data: &[f32],
        dims: &[usize],
        bound: BoundSpec,
    ) -> Result<Encoded, CodecError> {
        let out = match Self::config(bound) {
            Some(cfg) => sz::compress(data, dims, &cfg)?,
            None => {
                let BoundSpec::PointwiseRelative(r) = bound else { unreachable!() };
                sz::compress_pointwise_rel(data, dims, r, &Self::pwrel_inner_config())?
            }
        };
        Ok(encoded(out))
    }

    fn compress_chunked(
        &self,
        data: &[f32],
        dims: &[usize],
        bound: BoundSpec,
        threads: usize,
    ) -> Result<Encoded, CodecError> {
        match Self::config(bound) {
            Some(cfg) => Ok(encoded(sz::compress_chunked_pooled(
                data,
                dims,
                &cfg,
                threads,
                &self.pool_f32,
            )?)),
            // Pointwise-relative has no chunked container; the serial
            // wrapper stream is the only on-disk format.
            None => self.compress(data, dims, bound),
        }
    }

    fn compress_for_profile(
        &self,
        data: &[f32],
        dims: &[usize],
        bound: BoundSpec,
    ) -> Result<Encoded, CodecError> {
        // SZ's chunk layout is a pure function of the array shape, so the
        // chunked stream (and its stats) is identical at every worker
        // count. Characterize that stream — it is what the parallel dump
        // writes — with one inner worker, since profile sampling runs
        // inside an already-parallel sweep pool.
        self.compress_chunked(data, dims, bound, 1)
    }

    fn compress_f64(
        &self,
        data: &[f64],
        dims: &[usize],
        bound: BoundSpec,
    ) -> Result<Encoded, CodecError> {
        let out = match Self::config(bound) {
            Some(cfg) => sz::compress_f64(data, dims, &cfg)?,
            None => {
                let BoundSpec::PointwiseRelative(r) = bound else { unreachable!() };
                sz::compress_pointwise_rel(data, dims, r, &Self::pwrel_inner_config())?
            }
        };
        Ok(encoded(out))
    }

    fn decompress(
        &self,
        stream: &[u8],
        threads: usize,
    ) -> Result<(Vec<f32>, Vec<usize>), CodecError> {
        if stream.starts_with(&sz::CHUNKED_MAGIC) {
            // Decode workers draw scratch from the same pool the encode
            // side parks into — the restart pipeline's per-chunk decodes
            // stop allocating once the pool is warm.
            Ok(sz::decompress_chunked_pooled::<f32>(stream, threads, &self.pool_f32)?)
        } else if stream.starts_with(&sz::pwrel::PWREL_MAGIC) {
            Ok(sz::decompress_pointwise_rel::<f32>(stream)?)
        } else {
            Ok(sz::decompress(stream)?)
        }
    }

    fn decompress_f64(
        &self,
        stream: &[u8],
        threads: usize,
    ) -> Result<(Vec<f64>, Vec<usize>), CodecError> {
        if stream.starts_with(&sz::CHUNKED_MAGIC) {
            Ok(sz::decompress_chunked::<f64>(stream, threads)?)
        } else if stream.starts_with(&sz::pwrel::PWREL_MAGIC) {
            Ok(sz::decompress_pointwise_rel::<f64>(stream)?)
        } else {
            Ok(sz::decompress_f64(stream)?)
        }
    }
}
