//! Bridge between the legacy containers and the LCW1 wire envelope.
//!
//! Every legacy container maps onto the envelope losslessly and
//! reversibly: [`wrap`] re-expresses a legacy stream as an LCW1 envelope
//! and [`unwrap`] rebuilds the exact legacy bytes (`unwrap(wrap(s)) == s`
//! for every valid `s` — pinned by tests). Legacy *compressors* keep
//! emitting legacy bytes, so format-regression hashes are untouched; the
//! wire form is an additional transport encoding, not a replacement.
//!
//! Frame shapes per container:
//!
//! | Inner      | Frames                      | Typed TLVs                     |
//! |------------|-----------------------------|--------------------------------|
//! | `SZL1`     | 1 (whole legacy stream)     | —                              |
//! | `ZFL1`     | 1 (whole legacy stream)     | —                              |
//! | `SZLP`     | 1 per chunk payload         | element type, dims, chunk table|
//! | `ZFLP`     | 1 per chunk payload         | element type, dims, chunk table|
//! | `SZPR`     | 2 (sign bitmap, inner `f64` stream) | element type, params (`r` bits, LE) |
//!
//! The serial containers ride whole because their internal layout has no
//! natural frame boundary; the chunked containers explode into one frame
//! per chunk so a streaming reader can hand each chunk to a decoder the
//! moment it arrives.

use crate::{CodecError, ContainerInfo};
use lcpio_wire::envelope::{Envelope, EnvelopeBuilder};
use lcpio_wire::{guard_element_count, tag, WireError};

/// Registry entry for the wire envelope itself.
pub const WIRE_CONTAINER: ContainerInfo =
    ContainerInfo { magic: *b"LCW1", description: "versioned wire envelope (any codec)" };

/// True if `stream` starts with the LCW1 envelope magic.
pub fn is_wire(stream: &[u8]) -> bool {
    Envelope::sniff(stream)
}

/// The legacy container magic an LCW1 envelope carries, without decoding
/// any frame.
pub fn inner_magic(stream: &[u8]) -> Result<[u8; 4], CodecError> {
    Ok(Envelope::parse(stream)?.container)
}

/// How a legacy container maps onto LCW1 frames (for the docs table).
pub fn frame_shape(magic: [u8; 4]) -> &'static str {
    match &magic {
        b"SZL1" | b"ZFL1" => "1 frame (whole stream)",
        b"SZLP" | b"ZFLP" => "1 frame per chunk + dims/chunk-table TLVs",
        b"SZPR" => "2 frames (signs, inner) + params TLV",
        _ => "unmapped",
    }
}

/// Re-express a legacy container stream as an LCW1 envelope.
///
/// The legacy stream is parsed and validated first, so a corrupt input
/// fails here with the backend's typed error rather than producing an
/// envelope that cannot be unwrapped.
pub fn wrap(stream: &[u8]) -> Result<Vec<u8>, CodecError> {
    if stream.len() < 4 {
        return Err(CodecError::TooShort);
    }
    let magic: [u8; 4] = stream[..4].try_into().expect("4 bytes");
    match &magic {
        b"SZL1" | b"ZFL1" => Ok(EnvelopeBuilder::new(magic).build(&[stream])),
        b"SZLP" => {
            let info = lcpio_sz::parallel::parse_chunked(stream)?;
            Ok(wrap_chunked(magic, info.type_tag, &info.dims, &info.chunks))
        }
        b"ZFLP" => {
            let info = lcpio_zfp::parallel::parse_chunked(stream)?;
            Ok(wrap_chunked(magic, info.type_tag, &info.dims, &info.chunks))
        }
        b"SZPR" => {
            let parts = lcpio_sz::pwrel::parse_pointwise_rel(stream)?;
            Ok(EnvelopeBuilder::new(magic)
                .element_type(parts.type_tag)
                .params(&parts.r.to_bits().to_le_bytes())
                .build(&[parts.signs, parts.inner]))
        }
        _ => Err(CodecError::UnknownMagic(magic)),
    }
}

/// Shared wrap path for the two chunked containers (identical layout).
fn wrap_chunked(
    magic: [u8; 4],
    type_tag: u8,
    dims: &[usize],
    chunks: &[(usize, usize, &[u8])],
) -> Vec<u8> {
    let table: Vec<(usize, usize)> = chunks.iter().map(|&(a, b, _)| (a, b)).collect();
    let frames: Vec<&[u8]> = chunks.iter().map(|&(_, _, p)| p).collect();
    EnvelopeBuilder::new(magic)
        .element_type(type_tag)
        .dims(dims)
        .chunk_table(&table)
        .build(&frames)
}

/// Rebuild the exact legacy container bytes from an LCW1 envelope.
///
/// All frame lengths are validated in one pass ([`Envelope::index`])
/// before any payload is touched, and for chunked containers the declared
/// element count is checked against the total payload via the shared
/// expansion guard before the legacy container is re-emitted.
pub fn unwrap(stream: &[u8]) -> Result<Vec<u8>, CodecError> {
    let env = Envelope::parse(stream)?;
    let idx = env.index(stream)?;
    let frame = |i: usize| -> &[u8] {
        let e = idx.entries[i];
        &stream[e.off..e.off + e.len]
    };
    match &env.container {
        b"SZL1" | b"ZFL1" => {
            if env.frame_count != 1 {
                return Err(WireError::Malformed { what: "serial container frame count" }.into());
            }
            let payload = frame(0);
            if !payload.starts_with(&env.container) {
                return Err(WireError::Malformed { what: "inner stream magic mismatch" }.into());
            }
            Ok(payload.to_vec())
        }
        b"SZLP" | b"ZFLP" => {
            let type_tag = env
                .element_type()?
                .ok_or(WireError::MissingField { tag: tag::ELEMENT_TYPE })?;
            let dims = env.dims()?.ok_or(WireError::MissingField { tag: tag::DIMS })?;
            let table =
                env.chunk_table()?.ok_or(WireError::MissingField { tag: tag::CHUNK_TABLE })?;
            let elements = dims.iter().try_fold(1u64, |acc, &d| acc.checked_mul(d as u64));
            let elements = elements.ok_or(WireError::Overflow { what: "dims product" })?;
            guard_element_count(elements, idx.payload_bytes)?;
            let chunks: Vec<(usize, usize, &[u8])> = table
                .iter()
                .enumerate()
                .map(|(i, &(a, b))| (a, b, frame(i)))
                .collect();
            let bytes = if env.container == *b"SZLP" {
                lcpio_sz::parallel::build_container(type_tag, &dims, &chunks)
            } else {
                lcpio_zfp::parallel::build_container(type_tag, &dims, &chunks)
            };
            Ok(bytes)
        }
        b"SZPR" => {
            if env.frame_count != 2 {
                return Err(WireError::Malformed { what: "pwrel container frame count" }.into());
            }
            let type_tag = env
                .element_type()?
                .ok_or(WireError::MissingField { tag: tag::ELEMENT_TYPE })?;
            let params = env.params().ok_or(WireError::MissingField { tag: tag::PARAMS })?;
            let bits: [u8; 8] = params
                .try_into()
                .map_err(|_| WireError::Malformed { what: "pwrel params width" })?;
            let parts = lcpio_sz::pwrel::PwrelParts {
                type_tag,
                r: f64::from_bits(u64::from_le_bytes(bits)),
                signs: frame(0),
                inner: frame(1),
            };
            Ok(lcpio_sz::pwrel::build_pointwise_rel(&parts))
        }
        other => Err(CodecError::UnknownMagic(*other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{registry, BoundSpec};

    fn field(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.013).sin() * 40.0).collect()
    }

    fn roundtrip_bytes(legacy: &[u8]) {
        let wrapped = wrap(legacy).expect("wrap");
        assert!(is_wire(&wrapped));
        assert_eq!(inner_magic(&wrapped).unwrap(), legacy[..4]);
        let restored = unwrap(&wrapped).expect("unwrap");
        assert_eq!(restored, legacy, "wrap→unwrap must be byte-identical");
    }

    #[test]
    fn all_containers_roundtrip_byte_identical() {
        let data = field(4096);
        let sz = registry().by_name("sz").unwrap();
        let zfp = registry().by_name("zfp").unwrap();
        // SZL1 / ZFL1 serial.
        roundtrip_bytes(&sz.compress(&data, &[4096], BoundSpec::Absolute(1e-3)).unwrap().bytes);
        roundtrip_bytes(&zfp.compress(&data, &[4096], BoundSpec::Absolute(1e-3)).unwrap().bytes);
        // SZLP / ZFLP chunked.
        roundtrip_bytes(
            &sz.compress_chunked(&data, &[64, 64], BoundSpec::Absolute(1e-3), 4).unwrap().bytes,
        );
        roundtrip_bytes(
            &zfp.compress_chunked(&data, &[64, 64], BoundSpec::Absolute(1e-3), 4).unwrap().bytes,
        );
        // SZPR pointwise-relative.
        let positive: Vec<f32> = data.iter().map(|x| x.abs() + 1.0).collect();
        roundtrip_bytes(
            &sz.compress(&positive, &[4096], BoundSpec::PointwiseRelative(1e-3)).unwrap().bytes,
        );
    }

    #[test]
    fn wire_and_legacy_decode_identically() {
        let data = field(2048);
        for name in ["sz", "zfp"] {
            let codec = registry().by_name(name).unwrap();
            let legacy =
                codec.compress_chunked(&data, &[2048], BoundSpec::Absolute(1e-3), 3).unwrap().bytes;
            let wrapped = wrap(&legacy).unwrap();
            let (a, da) = registry().decompress_auto(&legacy, 2).unwrap();
            let (b, db) = registry().decompress_auto(&wrapped, 2).unwrap();
            assert_eq!(da, db);
            assert_eq!(a, b, "{name}: wire decode must equal legacy decode");
        }
    }

    #[test]
    fn wrap_rejects_garbage() {
        assert_eq!(wrap(b"XY").err(), Some(CodecError::TooShort));
        assert_eq!(wrap(b"NOPE....").err(), Some(CodecError::UnknownMagic(*b"NOPE")));
        // A truncated legacy container fails in the backend parser, typed.
        let data = field(512);
        let legacy = registry()
            .by_name("sz")
            .unwrap()
            .compress_chunked(&data, &[512], BoundSpec::Absolute(1e-3), 2)
            .unwrap()
            .bytes;
        for cut in 4..legacy.len() {
            assert!(wrap(&legacy[..cut]).is_err(), "cut at {cut} must not wrap");
        }
    }

    #[test]
    fn unwrap_rejects_forged_envelopes() {
        let data = field(512);
        let legacy = registry()
            .by_name("sz")
            .unwrap()
            .compress_chunked(&data, &[512], BoundSpec::Absolute(1e-3), 2)
            .unwrap()
            .bytes;
        let wrapped = wrap(&legacy).unwrap();
        // Unknown inner container.
        let bytes = EnvelopeBuilder::new(*b"ABCD").build(&[b"x"]);
        assert_eq!(unwrap(&bytes).err(), Some(CodecError::UnknownMagic(*b"ABCD")));
        // Serial envelope whose frame does not carry the inner magic.
        let bytes = EnvelopeBuilder::new(*b"SZL1").build(&[b"not the stream"]);
        assert!(matches!(unwrap(&bytes), Err(CodecError::Wire(WireError::Malformed { .. }))));
        // Chunked envelope missing its dims field.
        let bytes = EnvelopeBuilder::new(*b"SZLP").element_type(1).build(&[b"p"]);
        assert_eq!(
            unwrap(&bytes).err(),
            Some(CodecError::Wire(WireError::MissingField { tag: tag::DIMS })),
        );
        // Cut the wire stream at every offset: typed error, never panic.
        for cut in 0..wrapped.len() {
            assert!(unwrap(&wrapped[..cut]).is_err(), "cut at {cut} must not unwrap");
        }
    }

    #[test]
    fn forged_element_count_hits_expansion_guard() {
        // A 1 GiB-element claim over a few payload bytes must be refused
        // by the shared guard before any allocation.
        let bytes = EnvelopeBuilder::new(*b"SZLP")
            .element_type(1)
            .dims(&[1 << 30])
            .chunk_table(&[(0, 1 << 30)])
            .build(&[b"tiny"]);
        assert!(matches!(
            unwrap(&bytes),
            Err(CodecError::Wire(WireError::CapacityGuard { .. }))
        ));
    }
}
