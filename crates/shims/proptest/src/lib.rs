//! Vendored minimal `proptest` replacement (the build environment cannot
//! fetch crates.io). Keeps the same test-authoring surface this workspace
//! uses — `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) }`,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `any::<T>()`, numeric
//! range strategies, `Just`, and `proptest::collection::vec` — over a
//! deterministic seeded generator. No shrinking: a failing case panics with
//! its generated inputs so it can be minimized by hand.

use std::marker::PhantomData;
use std::ops::Range;

/// Everything a test file needs via `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed a generator (each test case gets its own).
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values. Object-safe so `prop_oneof!` can mix
/// heterogeneous arm types behind `Box<dyn Strategy<Value = V>>`.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Box a strategy for use in heterogeneous unions (`prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a full-range default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[inline]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    #[inline]
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    #[inline]
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((0 A, 1 B)(0 A, 1 B, 2 C)(0 A, 1 B, 2 C, 3 D));

/// Weighted choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms; total weight must be nonzero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        assert!(arms.iter().map(|(w, _)| *w as u64).sum::<u64>() > 0, "prop_oneof: zero weight");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = ((rng.next_u64() as u128 * total as u128) >> 64) as u64;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        self.arms.last().unwrap().1.generate(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vec of `elem`-generated values with length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Strategy for vectors.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Harness configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than upstream's 256: no shrinking here, and tier-1 runs
        // these in debug mode. Overridable via PROPTEST_CASES.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A failed property assertion (carried out of the case body).
#[derive(Debug)]
pub struct TestCaseError {
    /// Failure message.
    pub msg: String,
    /// Source file of the assertion.
    pub file: &'static str,
    /// Source line of the assertion.
    pub line: u32,
}

impl TestCaseError {
    /// Build a failure record.
    pub fn fail(msg: &str, file: &'static str, line: u32) -> Self {
        TestCaseError { msg: msg.to_string(), file, line }
    }
}

/// FNV-1a over the test name, to decorrelate seeds between properties.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Drive one property: `body` generates inputs from the given rng and
/// returns a rendering of them plus the case outcome.
pub fn run_cases(
    cases: u32,
    name: &str,
    mut body: impl FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
) {
    let base = name_seed(name);
    for case in 0..cases.max(1) {
        let mut rng = TestRng::new(base ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let (inputs, outcome) = body(&mut rng);
        if let Err(e) = outcome {
            panic!(
                "property `{name}` failed at case {case}/{cases} ({file}:{line}): {msg}\n  inputs: {inputs}",
                file = e.file,
                line = e.line,
                msg = e.msg,
            );
        }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(config.cases, stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    (inputs, outcome)
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a property body; failure aborts only the current case
/// with its inputs reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
                file!(),
                line!(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                &format!($($fmt)+),
                file!(),
                line!(),
            ));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                &format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
                file!(),
                line!(),
            ));
        }
    }};
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::boxed($strat))),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_any_are_deterministic() {
        let s = 1usize..512;
        let mut a = crate::TestRng::new(5);
        let mut b = crate::TestRng::new(5);
        for _ in 0..64 {
            assert_eq!(
                crate::Strategy::generate(&s, &mut a),
                crate::Strategy::generate(&s, &mut b)
            );
        }
    }

    #[test]
    fn union_respects_value_sets() {
        let s = prop_oneof![8 => -1.0f32..1.0, 1 => Just(7.0f32)];
        let mut rng = crate::TestRng::new(11);
        let mut saw_just = false;
        for _ in 0..256 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!((-1.0..1.0).contains(&v) || v == 7.0);
            saw_just |= v == 7.0;
        }
        assert!(saw_just, "weighted arm never chosen");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_honor_range(
            data in crate::collection::vec(any::<u8>(), 3..17),
            x in -5i32..0,
        ) {
            prop_assert!((3..17).contains(&data.len()));
            prop_assert!((-5..0).contains(&x));
        }

        #[test]
        fn tuples_generate(pair in (any::<u16>(), any::<u8>())) {
            let (a, b) = pair;
            prop_assert_eq!(a as u64 & 0xFFFF, a as u64);
            prop_assert!(b as u32 <= 255);
        }
    }

    #[test]
    #[should_panic(expected = "property `failing_property` failed")]
    fn failures_report_inputs() {
        crate::run_cases(8, "failing_property", |rng| {
            let x = crate::Strategy::generate(&(0u32..10), rng);
            let outcome = if x < 100 {
                Err(crate::TestCaseError::fail("forced", file!(), line!()))
            } else {
                Ok(())
            };
            (format!("x = {x:?}"), outcome)
        });
    }
}
