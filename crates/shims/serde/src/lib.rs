//! Vendored, dependency-free stand-in for the parts of `serde` this
//! workspace uses. The build environment has no access to crates.io, so
//! the real crate cannot be fetched; this shim keeps the same import
//! surface (`serde::{Serialize, Deserialize}`, `#[derive(Serialize,
//! Deserialize)]`) over a much simpler self-describing data model: every
//! value serializes into a [`Value`] tree, and `serde_json` (also
//! vendored) renders/parses that tree as JSON.
//!
//! The data model intentionally mirrors serde's externally-tagged enum
//! convention so the emitted JSON matches what the real serde_json would
//! produce for the derives in this workspace.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree all types serialize into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null (also used for non-finite floats, like serde_json).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer that does not fit in `i64`.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with string keys, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the map entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view (integers widen losslessly, within f64 limits).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Unsigned integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            Value::U64(v) => Some(*v),
            Value::F64(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// Signed integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            Value::F64(v) if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v <= i64::MAX as f64 => {
                Some(*v as i64)
            }
            _ => None,
        }
    }
}

/// Deserialization error: what was expected, in which context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X while deserializing Y".
    pub fn expected(what: &str, ctx: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ctx}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the self-describing tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the self-describing tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Look up a struct field in a map and deserialize it (derive helper).
pub fn field<T: Deserialize>(
    map: &[(String, Value)],
    key: &str,
    ctx: &str,
) -> Result<T, DeError> {
    let v = map
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{key}` while deserializing {ctx}")))?;
    T::from_value(v)
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, u8, u16, u32);

macro_rules! impl_ser_uint_wide {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let w = *self as u64;
                if w <= i64::MAX as u64 { Value::I64(w as i64) } else { Value::U64(w) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_ser_uint_wide!(u64, usize);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let raw = v.as_i64().ok_or_else(|| DeError::expected("integer", "isize"))?;
        isize::try_from(raw).map_err(|_| DeError::expected("in-range integer", "isize"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::expected("number", "f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("sequence", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seq = v.as_seq().ok_or_else(|| DeError::expected("sequence", "array"))?;
        if seq.len() != N {
            return Err(DeError::expected("array of matching length", "array"));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(seq) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v.as_seq().ok_or_else(|| DeError::expected("sequence", "tuple"))?;
                let mut it = seq.iter();
                let out = ($(
                    {
                        let _ = $n;
                        $t::from_value(it.next().ok_or_else(|| DeError::expected("longer tuple", "tuple"))?)?
                    },
                )+);
                if it.next().is_some() {
                    return Err(DeError::expected("tuple of matching length", "tuple"));
                }
                Ok(out)
            }
        }
    )*};
}

impl_tuple!((0 A)(0 A, 1 B)(0 A, 1 B, 2 C)(0 A, 1 B, 2 C, 3 D));

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let a = [1usize, 2, 3, 4];
        assert_eq!(<[usize; 4]>::from_value(&a.to_value()).unwrap(), a);
        let o: Option<f64> = Some(2.0);
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), o);
    }

    #[test]
    fn errors_are_structured() {
        assert!(bool::from_value(&Value::I64(1)).is_err());
        assert!(field::<u32>(&[], "missing", "Test").is_err());
    }
}
