//! Vendored minimal `criterion` replacement (the build environment cannot
//! fetch crates.io). Implements the subset of the API the bench crate
//! uses — groups, throughput annotation, `bench_with_input`, `iter` — with
//! simple wall-clock median timing printed to stdout. No statistical
//! analysis, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A `group/function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Label from a function name and a parameter rendering.
    pub fn new(function: &str, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{function}/{parameter}") }
    }

    /// Label from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Times a closure over `sample_size` samples; passed to bench closures.
pub struct Bencher<'a> {
    samples: usize,
    result: &'a mut Vec<Duration>,
}

impl<'a> Bencher<'a> {
    /// Measure one sample per configured sample count, one call each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call so lazy init (allocators, caches) is off-sample.
        black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.result.push(t0.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Annotate subsequent benchmarks with a per-iteration workload size.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut samples = Vec::new();
        let mut b = Bencher { samples: self.criterion.sample_size, result: &mut samples };
        f(&mut b, input);
        self.report(&id.to_string(), &mut samples);
        self
    }

    /// Benchmark a plain closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::new();
        let mut b = Bencher { samples: self.criterion.sample_size, result: &mut samples };
        f(&mut b);
        self.report(&id.to_string(), &mut samples);
        self
    }

    fn report(&self, id: &str, samples: &mut Vec<Duration>) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {:>8.1} MiB/s", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>8.1} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{}/{id}: median {:>10.3} ms over {} samples{rate}",
            self.name,
            median.as_secs_f64() * 1e3,
            samples.len(),
        );
    }

    /// End the group (prints nothing; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup { name, criterion: self, throughput: None }
    }

    /// Benchmark a plain closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declare a benchmark group: either `criterion_group!(name, fn...)` or the
/// long form with an explicit `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1 << 20));
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
            b.iter(|| (0..x).map(|i| i * i).sum::<u32>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = target
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
