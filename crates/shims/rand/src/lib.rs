//! Vendored minimal `rand` replacement (the build environment cannot fetch
//! crates.io). Provides the surface this workspace uses: `SmallRng`
//! seeded via `seed_from_u64`, `Rng::gen` for floats/ints, and
//! `Rng::gen_range` over half-open ranges. The generator is
//! xoshiro256++, seeded through splitmix64 — the same algorithm family
//! the real `SmallRng` uses on 64-bit targets, though the exact stream
//! differs from any particular rand release.

use std::ops::Range;

pub mod rngs {
    pub use crate::SmallRng;
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed with splitmix64, per the xoshiro authors'
        // recommendation; guards against the all-zero state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        SmallRng { s: [next(), next(), next(), next()] }
    }
}

impl SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types producible by `Rng::gen` (rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from the standard distribution.
    fn sample(rng: &mut SmallRng) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample(rng: &mut SmallRng) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample(rng: &mut SmallRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample(rng: &mut SmallRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample(rng: &mut SmallRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as `gen_range` bounds.
pub trait UniformSample: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)`.
    fn sample_range(rng: &mut SmallRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            #[inline]
            fn sample_range(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift rejection-free mapping is fine here: span is
                // tiny relative to 2^64, so bias is negligible for simulation.
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, i64, i32);

impl UniformSample for f64 {
    #[inline]
    fn sample_range(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

impl UniformSample for f32 {
    #[inline]
    fn sample_range(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * f32::sample(rng)
    }
}

/// The subset of rand's `Rng` extension trait the workspace uses.
pub trait Rng {
    /// Draw one value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T;
    /// Draw uniformly from a half-open range.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T;
    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for SmallRng {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let s = rng.gen_range(-5i32..0);
            assert!((-5..0).contains(&s));
        }
    }

    #[test]
    fn roughly_uniform_mean() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
