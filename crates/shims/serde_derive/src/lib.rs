//! Derive macros for the vendored `serde` facade.
//!
//! The build environment cannot fetch `syn`/`quote`, so this crate parses
//! the derive input by walking the raw `TokenStream` directly and emits the
//! impl as a formatted string. It supports exactly the shapes this
//! workspace derives: non-generic structs with named fields, and
//! non-generic enums whose variants are unit, newtype, or tuple.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed derive input: the item kind, its name, and its members.
enum Item {
    /// Struct with named field identifiers.
    Struct { name: String, fields: Vec<String> },
    /// Enum with (variant name, payload arity) pairs; arity 0 = unit.
    Enum { name: String, variants: Vec<(String, usize)> },
}

/// Skip any number of `#[...]` attributes (including doc comments) and
/// visibility modifiers starting at `i`; returns the new position.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then the bracketed attribute body.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Count of top-level commas + 1 if nonempty: the payload arity of a tuple
/// variant. Commas inside `<...>` or nested groups don't count.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut arity = 1usize;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                arity += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

/// Field identifiers of a named-field struct body.
fn struct_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else { break };
        fields.push(name.to_string());
        i += 1;
        // Expect `:`, then skip the type up to the next top-level comma.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// (name, arity) pairs of an enum body.
fn enum_variants(stream: TokenStream) -> Vec<(String, usize)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else { break };
        let name = name.to_string();
        i += 1;
        let mut arity = 0usize;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = tuple_arity(g.stream());
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("serde_derive: struct-like enum variants are not supported")
                }
                _ => {}
            }
        }
        variants.push((name, arity));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => panic!("serde_derive: expected `,` after variant, got {other:?}"),
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported (on `{name}`)");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive: expected braced body for `{name}`, got {other:?}"),
    };
    match kind.as_str() {
        "struct" => Item::Struct { name, fields: struct_fields(body) },
        "enum" => Item::Enum { name, variants: enum_variants(body) },
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    }
}

/// Comma-separated `x0, x1, ...` binder list for a tuple variant.
fn binders(arity: usize) -> String {
    (0..arity).map(|k| format!("x{k}")).collect::<Vec<_>>().join(", ")
}

/// Derive `serde::Serialize` (maps for structs, externally-tagged enums).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"
                    ),
                    1 => format!(
                        "{name}::{v}(x0) => ::serde::Value::Map(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(x0))]),"
                    ),
                    &n => {
                        let b = binders(n);
                        let elems = (0..n)
                            .map(|k| format!("::serde::Serialize::to_value(x{k})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!(
                            "{name}::{v}({b}) => ::serde::Value::Map(vec![(\"{v}\".to_string(), ::serde::Value::Seq(vec![{elems}]))]),"
                        )
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse().expect("serde_derive: generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (mirror of the Serialize layout).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(m, \"{f}\", \"{name}\")?,"))
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let m = v.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{\n{inits}\n}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms = variants
                .iter()
                .filter(|(_, a)| *a == 0)
                .map(|(v, _)| {
                    format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),")
                })
                .collect::<Vec<_>>()
                .join("\n");
            let payload_arms = variants
                .iter()
                .filter(|(_, a)| *a > 0)
                .map(|(v, arity)| {
                    if *arity == 1 {
                        format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),"
                        )
                    } else {
                        let elems = (0..*arity)
                            .map(|k| {
                                format!("::serde::Deserialize::from_value(&seq[{k}])?")
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!(
                            "\"{v}\" => {{\n\
                                 let seq = inner.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence\", \"{name}::{v}\"))?;\n\
                                 if seq.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(::serde::DeError::expected(\"{arity}-tuple\", \"{name}::{v}\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{v}({elems}))\n\
                             }}"
                        )
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 _ => ::std::result::Result::Err(::serde::DeError::expected(\"known variant\", \"{name}\")),\n\
                             }},\n\
                             ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                                 let (k, inner) = &m[0];\n\
                                 let _ = inner;\n\
                                 match k.as_str() {{\n\
                                     {payload_arms}\n\
                                     _ => ::std::result::Result::Err(::serde::DeError::expected(\"known variant\", \"{name}\")),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::expected(\"string or single-key map\", \"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse().expect("serde_derive: generated Deserialize impl must parse")
}
