//! Vendored minimal `serde_json` replacement over the vendored `serde`
//! facade's [`serde::Value`] tree. Supports exactly what this workspace
//! uses: `to_string`, `to_string_pretty`, `to_vec`, `from_str`,
//! `from_slice`, each with serde_json-compatible JSON text (non-finite
//! floats serialize as `null`, like the real crate).

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // `{}` on f64 prints the shortest roundtripping decimal; add
                // `.0` so integers stay recognizably floats, like serde_json.
                let s = n.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            write_bracketed(out, '[', ']', items.len(), indent, depth, |out, i, d| {
                write_value(&items[i], out, indent, d);
            });
        }
        Value::Map(entries) => {
            write_bracketed(out, '{', '}', entries.len(), indent, depth, |out, i, d| {
                let (k, val) = &entries[i];
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, d);
            });
        }
    }
}

fn write_bracketed(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error("recursion limit exceeded".to_string()));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null").map(|_| Value::Null),
            Some(b't') => self.literal("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value(depth + 1)?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error("eof in escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("invalid surrogate pair".into()));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error("invalid codepoint".into()))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error("invalid codepoint".into()))?,
                                );
                            }
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(e.to_string()))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(Error("raw control character in string".into()));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("eof in string".into())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("eof in \\u escape".into()));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|e| Error(e.to_string()))?;
        let v = u32::from_str_radix(s, 16).map_err(|e| Error(e.to_string()))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error(e.to_string()))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::I64(-3)),
            ("b".to_string(), Value::F64(1.5)),
            ("c".to_string(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("d".to_string(), Value::Str("x\n\"y".to_string())),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_keep_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn pretty_print_parses_back() {
        let v = Value::Map(vec![(
            "rows".to_string(),
            Value::Seq(vec![Value::I64(1), Value::I64(2)]),
        )]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn large_u64_roundtrip() {
        let v = Value::U64(u64::MAX);
        let text = to_string(&v).unwrap();
        assert_eq!(parse(&text).unwrap(), v);
    }
}
