//! Coefficient ordering by total sequency.
//!
//! After the transform, low-frequency coefficients carry most energy. The
//! embedded coder visits coefficients in order of increasing *total
//! sequency* (the sum of per-axis frequencies), so significant bits appear
//! early in the stream and truncation discards the least important data
//! first. The permutation only needs to be identical on both sides; ties
//! are broken by linear index, matching the spirit of ZFP's static tables.

use crate::block::SIDE;

/// Compute the sequency permutation for a 4^d block: `perm[rank] = index`.
pub fn permutation(d: usize) -> Vec<usize> {
    let n = SIDE.pow(d as u32);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&i| {
        let (x, y, z) = decompose(i, d);
        (x + y + z, i)
    });
    idx
}

fn decompose(i: usize, d: usize) -> (usize, usize, usize) {
    match d {
        1 => (i, 0, 0),
        2 => (i % SIDE, i / SIDE, 0),
        _ => (i % SIDE, (i / SIDE) % SIDE, i / (SIDE * SIDE)),
    }
}

/// Apply `perm` (gather): `out[r] = data[perm[r]]`.
pub fn apply(data: &[i64], perm: &[usize], out: &mut [i64]) {
    debug_assert_eq!(data.len(), perm.len());
    for (o, &p) in out.iter_mut().zip(perm) {
        *o = data[p];
    }
}

/// Invert [`apply`] (scatter): `out[perm[r]] = data[r]`.
pub fn invert(data: &[i64], perm: &[usize], out: &mut [i64]) {
    debug_assert_eq!(data.len(), perm.len());
    for (r, &p) in perm.iter().enumerate() {
        out[p] = data[r];
    }
}

/// Fused gather + negabinary conversion: `out[r] = negabinary(data[perm[r]])`.
/// One pass over the block instead of two — the reorder is a gather anyway,
/// so the conversion rides along for free.
pub fn apply_negabinary(data: &[i64], perm: &[usize], out: &mut [u64]) {
    debug_assert_eq!(data.len(), perm.len());
    for (o, &p) in out.iter_mut().zip(perm) {
        *o = crate::negabinary::encode(data[p]);
    }
}

/// Fused inverse of [`apply_negabinary`]: `out[perm[r]] = signed(data[r])`.
pub fn invert_negabinary(data: &[u64], perm: &[usize], out: &mut [i64]) {
    debug_assert_eq!(data.len(), perm.len());
    for (r, &p) in perm.iter().enumerate() {
        out[p] = crate::negabinary::decode(data[r]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_bijection() {
        for d in 1..=3usize {
            let p = permutation(d);
            let mut seen = vec![false; p.len()];
            for &i in &p {
                assert!(!seen[i]);
                seen[i] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn dc_coefficient_comes_first() {
        for d in 1..=3usize {
            assert_eq!(permutation(d)[0], 0, "d={d}");
        }
    }

    #[test]
    fn highest_frequency_comes_last() {
        let p3 = permutation(3);
        assert_eq!(*p3.last().unwrap(), 63);
        let p2 = permutation(2);
        assert_eq!(*p2.last().unwrap(), 15);
    }

    #[test]
    fn sequency_is_monotone() {
        let p = permutation(3);
        let seq = |i: usize| (i % 4) + (i / 4) % 4 + i / 16;
        for w in p.windows(2) {
            assert!(seq(w[0]) <= seq(w[1]));
        }
    }

    #[test]
    fn apply_invert_roundtrip() {
        for d in 1..=3usize {
            let n = SIDE.pow(d as u32);
            let data: Vec<i64> = (0..n as i64).map(|i| i * 7 - 30).collect();
            let perm = permutation(d);
            let mut fwd = vec![0i64; n];
            let mut back = vec![0i64; n];
            apply(&data, &perm, &mut fwd);
            invert(&fwd, &perm, &mut back);
            assert_eq!(back, data);
        }
    }
}
