//! LSB-first bit stream, mirroring ZFP's `bitstream` semantics.
//!
//! Within each byte, the first bit written occupies the least-significant
//! position. `write_bits` emits the *low* `n` bits of the operand, low bit
//! first, and returns the operand shifted right by `n` — the exact contract
//! of ZFP's `stream_write_bits`, which the embedded coder relies on.

/// Append-only LSB-first bit sink.
#[derive(Debug, Default, Clone)]
pub struct WriteStream {
    buf: Vec<u8>,
    /// Bits used in the final byte (0 ⇒ boundary).
    bit_pos: u8,
}

impl WriteStream {
    /// New empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one bit; returns the bit (like `stream_write_bit`).
    #[inline]
    pub fn write_bit(&mut self, bit: bool) -> bool {
        if self.bit_pos == 0 {
            self.buf.push(0);
        }
        if bit {
            let last = self.buf.len() - 1;
            self.buf[last] |= 1 << self.bit_pos;
        }
        self.bit_pos = (self.bit_pos + 1) % 8;
        bit
    }

    /// Append the low `n` bits of `x`, LSB first; returns `x >> n`.
    #[inline]
    pub fn write_bits(&mut self, x: u64, n: usize) -> u64 {
        debug_assert!(n <= 64);
        let mut v = x;
        for _ in 0..n {
            self.write_bit(v & 1 == 1);
            v >>= 1;
        }
        v
    }

    /// Total bits written.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Pad with zero bits until `bit_len` reaches `target`.
    pub fn pad_to(&mut self, target: usize) {
        while self.bit_len() < target {
            self.write_bit(false);
        }
    }

    /// Finish, returning the underlying bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential LSB-first bit source. Reads past the end yield zero bits —
/// matching ZFP, whose decoder consumes "virtual" zero padding when a
/// truncated fixed-rate stream ends.
#[derive(Debug, Clone)]
pub struct ReadStream<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ReadStream<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ReadStream { buf, pos: 0 }
    }

    /// Next bit (false past the end).
    #[inline]
    pub fn read_bit(&mut self) -> bool {
        let byte = self.pos / 8;
        let bit = if byte < self.buf.len() {
            (self.buf[byte] >> (self.pos % 8)) & 1 == 1
        } else {
            false
        };
        self.pos += 1;
        bit
    }

    /// Next `n` bits as a u64 (LSB-first).
    #[inline]
    pub fn read_bits(&mut self, n: usize) -> u64 {
        debug_assert!(n <= 64);
        let mut v = 0u64;
        for i in 0..n {
            v |= (self.read_bit() as u64) << i;
        }
        v
    }

    /// Absolute bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Skip forward to an absolute bit position (for fixed-rate blocks).
    pub fn seek(&mut self, bit: usize) {
        self.pos = bit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bits() {
        let mut w = WriteStream::new();
        assert_eq!(w.write_bits(0b1011_0010_1111, 12), 0);
        w.write_bit(true);
        let bytes = w.into_bytes();
        let mut r = ReadStream::new(&bytes);
        assert_eq!(r.read_bits(12), 0b1011_0010_1111);
        assert!(r.read_bit());
    }

    #[test]
    fn write_bits_returns_shifted_operand() {
        let mut w = WriteStream::new();
        assert_eq!(w.write_bits(0b11010, 3), 0b11);
    }

    #[test]
    fn lsb_first_byte_layout() {
        let mut w = WriteStream::new();
        w.write_bit(true); // bit 0
        w.write_bit(false);
        w.write_bit(true); // bit 2
        assert_eq!(w.into_bytes(), vec![0b0000_0101]);
    }

    #[test]
    fn read_past_end_gives_zeros() {
        let mut r = ReadStream::new(&[0xFF]);
        assert_eq!(r.read_bits(8), 0xFF);
        assert_eq!(r.read_bits(16), 0);
        assert_eq!(r.bit_pos(), 24);
    }

    #[test]
    fn pad_to_target() {
        let mut w = WriteStream::new();
        w.write_bit(true);
        w.pad_to(17);
        assert_eq!(w.bit_len(), 17);
    }

    #[test]
    fn seek_supports_random_access() {
        let mut w = WriteStream::new();
        w.write_bits(0xAAAA, 16);
        let bytes = w.into_bytes();
        let mut r = ReadStream::new(&bytes);
        r.seek(8);
        assert_eq!(r.read_bits(4), 0xA);
    }
}
