//! LSB-first bit stream, mirroring ZFP's `bitstream` semantics.
//!
//! Within each byte, the first bit written occupies the least-significant
//! position. `write_bits` emits the *low* `n` bits of the operand, low bit
//! first, and returns the operand shifted right by `n` — the exact contract
//! of ZFP's `stream_write_bits`, which the embedded coder relies on.
//!
//! The implementation is word-buffered: writes accumulate into a 64-bit
//! word and spill whole words into the backing store, so `write_bits`
//! costs one or two shift/mask operations per call instead of one pass of
//! the carry loop per bit; reads load one or two words per call. The byte
//! layout is identical to the historical bit-at-a-time implementation
//! (retained in [`mod@reference`] and pinned by property tests): bit `p` of
//! the stream lives in byte `p / 8` at in-byte position `p % 8`.

/// Append-only LSB-first bit sink.
#[derive(Debug, Default, Clone)]
pub struct WriteStream {
    /// Completed 64-bit words, little-endian in the byte stream.
    words: Vec<u64>,
    /// Partial word accumulating the next `bits` bits.
    acc: u64,
    /// Bits used in `acc` (invariant: `< 64`).
    bits: u32,
}

impl WriteStream {
    /// New empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one bit; returns the bit (like `stream_write_bit`).
    #[inline]
    pub fn write_bit(&mut self, bit: bool) -> bool {
        self.acc |= (bit as u64) << self.bits;
        self.bits += 1;
        if self.bits == 64 {
            self.words.push(self.acc);
            self.acc = 0;
            self.bits = 0;
        }
        bit
    }

    /// Append the low `n` bits of `x`, LSB first; returns `x >> n`.
    #[inline]
    pub fn write_bits(&mut self, x: u64, n: usize) -> u64 {
        debug_assert!(n <= 64);
        if n == 0 {
            return x;
        }
        let n = n as u32;
        let v = if n == 64 { x } else { x & ((1u64 << n) - 1) };
        self.acc |= v << self.bits;
        let total = self.bits + n;
        if total >= 64 {
            self.words.push(self.acc);
            self.bits = total - 64;
            // Carry the bits of `v` that did not fit the spilled word.
            self.acc = if self.bits == 0 { 0 } else { v >> (n - self.bits) };
        } else {
            self.bits = total;
        }
        if n == 64 {
            0
        } else {
            x >> n
        }
    }

    /// Total bits written.
    pub fn bit_len(&self) -> usize {
        self.words.len() * 64 + self.bits as usize
    }

    /// Pad with zero bits until `bit_len` reaches `target`.
    pub fn pad_to(&mut self, target: usize) {
        let mut rem = target.saturating_sub(self.bit_len());
        while rem > 0 {
            let n = rem.min(64);
            self.write_bits(0, n);
            rem -= n;
        }
    }

    /// Finish, returning the underlying bytes (`ceil(bit_len / 8)` of them,
    /// unwritten trailing bits zero).
    pub fn into_bytes(self) -> Vec<u8> {
        let n_bytes = self.bit_len().div_ceil(8);
        let mut out = Vec::with_capacity(self.words.len() * 8 + 8);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        if self.bits > 0 {
            out.extend_from_slice(&self.acc.to_le_bytes());
        }
        out.truncate(n_bytes);
        out
    }
}

/// Mask of the low `n` bits (`n ≤ 64`).
#[inline]
fn mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Sequential LSB-first bit source. Reads past the end yield zero bits —
/// matching ZFP, whose decoder consumes "virtual" zero padding when a
/// truncated fixed-rate stream ends.
///
/// The reader is word-buffered: `acc` holds the next `avail` unread bits
/// (low bits first, upper bits zero), and refills load one *aligned* 64-bit
/// word, so `pos + avail` always sits on a 64-bit boundary and each word of
/// the stream is loaded exactly once per sequential pass.
#[derive(Debug, Clone)]
pub struct ReadStream<'a> {
    buf: &'a [u8],
    /// Absolute bit position of the next unread bit.
    pos: usize,
    /// Buffered upcoming bits (bits ≥ `avail` are zero).
    acc: u64,
    /// Valid bit count in `acc` (`pos + avail` is 64-aligned).
    avail: u32,
}

impl<'a> ReadStream<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        let mut s = ReadStream { buf, pos: 0, acc: 0, avail: 0 };
        s.refill(0);
        s
    }

    /// Load the aligned 64-bit little-endian word `word_idx`,
    /// zero-extending past the end of the buffer.
    #[inline]
    fn load_aligned(&self, word_idx: usize) -> u64 {
        let byte = word_idx * 8;
        match self.buf.len().checked_sub(byte) {
            Some(have) if have >= 8 => {
                u64::from_le_bytes(self.buf[byte..byte + 8].try_into().expect("8-byte read"))
            }
            Some(have) if have > 0 => {
                let mut b = [0u8; 8];
                b[..have].copy_from_slice(&self.buf[byte..]);
                u64::from_le_bytes(b)
            }
            _ => 0,
        }
    }

    /// Point the buffer at absolute bit position `bit`.
    #[inline]
    fn refill(&mut self, bit: usize) {
        let off = (bit % 64) as u32;
        self.acc = self.load_aligned(bit / 64) >> off;
        self.avail = 64 - off;
    }

    /// Next bit (false past the end).
    #[inline]
    pub fn read_bit(&mut self) -> bool {
        if self.avail == 0 {
            self.refill(self.pos);
        }
        let bit = self.acc & 1 == 1;
        self.acc >>= 1;
        self.avail -= 1;
        self.pos += 1;
        bit
    }

    /// Next `n` bits as a u64 (LSB-first).
    #[inline]
    pub fn read_bits(&mut self, n: usize) -> u64 {
        debug_assert!(n <= 64);
        let n = n as u32;
        let v = if n <= self.avail {
            let v = self.acc & mask(n);
            self.acc = self.acc.checked_shr(n).unwrap_or(0);
            self.avail -= n;
            v
        } else {
            // Combine the buffered tail with the next aligned word.
            let have = self.avail;
            let boundary = self.pos + have as usize;
            let next = self.load_aligned(boundary / 64);
            let need = n - have;
            let v = self.acc | ((next & mask(need)) << have);
            self.acc = next.checked_shr(need).unwrap_or(0);
            self.avail = 64 - need;
            v
        };
        self.pos += n as usize;
        v
    }

    /// The next `n` bits without consuming them (LSB-first, `n ≤ 64`).
    #[inline]
    pub fn peek_bits(&self, n: usize) -> u64 {
        debug_assert!(n <= 64);
        let n = n as u32;
        if n <= self.avail {
            self.acc & mask(n)
        } else {
            let boundary = self.pos + self.avail as usize;
            let next = self.load_aligned(boundary / 64);
            (self.acc | (next << (self.avail % 64))) & mask(n)
        }
    }

    /// Consume `n` bits (`n ≤ 64`) previously examined with
    /// [`peek_bits`](Self::peek_bits).
    #[inline]
    pub fn advance(&mut self, n: usize) {
        let n32 = n as u32;
        if n32 <= self.avail {
            self.acc = self.acc.checked_shr(n32).unwrap_or(0);
            self.avail -= n32;
            self.pos += n;
        } else {
            self.pos += n;
            self.refill(self.pos);
        }
    }

    /// Scan a unary code: examine the next `n` bits and consume up to and
    /// including the first 1 bit, or all `n` when they are zero. Returns
    /// `(consumed, zeros)` — equivalent to peeking `n` bits, taking
    /// `trailing_zeros + 1` on a nonzero chunk, and `n` otherwise, but
    /// without touching memory when the answer is in the buffered word.
    #[inline]
    pub fn scan_unary(&mut self, n: usize) -> (usize, usize) {
        debug_assert!(n <= 64);
        let n32 = n as u32;
        let window = self.avail.min(n32);
        let masked = self.acc & mask(window);
        if masked != 0 {
            let z = masked.trailing_zeros();
            self.acc >>= z + 1;
            self.avail -= z + 1;
            self.pos += (z + 1) as usize;
            return ((z + 1) as usize, z as usize);
        }
        if window == n32 {
            // All n bits are buffered and zero.
            self.acc = self.acc.checked_shr(n32).unwrap_or(0);
            self.avail -= n32;
            self.pos += n;
            return (n, n);
        }
        // Buffered tail is all zeros; continue into the next aligned word.
        let have = self.avail;
        let boundary = self.pos + have as usize;
        let next = self.load_aligned(boundary / 64);
        let need = n32 - have;
        let rest = next & mask(need);
        if rest != 0 {
            let z2 = rest.trailing_zeros();
            let zeros = have + z2;
            self.acc = next.checked_shr(z2 + 1).unwrap_or(0);
            self.avail = 64 - (z2 + 1);
            self.pos += (zeros + 1) as usize;
            ((zeros + 1) as usize, zeros as usize)
        } else {
            self.acc = next.checked_shr(need).unwrap_or(0);
            self.avail = 64 - need;
            self.pos += n;
            (n, n)
        }
    }

    /// Absolute bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Skip to an absolute bit position (for fixed-rate blocks).
    pub fn seek(&mut self, bit: usize) {
        self.pos = bit;
        self.refill(bit);
    }
}

/// The original bit-at-a-time implementation, retained verbatim as the
/// executable specification of the stream layout. Property tests pin the
/// word-buffered streams above against these — the LSB-first layout *is*
/// the format, so equivalence here is format compatibility.
pub mod reference {
    /// Bit-at-a-time counterpart of [`super::WriteStream`].
    #[derive(Debug, Default, Clone)]
    pub struct RefWriteStream {
        buf: Vec<u8>,
        /// Bits used in the final byte (0 ⇒ boundary).
        bit_pos: u8,
    }

    impl RefWriteStream {
        /// New empty stream.
        pub fn new() -> Self {
            Self::default()
        }

        /// Append one bit; returns the bit.
        pub fn write_bit(&mut self, bit: bool) -> bool {
            if self.bit_pos == 0 {
                self.buf.push(0);
            }
            if bit {
                let last = self.buf.len() - 1;
                self.buf[last] |= 1 << self.bit_pos;
            }
            self.bit_pos = (self.bit_pos + 1) % 8;
            bit
        }

        /// Append the low `n` bits of `x`, LSB first; returns `x >> n`.
        pub fn write_bits(&mut self, x: u64, n: usize) -> u64 {
            debug_assert!(n <= 64);
            let mut v = x;
            for _ in 0..n {
                self.write_bit(v & 1 == 1);
                v >>= 1;
            }
            v
        }

        /// Total bits written.
        pub fn bit_len(&self) -> usize {
            if self.bit_pos == 0 {
                self.buf.len() * 8
            } else {
                (self.buf.len() - 1) * 8 + self.bit_pos as usize
            }
        }

        /// Pad with zero bits until `bit_len` reaches `target`.
        pub fn pad_to(&mut self, target: usize) {
            while self.bit_len() < target {
                self.write_bit(false);
            }
        }

        /// Finish, returning the underlying bytes.
        pub fn into_bytes(self) -> Vec<u8> {
            self.buf
        }
    }

    /// Bit-at-a-time counterpart of [`super::ReadStream`].
    #[derive(Debug, Clone)]
    pub struct RefReadStream<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> RefReadStream<'a> {
        /// Read from the start of `buf`.
        pub fn new(buf: &'a [u8]) -> Self {
            RefReadStream { buf, pos: 0 }
        }

        /// Next bit (false past the end).
        pub fn read_bit(&mut self) -> bool {
            let byte = self.pos / 8;
            let bit = if byte < self.buf.len() {
                (self.buf[byte] >> (self.pos % 8)) & 1 == 1
            } else {
                false
            };
            self.pos += 1;
            bit
        }

        /// Next `n` bits as a u64 (LSB-first).
        pub fn read_bits(&mut self, n: usize) -> u64 {
            debug_assert!(n <= 64);
            let mut v = 0u64;
            for i in 0..n {
                v |= (self.read_bit() as u64) << i;
            }
            v
        }

        /// Absolute bit position.
        pub fn bit_pos(&self) -> usize {
            self.pos
        }

        /// Skip forward to an absolute bit position.
        pub fn seek(&mut self, bit: usize) {
            self.pos = bit;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bits() {
        let mut w = WriteStream::new();
        assert_eq!(w.write_bits(0b1011_0010_1111, 12), 0);
        w.write_bit(true);
        let bytes = w.into_bytes();
        let mut r = ReadStream::new(&bytes);
        assert_eq!(r.read_bits(12), 0b1011_0010_1111);
        assert!(r.read_bit());
    }

    #[test]
    fn write_bits_returns_shifted_operand() {
        let mut w = WriteStream::new();
        assert_eq!(w.write_bits(0b11010, 3), 0b11);
    }

    #[test]
    fn lsb_first_byte_layout() {
        let mut w = WriteStream::new();
        w.write_bit(true); // bit 0
        w.write_bit(false);
        w.write_bit(true); // bit 2
        assert_eq!(w.into_bytes(), vec![0b0000_0101]);
    }

    #[test]
    fn read_past_end_gives_zeros() {
        let mut r = ReadStream::new(&[0xFF]);
        assert_eq!(r.read_bits(8), 0xFF);
        assert_eq!(r.read_bits(16), 0);
        assert_eq!(r.bit_pos(), 24);
    }

    #[test]
    fn pad_to_target() {
        let mut w = WriteStream::new();
        w.write_bit(true);
        w.pad_to(17);
        assert_eq!(w.bit_len(), 17);
    }

    #[test]
    fn seek_supports_random_access() {
        let mut w = WriteStream::new();
        w.write_bits(0xAAAA, 16);
        let bytes = w.into_bytes();
        let mut r = ReadStream::new(&bytes);
        r.seek(8);
        assert_eq!(r.read_bits(4), 0xA);
    }

    #[test]
    fn full_width_writes_cross_word_boundaries() {
        let mut w = WriteStream::new();
        w.write_bits(0b101, 3); // misalign
        assert_eq!(w.write_bits(u64::MAX, 64), 0);
        w.write_bits(0, 61);
        let bytes = w.into_bytes();
        let mut r = ReadStream::new(&bytes);
        assert_eq!(r.read_bits(3), 0b101);
        assert_eq!(r.read_bits(64), u64::MAX);
        assert_eq!(r.read_bits(61), 0);
    }

    #[test]
    fn zero_width_ops_are_noops() {
        let mut w = WriteStream::new();
        assert_eq!(w.write_bits(0xDEAD, 0), 0xDEAD);
        assert_eq!(w.bit_len(), 0);
        let mut r = ReadStream::new(&[0xFF]);
        assert_eq!(r.read_bits(0), 0);
        assert_eq!(r.bit_pos(), 0);
    }

    #[test]
    fn matches_reference_on_mixed_widths() {
        // Deterministic mixed-width sequence exercising every spill case.
        let mut x = 0x243f_6a88_85a3_08d3u64;
        let mut w = WriteStream::new();
        let mut rw = reference::RefWriteStream::new();
        for i in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let n = (i * 7 + (x as usize)) % 65;
            assert_eq!(w.write_bits(x, n), rw.write_bits(x, n));
            assert_eq!(w.bit_len(), rw.bit_len());
        }
        let a = w.into_bytes();
        let b = rw.into_bytes();
        assert_eq!(a, b);
        let mut r = ReadStream::new(&a);
        let mut rr = reference::RefReadStream::new(&b);
        let mut x = 0x1357_9bdf_2468_aceu64;
        while r.bit_pos() < a.len() * 8 + 130 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let n = (x as usize) % 65;
            assert_eq!(r.read_bits(n), rr.read_bits(n), "at bit {}", rr.bit_pos());
            assert_eq!(r.bit_pos(), rr.bit_pos());
        }
    }
}
