//! Two's-complement ↔ negabinary conversion.
//!
//! The embedded coder transmits bit planes from most to least significant.
//! Two's-complement is unsuitable: small negative numbers have *all* high
//! bits set. Negabinary (base −2) gives small magnitudes small codes
//! regardless of sign, so high bit planes of near-zero coefficients are
//! zero and run-length encode almost for free.

/// Mask of alternating ones used by the O(1) conversion.
const NBMASK: u64 = 0xAAAA_AAAA_AAAA_AAAA;

/// Convert signed to negabinary.
#[inline]
pub fn encode(x: i64) -> u64 {
    ((x as u64).wrapping_add(NBMASK)) ^ NBMASK
}

/// Convert negabinary back to signed.
#[inline]
pub fn decode(x: u64) -> i64 {
    (x ^ NBMASK).wrapping_sub(NBMASK) as i64
}

/// Encode a whole coefficient block. The per-element conversion is two
/// word ops, so batching over the slice lets the compiler vectorize it.
#[inline]
pub fn encode_block(src: &[i64], dst: &mut [u64]) {
    debug_assert_eq!(src.len(), dst.len());
    for (o, &v) in dst.iter_mut().zip(src) {
        *o = encode(v);
    }
}

/// Decode a whole coefficient block (inverse of [`encode_block`]).
#[inline]
pub fn decode_block(src: &[u64], dst: &mut [i64]) {
    debug_assert_eq!(src.len(), dst.len());
    for (o, &v) in dst.iter_mut().zip(src) {
        *o = decode(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_maps_to_zero() {
        assert_eq!(encode(0), 0);
        assert_eq!(decode(0), 0);
    }

    #[test]
    fn small_values_roundtrip() {
        for x in -1000i64..=1000 {
            assert_eq!(decode(encode(x)), x, "x={x}");
        }
    }

    #[test]
    fn known_negabinary_codes() {
        // 1 = 1, −1 = 11 (−2+1... base −2: 11 = −2+1 = −1), 2 = 110, −2 = 10.
        assert_eq!(encode(1), 0b1);
        assert_eq!(encode(-1), 0b11);
        assert_eq!(encode(2), 0b110);
        assert_eq!(encode(-2), 0b10);
        assert_eq!(encode(3), 0b111);
    }

    #[test]
    fn magnitude_controls_code_width() {
        // |x| < 2^k ⟹ negabinary fits in k+2 bits (negatives need one
        // extra digit in base −2): high planes are zero.
        for k in 1..40u32 {
            let x = (1i64 << k) - 1;
            for v in [x, -x] {
                let nb = encode(v);
                assert!(
                    64 - nb.leading_zeros() <= k + 2,
                    "v={v} nb width {}",
                    64 - nb.leading_zeros()
                );
            }
        }
    }

    #[test]
    fn large_values_roundtrip() {
        for &x in &[i64::MAX / 4, -(i64::MAX / 4), 1 << 40, -(1 << 40)] {
            assert_eq!(decode(encode(x)), x);
        }
    }

    #[test]
    fn block_conversion_matches_scalar() {
        let src: Vec<i64> = (-64..64).map(|i| i * 1_234_567 - 89).collect();
        let mut nb = vec![0u64; src.len()];
        encode_block(&src, &mut nb);
        for (&n, &s) in nb.iter().zip(&src) {
            assert_eq!(n, encode(s));
        }
        let mut back = vec![0i64; src.len()];
        decode_block(&nb, &mut back);
        assert_eq!(back, src);
    }
}
