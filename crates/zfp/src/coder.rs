//! Embedded bit-plane coder with group testing.
//!
//! Transform coefficients (in negabinary, sequency order) are transmitted
//! one bit plane at a time, most-significant plane first. Within a plane,
//! the first `n` coefficients — those already past the significance
//! frontier from earlier planes — send their bits verbatim; the remainder
//! are group-tested: one bit says whether *any* remaining coefficient has a
//! bit in this plane, followed by a unary-coded position. This is a direct
//! transcription of ZFP's `encode_ints`/`decode_ints`.
//!
//! A bit `budget` caps the block's size (fixed-rate mode); both sides track
//! it identically so a truncated stream still decodes in lock-step.

use crate::bitstream::{ReadStream, WriteStream};

/// Encode `size` negabinary coefficients from plane `intprec − 1` down to
/// plane `kmin`, spending at most `budget` bits. Returns the number of
/// bits actually written.
pub fn encode_ints(
    data: &[u64],
    intprec: u32,
    kmin: u32,
    mut budget: usize,
    w: &mut WriteStream,
) -> usize {
    let size = data.len();
    debug_assert!(size <= 64);
    let start = w.bit_len();
    let mut n = 0usize;
    let mut k = intprec;
    while budget > 0 && k > kmin {
        k -= 1;
        // Step 1: extract bit plane k.
        let mut x = 0u64;
        for (i, &v) in data.iter().enumerate() {
            x += ((v >> k) & 1) << i;
        }
        // Step 2: verbatim bits for coefficients before the frontier.
        let m = n.min(budget);
        budget -= m;
        x = w.write_bits(x, m);
        // Step 3: group-tested remainder.
        while n < size && budget > 0 {
            budget -= 1;
            if !w.write_bit(x != 0) {
                break;
            }
            while n < size - 1 && budget > 0 {
                budget -= 1;
                if w.write_bit(x & 1 == 1) {
                    break;
                }
                x >>= 1;
                n += 1;
            }
            x >>= 1;
            n += 1;
        }
    }
    w.bit_len() - start
}

/// Decode `size` negabinary coefficients written by [`encode_ints`].
pub fn decode_ints(
    size: usize,
    intprec: u32,
    kmin: u32,
    mut budget: usize,
    r: &mut ReadStream<'_>,
) -> Vec<u64> {
    debug_assert!(size <= 64);
    let mut data = vec![0u64; size];
    let mut n = 0usize;
    let mut k = intprec;
    while budget > 0 && k > kmin {
        k -= 1;
        // Verbatim bits.
        let m = n.min(budget);
        budget -= m;
        let mut x = r.read_bits(m);
        // Group-tested remainder.
        while n < size && budget > 0 {
            budget -= 1;
            if !r.read_bit() {
                break;
            }
            while n < size - 1 && budget > 0 {
                budget -= 1;
                if r.read_bit() {
                    break;
                }
                n += 1;
            }
            x += 1u64 << n;
            n += 1;
        }
        // Deposit the plane.
        let mut bits = x;
        let mut i = 0usize;
        while bits != 0 {
            data[i] += (bits & 1) << k;
            bits >>= 1;
            i += 1;
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixedpoint::INTPREC;
    use crate::negabinary;

    fn roundtrip(values: &[i64], kmin: u32, budget: usize) -> Vec<i64> {
        let nb: Vec<u64> = values.iter().map(|&v| negabinary::encode(v)).collect();
        let mut w = WriteStream::new();
        encode_ints(&nb, INTPREC, kmin, budget, &mut w);
        let bytes = w.into_bytes();
        let mut r = ReadStream::new(&bytes);
        decode_ints(values.len(), INTPREC, kmin, budget, &mut r)
            .into_iter()
            .map(negabinary::decode)
            .collect()
    }

    #[test]
    fn lossless_when_all_planes_coded() {
        let values: Vec<i64> = vec![0, 1, -1, 1000, -1000, 123456, -654321, 1 << 30];
        let rec = roundtrip(&values, 0, usize::MAX / 2);
        assert_eq!(rec, values);
    }

    #[test]
    fn all_zero_block_is_one_bit_per_plane() {
        let values = vec![0u64; 64];
        let mut w = WriteStream::new();
        let bits = encode_ints(&values, INTPREC, 0, usize::MAX / 2, &mut w);
        assert_eq!(bits as u32, INTPREC, "one group-test bit per plane");
    }

    #[test]
    fn truncated_planes_bound_error() {
        let values: Vec<i64> = (0..16).map(|i| (i * 1001 - 8000) as i64).collect();
        // Drop the lowest 8 planes: error per coefficient < 2^9 in
        // negabinary weight terms.
        let kmin = 8;
        let rec = roundtrip(&values, kmin, usize::MAX / 2);
        for (a, b) in values.iter().zip(&rec) {
            assert!((a - b).abs() < 1 << 9, "{a} vs {b}");
        }
    }

    #[test]
    fn budget_truncation_keeps_sides_in_sync() {
        let values: Vec<i64> = (0..64).map(|i| ((i * 7919) % 4001 - 2000) as i64).collect();
        for budget in [16usize, 64, 256, 1024] {
            let nb: Vec<u64> = values.iter().map(|&v| negabinary::encode(v)).collect();
            let mut w = WriteStream::new();
            let used = encode_ints(&nb, INTPREC, 0, budget, &mut w);
            assert!(used <= budget);
            let bytes = w.into_bytes();
            let mut r = ReadStream::new(&bytes);
            let rec = decode_ints(values.len(), INTPREC, 0, budget, &mut r);
            // More budget ⇒ error can only improve; with generous budget it
            // must be exact.
            if budget >= 64 * INTPREC as usize {
                let dec: Vec<i64> = rec.into_iter().map(negabinary::decode).collect();
                assert_eq!(dec, values);
            }
        }
    }

    #[test]
    fn error_decreases_with_budget() {
        let values: Vec<i64> = (0..64).map(|i| ((i * 31 + 7) % 997 - 500) as i64 * 1024).collect();
        let mut prev_err = i64::MAX;
        for budget in [64usize, 128, 512, 2048, 8192] {
            let rec = roundtrip(&values, 0, budget);
            let err: i64 = values.iter().zip(&rec).map(|(a, b)| (a - b).abs()).max().unwrap();
            assert!(err <= prev_err, "budget {budget}: err {err} > prev {prev_err}");
            prev_err = err;
        }
        assert_eq!(prev_err, 0);
    }

    #[test]
    fn single_coefficient_block() {
        let rec = roundtrip(&[-42], 0, usize::MAX / 2);
        assert_eq!(rec, vec![-42]);
    }

    #[test]
    fn sparse_significance_pattern() {
        // Only one coefficient deep in the block is nonzero: group testing
        // should code this compactly and exactly.
        let mut values = vec![0i64; 64];
        values[63] = 99;
        let nb: Vec<u64> = values.iter().map(|&v| negabinary::encode(v)).collect();
        let mut w = WriteStream::new();
        let bits = encode_ints(&nb, INTPREC, 0, usize::MAX / 2, &mut w);
        let bytes = w.into_bytes();
        let mut r = ReadStream::new(&bytes);
        let rec: Vec<i64> = decode_ints(64, INTPREC, 0, usize::MAX / 2, &mut r)
            .into_iter()
            .map(negabinary::decode)
            .collect();
        assert_eq!(rec, values);
        // 64 coefficients × 35 planes would be 2240 verbatim bits; group
        // testing should beat that by a wide margin.
        assert!(bits < 700, "bits={bits}");
    }
}
