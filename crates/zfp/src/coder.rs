//! Embedded bit-plane coder with group testing.
//!
//! Transform coefficients (in negabinary, sequency order) are transmitted
//! one bit plane at a time, most-significant plane first. Within a plane,
//! the first `n` coefficients — those already past the significance
//! frontier from earlier planes — send their bits verbatim; the remainder
//! are group-tested: one bit says whether *any* remaining coefficient has a
//! bit in this plane, followed by a unary-coded position. This is a direct
//! transcription of ZFP's `encode_ints`/`decode_ints`.
//!
//! A bit `budget` caps the block's size (fixed-rate mode); both sides track
//! it identically so a truncated stream still decodes in lock-step.

use crate::bitstream::{ReadStream, WriteStream};

/// In-place 64×64 bit-matrix transpose (LSB orientation): on return,
/// bit `r` of `a[c]` equals bit `c` of the input's `a[r]`. The recursive
/// block-swap runs in 6·32 word operations — far cheaper than the 64×64
/// bit-by-bit gather it replaces, and it is its own inverse.
fn transpose64_scalar(a: &mut [u64; 64]) {
    let mut j = 32u32;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let s = j as usize;
        let mut k = 0usize;
        while k < 64 {
            // Swap the (row-bit-j set, col-bit-j clear) block with its
            // mirror across the diagonal.
            let t = ((a[k] >> j) ^ a[k + s]) & m;
            a[k] ^= t << j;
            a[k + s] ^= t;
            k = (k + s + 1) & !s;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// AVX2 transpose: the same butterfly network, four rows per vector. The
/// four outer levels (partner distance ≥ 4 rows) are straight vector
/// butterflies over contiguous register pairs; the last two levels swap
/// within one register via lane permutes. Bit-exact with the scalar path.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use core::arch::x86_64::*;

    /// One butterfly level with partner distance `J` rows (`J ≥ 4`).
    ///
    /// # Safety
    /// `p` must point at 64 readable/writable u64s; caller must have
    /// verified AVX2 support.
    #[target_feature(enable = "avx2")]
    unsafe fn level<const J: i32>(p: *mut __m256i, mk: i64) {
        let m = _mm256_set1_epi64x(mk);
        let step = (J as usize) / 4;
        let mut k = 0usize;
        while k < 16 {
            let lo = _mm256_loadu_si256(p.add(k));
            let hi = _mm256_loadu_si256(p.add(k + step));
            let t = _mm256_and_si256(_mm256_xor_si256(_mm256_srli_epi64(lo, J), hi), m);
            _mm256_storeu_si256(p.add(k), _mm256_xor_si256(lo, _mm256_slli_epi64(t, J)));
            _mm256_storeu_si256(p.add(k + step), _mm256_xor_si256(hi, t));
            k += 1;
            if k & step != 0 {
                k += step;
            }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support (`is_x86_feature_detected!`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn transpose64(a: &mut [u64; 64]) {
        let p = a.as_mut_ptr() as *mut __m256i;
        level::<32>(p, 0x0000_0000_FFFF_FFFFu64 as i64);
        level::<16>(p, 0x0000_FFFF_0000_FFFFu64 as i64);
        level::<8>(p, 0x00FF_00FF_00FF_00FFu64 as i64);
        level::<4>(p, 0x0F0F_0F0F_0F0F_0F0Fu64 as i64);
        // Partner distances 2 and 1: partners live inside one register.
        let m2 = _mm256_set1_epi64x(0x3333_3333_3333_3333u64 as i64);
        let m1 = _mm256_set1_epi64x(0x5555_5555_5555_5555u64 as i64);
        for k in 0..16 {
            let v = _mm256_loadu_si256(p.add(k));
            // Distance 2: pairs (lane0, lane2), (lane1, lane3).
            let s = _mm256_permute4x64_epi64(v, 0b01_00_11_10);
            let t = _mm256_and_si256(_mm256_xor_si256(_mm256_srli_epi64(v, 2), s), m2);
            let tp = _mm256_permute4x64_epi64(t, 0b01_00_11_10);
            let upd = _mm256_blend_epi32(_mm256_slli_epi64(t, 2), tp, 0b1111_0000);
            let v = _mm256_xor_si256(v, upd);
            // Distance 1: pairs (lane0, lane1), (lane2, lane3).
            let s = _mm256_permute4x64_epi64(v, 0b10_11_00_01);
            let t = _mm256_and_si256(_mm256_xor_si256(_mm256_srli_epi64(v, 1), s), m1);
            let tp = _mm256_permute4x64_epi64(t, 0b10_11_00_01);
            let upd = _mm256_blend_epi32(_mm256_slli_epi64(t, 1), tp, 0b1100_1100);
            _mm256_storeu_si256(p.add(k), _mm256_xor_si256(v, upd));
        }
    }
}

/// Transpose dispatch: AVX2 when the CPU has it, scalar butterfly
/// otherwise. Both produce identical results (tested below).
fn transpose64(a: &mut [u64; 64]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified; `a` is a valid &mut.
        unsafe { avx2::transpose64(a) };
        return;
    }
    transpose64_scalar(a)
}

/// Gather the bit planes of up to 64 coefficients: `planes[k]` holds bit
/// `k` of every coefficient, with coefficient `i` at bit `i`. Full blocks
/// use the word-parallel transpose; partial blocks scatter only set bits.
fn plane_masks(data: &[u64], planes: &mut [u64; 64]) {
    if data.len() == 64 {
        planes.copy_from_slice(data);
        transpose64(planes);
    } else {
        planes.fill(0);
        for (i, &v) in data.iter().enumerate() {
            let mut v = v;
            while v != 0 {
                planes[v.trailing_zeros() as usize] |= 1u64 << i;
                v &= v - 1;
            }
        }
    }
}

/// Encode `size` negabinary coefficients from plane `intprec − 1` down to
/// plane `kmin`, spending at most `budget` bits. Returns the number of
/// bits actually written.
///
/// The stream is bit-identical to the historical bit-at-a-time coder: the
/// planes are transposed out of the coefficients once up front, and each
/// group-test run (`1` group bit, zero or more `0` skip bits, an optional
/// `1` stop bit) is emitted as a single `write_bits` call.
pub fn encode_ints(
    data: &[u64],
    intprec: u32,
    kmin: u32,
    mut budget: usize,
    w: &mut WriteStream,
) -> usize {
    let size = data.len();
    debug_assert!(size <= 64);
    let start = w.bit_len();
    let mut planes = [0u64; 64];
    plane_masks(data, &mut planes);
    let mut n = 0usize;
    let mut k = intprec;
    while budget > 0 && k > kmin {
        k -= 1;
        let mut x = planes[k as usize];
        // Verbatim bits for coefficients before the significance frontier.
        let m = n.min(budget);
        budget -= m;
        x = w.write_bits(x, m);
        // Group-tested remainder: one batched emit per significant
        // coefficient (or a lone 0 group bit when the plane is spent).
        while n < size && budget > 0 {
            if x == 0 {
                budget -= 1;
                w.write_bit(false);
                break;
            }
            let z = x.trailing_zeros() as usize;
            // The stop bit is implicit when the run reaches the last
            // coefficient — the decoder infers it from `size`.
            let stop = n + z < size - 1;
            let run = 1 + z + stop as usize;
            let pattern = if stop { 1u64 | (1u64 << (1 + z)) } else { 1u64 };
            let emit = run.min(budget);
            w.write_bits(pattern, emit);
            budget -= emit;
            x = x.checked_shr((z + 1) as u32).unwrap_or(0);
            n += z + 1;
        }
    }
    w.bit_len() - start
}

/// Decode `size` negabinary coefficients written by [`encode_ints`] into
/// `data` (overwritten), reusing the caller's buffer.
pub fn decode_ints_into(
    data: &mut [u64],
    intprec: u32,
    kmin: u32,
    mut budget: usize,
    r: &mut ReadStream<'_>,
) {
    let size = data.len();
    debug_assert!(size <= 64);
    let mut planes = [0u64; 64];
    let mut n = 0usize;
    let mut k = intprec;
    while budget > 0 && k > kmin {
        k -= 1;
        // Verbatim bits.
        let m = n.min(budget);
        budget -= m;
        let mut x = r.read_bits(m);
        // Group-tested remainder.
        while n < size && budget > 0 {
            budget -= 1;
            if !r.read_bit() {
                break;
            }
            // Batched unary scan up to the stop bit (or `avail` zeros when
            // it falls past the budget/block end). Reads past the end see
            // zeros, exactly like the bit-at-a-time loop.
            let avail = (size - 1 - n).min(budget);
            let (consumed, skipped) = r.scan_unary(avail);
            budget -= consumed;
            n += skipped;
            x += 1u64 << n;
            n += 1;
        }
        planes[k as usize] = x;
    }
    // Scatter the planes back into coefficients.
    if size == 64 {
        transpose64(&mut planes);
        data.copy_from_slice(&planes);
    } else {
        data.fill(0);
        for (k, &p) in planes.iter().enumerate() {
            let mut bits = p;
            while bits != 0 {
                data[bits.trailing_zeros() as usize] += 1u64 << k;
                bits &= bits - 1;
            }
        }
    }
}

/// Decode `size` negabinary coefficients written by [`encode_ints`].
pub fn decode_ints(
    size: usize,
    intprec: u32,
    kmin: u32,
    budget: usize,
    r: &mut ReadStream<'_>,
) -> Vec<u64> {
    let mut data = vec![0u64; size];
    decode_ints_into(&mut data, intprec, kmin, budget, r);
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixedpoint::INTPREC;
    use crate::negabinary;

    fn roundtrip(values: &[i64], kmin: u32, budget: usize) -> Vec<i64> {
        let nb: Vec<u64> = values.iter().map(|&v| negabinary::encode(v)).collect();
        let mut w = WriteStream::new();
        encode_ints(&nb, INTPREC, kmin, budget, &mut w);
        let bytes = w.into_bytes();
        let mut r = ReadStream::new(&bytes);
        decode_ints(values.len(), INTPREC, kmin, budget, &mut r)
            .into_iter()
            .map(negabinary::decode)
            .collect()
    }

    #[test]
    fn transpose64_matches_naive_and_is_involutive() {
        let mut x = 0x0123_4567_89ab_cdefu64;
        let mut a = [0u64; 64];
        for slot in a.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *slot = x;
        }
        let orig = a;
        let mut naive = [0u64; 64];
        for (c, out) in naive.iter_mut().enumerate() {
            for (r, &row) in orig.iter().enumerate() {
                *out |= ((row >> c) & 1) << r;
            }
        }
        transpose64(&mut a);
        assert_eq!(a, naive);
        transpose64(&mut a);
        assert_eq!(a, orig);
        // The scalar butterfly must agree with whatever the dispatcher
        // picked (on AVX2 machines this pins the SIMD path to it).
        let mut s = orig;
        transpose64_scalar(&mut s);
        assert_eq!(s, naive);
    }

    #[test]
    fn plane_masks_match_per_plane_extraction() {
        for size in [1usize, 4, 16, 33, 64] {
            let mut x = 0x9e37_79b9_7f4a_7c15u64 ^ size as u64;
            let data: Vec<u64> = (0..size)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x >> (x % 50)
                })
                .collect();
            let mut planes = [0u64; 64];
            plane_masks(&data, &mut planes);
            for (k, &p) in planes.iter().enumerate() {
                let mut expect = 0u64;
                for (i, &v) in data.iter().enumerate() {
                    expect += ((v >> k) & 1) << i;
                }
                assert_eq!(p, expect, "size {size} plane {k}");
            }
        }
    }

    #[test]
    fn decode_into_reuses_buffer() {
        let values: Vec<i64> = (0..64).map(|i| (i * 31 - 990) as i64).collect();
        let nb: Vec<u64> = values.iter().map(|&v| negabinary::encode(v)).collect();
        let mut w = WriteStream::new();
        encode_ints(&nb, INTPREC, 0, usize::MAX / 2, &mut w);
        let bytes = w.into_bytes();
        let mut buf = vec![0xFFFF_FFFFu64; 64]; // stale contents must be overwritten
        let mut r = ReadStream::new(&bytes);
        decode_ints_into(&mut buf, INTPREC, 0, usize::MAX / 2, &mut r);
        let dec: Vec<i64> = buf.iter().map(|&v| negabinary::decode(v)).collect();
        assert_eq!(dec, values);
    }

    #[test]
    fn lossless_when_all_planes_coded() {
        let values: Vec<i64> = vec![0, 1, -1, 1000, -1000, 123456, -654321, 1 << 30];
        let rec = roundtrip(&values, 0, usize::MAX / 2);
        assert_eq!(rec, values);
    }

    #[test]
    fn all_zero_block_is_one_bit_per_plane() {
        let values = vec![0u64; 64];
        let mut w = WriteStream::new();
        let bits = encode_ints(&values, INTPREC, 0, usize::MAX / 2, &mut w);
        assert_eq!(bits as u32, INTPREC, "one group-test bit per plane");
    }

    #[test]
    fn truncated_planes_bound_error() {
        let values: Vec<i64> = (0..16).map(|i| (i * 1001 - 8000) as i64).collect();
        // Drop the lowest 8 planes: error per coefficient < 2^9 in
        // negabinary weight terms.
        let kmin = 8;
        let rec = roundtrip(&values, kmin, usize::MAX / 2);
        for (a, b) in values.iter().zip(&rec) {
            assert!((a - b).abs() < 1 << 9, "{a} vs {b}");
        }
    }

    #[test]
    fn budget_truncation_keeps_sides_in_sync() {
        let values: Vec<i64> = (0..64).map(|i| ((i * 7919) % 4001 - 2000) as i64).collect();
        for budget in [16usize, 64, 256, 1024] {
            let nb: Vec<u64> = values.iter().map(|&v| negabinary::encode(v)).collect();
            let mut w = WriteStream::new();
            let used = encode_ints(&nb, INTPREC, 0, budget, &mut w);
            assert!(used <= budget);
            let bytes = w.into_bytes();
            let mut r = ReadStream::new(&bytes);
            let rec = decode_ints(values.len(), INTPREC, 0, budget, &mut r);
            // More budget ⇒ error can only improve; with generous budget it
            // must be exact.
            if budget >= 64 * INTPREC as usize {
                let dec: Vec<i64> = rec.into_iter().map(negabinary::decode).collect();
                assert_eq!(dec, values);
            }
        }
    }

    #[test]
    fn error_decreases_with_budget() {
        let values: Vec<i64> = (0..64).map(|i| ((i * 31 + 7) % 997 - 500) as i64 * 1024).collect();
        let mut prev_err = i64::MAX;
        for budget in [64usize, 128, 512, 2048, 8192] {
            let rec = roundtrip(&values, 0, budget);
            let err: i64 = values.iter().zip(&rec).map(|(a, b)| (a - b).abs()).max().unwrap();
            assert!(err <= prev_err, "budget {budget}: err {err} > prev {prev_err}");
            prev_err = err;
        }
        assert_eq!(prev_err, 0);
    }

    #[test]
    fn single_coefficient_block() {
        let rec = roundtrip(&[-42], 0, usize::MAX / 2);
        assert_eq!(rec, vec![-42]);
    }

    #[test]
    fn sparse_significance_pattern() {
        // Only one coefficient deep in the block is nonzero: group testing
        // should code this compactly and exactly.
        let mut values = vec![0i64; 64];
        values[63] = 99;
        let nb: Vec<u64> = values.iter().map(|&v| negabinary::encode(v)).collect();
        let mut w = WriteStream::new();
        let bits = encode_ints(&nb, INTPREC, 0, usize::MAX / 2, &mut w);
        let bytes = w.into_bytes();
        let mut r = ReadStream::new(&bytes);
        let rec: Vec<i64> = decode_ints(64, INTPREC, 0, usize::MAX / 2, &mut r)
            .into_iter()
            .map(negabinary::decode)
            .collect();
        assert_eq!(rec, values);
        // 64 coefficients × 35 planes would be 2240 verbatim bits; group
        // testing should beat that by a wide margin.
        assert!(bits < 700, "bits={bits}");
    }
}
