//! Block-floating-point conversion.
//!
//! Each ZFP block is normalized to a common exponent (the largest exponent
//! in the block) and converted to signed fixed-point integers with `Q`
//! fraction bits. We keep the integers in `i64` with generous headroom so
//! the decorrelating transform can never overflow, trading a little memory
//! for provable safety (the reference implementation uses `int32` with
//! carefully counted guard bits). The fraction width is per element type
//! ([`ZfpElement::Q`]); the constants below are the `f32` instance.

use crate::element::ZfpElement;

/// Fraction bits of the fixed-point representation.
pub const Q: i32 = 30;

/// Number of bit planes coded per block: |i| ≤ 2^Q before the transform and
/// the transform's worst-case gain is < 2^3 for 3-D, so negabinary values
/// fit comfortably in `Q + 5` bits.
pub const INTPREC: u32 = (Q + 5) as u32;

/// Exponent (base-2) of the largest magnitude in the block, as used for the
/// common scale factor; 0 magnitude blocks return `None`.
pub fn block_exponent<T: ZfpElement>(block: &[T]) -> Option<i32> {
    let mut max = 0.0f64;
    for &v in block {
        let a = v.to_f64().abs();
        if a.is_finite() && a > max {
            max = a;
        }
    }
    if max == 0.0 {
        None
    } else {
        // frexp-style exponent: max = m · 2^e with m ∈ [0.5, 1).
        Some(max.log2().floor() as i32 + 1)
    }
}

/// Scale a block to fixed point given its common exponent.
pub fn forward<T: ZfpElement>(block: &[T], emax: i32, out: &mut [i64]) {
    debug_assert_eq!(block.len(), out.len());
    let q = T::Q;
    let scale = (2.0f64).powi(q - emax);
    for (o, &v) in out.iter_mut().zip(block) {
        let v = v.to_f64();
        let x = if v.is_finite() { v * scale } else { 0.0 };
        // Round half away from zero, equivalent to `x.round() as i64` but
        // without the libm call: truncate (saturating), then bump by one
        // when the discarded fraction reaches one half. Exact for every
        // finite x — |x| ≥ 2^53 has no fraction, and saturated values are
        // pulled back by the clamp below.
        let t = x as i64;
        let frac = x - t as f64;
        let r = t + (frac >= 0.5) as i64 - (frac <= -0.5) as i64;
        // Clamp pathological values (|v| slightly above 2^emax after
        // rounding) into range.
        *o = r.clamp(-(1i64 << q), 1i64 << q);
    }
}

/// Undo [`forward`].
pub fn inverse<T: ZfpElement>(ints: &[i64], emax: i32, out: &mut [T]) {
    debug_assert_eq!(ints.len(), out.len());
    let scale = (2.0f64).powi(emax - T::Q);
    for (o, &i) in out.iter_mut().zip(ints) {
        *o = T::from_f64(i as f64 * scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_of_unit_block() {
        // max = 1.0 = 0.5·2^1 → emax = 1
        assert_eq!(block_exponent(&[0.25, -1.0, 0.5]), Some(1));
    }

    #[test]
    fn exponent_of_zero_block() {
        assert_eq!(block_exponent(&[0.0, -0.0]), None);
    }

    #[test]
    fn exponent_ignores_non_finite() {
        assert_eq!(block_exponent(&[f32::NAN, 2.0, f32::INFINITY]), Some(2));
    }

    #[test]
    fn forward_inverse_accuracy() {
        let block = [0.7f32, -0.33, 0.001, -0.9999];
        let emax = block_exponent(&block).unwrap();
        let mut ints = [0i64; 4];
        forward(&block, emax, &mut ints);
        let mut rec = [0.0f32; 4];
        inverse(&ints, emax, &mut rec);
        for (a, b) in block.iter().zip(&rec) {
            // Quantization error ≤ 2^(emax−Q−1).
            let tol = (2.0f64).powi(emax - Q - 1) * 1.01;
            assert!((*a as f64 - *b as f64).abs() <= tol, "{a} vs {b}");
        }
    }

    #[test]
    fn forward_respects_q_range() {
        let block = [1.0f32, -1.0, 0.5, 0.25];
        let emax = block_exponent(&block).unwrap();
        let mut ints = [0i64; 4];
        forward(&block, emax, &mut ints);
        for &i in &ints {
            assert!(i.abs() <= 1i64 << Q);
        }
    }

    #[test]
    fn large_magnitudes_scale_correctly() {
        let block = [3.0e30f32, -1.5e30, 0.0, 2.9e30];
        let emax = block_exponent(&block).unwrap();
        let mut ints = [0i64; 4];
        forward(&block, emax, &mut ints);
        let mut rec = [0.0f32; 4];
        inverse(&ints, emax, &mut rec);
        for (a, b) in block.iter().zip(&rec) {
            let rel = if *a == 0.0 { (*b).abs() as f64 } else { ((a - b) / a).abs() as f64 };
            assert!(rel < 1e-6, "{a} vs {b}");
        }
    }
}
