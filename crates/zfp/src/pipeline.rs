//! Whole-array ZFP compression/decompression.
//!
//! Every 4^d block passes through: block-floating-point conversion →
//! lifted decorrelating transform → sequency reordering → negabinary →
//! embedded bit-plane coding. The per-block plane cutoff and bit budget are
//! derived from the array-level [`ZfpMode`] and the block's exponent, using
//! the same arithmetic on both sides so nothing but the exponent needs to
//! be stored per block.
//!
//! Both `f32` and `f64` fields are supported through [`ZfpElement`]; the
//! element type is recorded in the header and checked on decode.

use crate::bitstream::{ReadStream, WriteStream};
use crate::block::{self, Geom, SIDE};
use crate::coder;
use crate::element::ZfpElement;
use crate::fixedpoint;
use crate::order;
use crate::transform;
use crate::{ZfpCompressed, ZfpError, ZfpMode, ZfpStats};

/// Stream magic.
pub const MAGIC: [u8; 4] = *b"ZFL1";

/// Per-block coding parameters derived from mode + block exponent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockParams {
    /// Lowest coded plane.
    kmin: u32,
    /// Bit budget for the coefficient payload.
    budget: usize,
}

/// Effectively-unlimited budget for non-rate modes.
const NO_BUDGET: usize = usize::MAX / 2;

fn block_params<T: ZfpElement>(mode: &ZfpMode, d: usize, emax: i32) -> BlockParams {
    match *mode {
        ZfpMode::FixedAccuracy(tol) => {
            // Keep planes whose weight exceeds tol / 2^(2(d+1)); the guard
            // absorbs transform error amplification.
            let minexp = tol.log2().floor() as i32;
            let guard = 2 * (d as i32 + 1);
            let kmin = (minexp - guard - emax + T::Q).clamp(0, T::INTPREC as i32) as u32;
            BlockParams { kmin, budget: NO_BUDGET }
        }
        ZfpMode::FixedPrecision(prec) => {
            let prec = prec.min(T::INTPREC);
            BlockParams { kmin: T::INTPREC - prec, budget: NO_BUDGET }
        }
        ZfpMode::FixedRate(bpv) => {
            let block_len = SIDE.pow(d as u32);
            let maxbits = (bpv * block_len as f64).ceil() as usize;
            // Reserve the header bits (zero flag + exponent).
            let budget = maxbits.saturating_sub(1 + T::EMAX_BITS);
            BlockParams { kmin: 0, budget }
        }
    }
}

/// Total bits one fixed-rate block occupies (header + payload + padding).
fn rate_block_bits(bpv: f64, d: usize) -> usize {
    (bpv * SIDE.pow(d as u32) as f64).ceil() as usize
}

/// Compress `data` shaped as `dims` (1–4 dims, slowest first), for any
/// supported element type.
pub fn compress_typed<T: ZfpElement>(
    data: &[T],
    dims: &[usize],
    mode: &ZfpMode,
) -> Result<ZfpCompressed, ZfpError> {
    let g = Geom::new(dims).ok_or(ZfpError::InvalidDims)?;
    if g.len() != data.len() {
        return Err(ZfpError::InvalidDims);
    }
    mode.validate()?;

    let d = g.d;
    let blen = g.block_len();
    let perm = order::permutation(d);
    let mut w = WriteStream::new();
    let mut fblock: Vec<T> = vec![T::from_f64(0.0); blen];
    let mut ints = vec![0i64; blen];
    let mut nb = vec![0u64; blen];
    let mut zero_blocks = 0u64;
    // Per-block timings accumulate locally; the global registry is touched
    // once per compress call (after the loop), never per block.
    let mut transform_laps = lcpio_trace::Stopwatch::new();
    let mut coder_laps = lcpio_trace::Stopwatch::new();
    let mut bit_planes = 0u64;

    let (bz, by, bx) = g.block_counts();
    for bk in 0..bz {
        for bj in 0..by {
            for bi in 0..bx {
                let block_start = w.bit_len();
                block::gather(data, &g, bk, bj, bi, &mut fblock);
                let emax = fixedpoint::block_exponent(&fblock);
                let params = emax.map(|e| block_params::<T>(mode, d, e));
                let skip = match (emax, &params) {
                    (None, _) => true,
                    // All kept planes truncated ⇒ the block rounds to zero.
                    (Some(_), Some(p)) if p.kmin >= T::INTPREC => true,
                    _ => false,
                };
                if skip {
                    w.write_bit(false);
                    zero_blocks += 1;
                } else {
                    let emax = emax.expect("skip guard covers None");
                    let p = params.expect("skip guard covers None");
                    w.write_bit(true);
                    w.write_bits((emax + T::EMAX_BIAS) as u64, T::EMAX_BITS);
                    transform_laps.lap(|| {
                        fixedpoint::forward(&fblock, emax, &mut ints);
                        transform::forward(&mut ints, d);
                        order::apply_negabinary(&ints, &perm, &mut nb);
                    });
                    coder_laps
                        .lap(|| coder::encode_ints(&nb, T::INTPREC, p.kmin, p.budget, &mut w));
                    bit_planes += (T::INTPREC - p.kmin) as u64;
                }
                // Fixed-rate blocks are padded to their exact budget so the
                // stream supports random block access.
                if let ZfpMode::FixedRate(bpv) = mode {
                    w.pad_to(block_start + rate_block_bits(*bpv, d));
                }
            }
        }
    }
    transform_laps.commit("zfp.transform");
    coder_laps.commit("zfp.coder");

    let bitstream_span = lcpio_trace::span("zfp.bitstream");
    let payload = w.into_bytes();
    let bitstream_bits = payload.len() * 8;

    // ---- envelope ----
    let mut out = Vec::with_capacity(payload.len() + 64);
    out.extend_from_slice(&MAGIC);
    out.push(T::TYPE_TAG);
    out.push(dims.len() as u8);
    for &dim in dims {
        out.extend_from_slice(&(dim as u64).to_le_bytes());
    }
    let (tag, param) = mode.encode();
    out.push(tag);
    out.extend_from_slice(&param.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    drop(bitstream_span);

    let stats = ZfpStats {
        elements: data.len() as u64,
        input_bytes: std::mem::size_of_val(data) as u64,
        output_bytes: out.len() as u64,
        blocks: g.num_blocks() as u64,
        zero_blocks,
        payload_bits: bitstream_bits as u64,
    };
    if lcpio_trace::collecting() {
        lcpio_trace::counter_add("zfp.elements", stats.elements);
        lcpio_trace::counter_add("zfp.bytes_in", stats.input_bytes);
        lcpio_trace::counter_add("zfp.bytes_out", stats.output_bytes);
        lcpio_trace::counter_add("zfp.blocks", stats.blocks);
        lcpio_trace::counter_add("zfp.zero_blocks", stats.zero_blocks);
        lcpio_trace::counter_add("zfp.payload_bits", stats.payload_bits);
        lcpio_trace::counter_add("zfp.bit_planes", bit_planes);
    }
    Ok(ZfpCompressed { bytes: out, stats })
}

/// Compress an `f32` field (the paper's data type).
pub fn compress(data: &[f32], dims: &[usize], mode: &ZfpMode) -> Result<ZfpCompressed, ZfpError> {
    compress_typed(data, dims, mode)
}

/// Compress an `f64` field.
pub fn compress_f64(
    data: &[f64],
    dims: &[usize],
    mode: &ZfpMode,
) -> Result<ZfpCompressed, ZfpError> {
    compress_typed(data, dims, mode)
}

/// Element type tag recorded in a compressed stream.
pub fn stream_type_tag(stream: &[u8]) -> Result<u8, ZfpError> {
    if stream.len() < 5 || stream[..4] != MAGIC {
        return Err(ZfpError::Corrupt("bad magic"));
    }
    Ok(stream[4])
}

/// Decompress a stream produced by [`compress_typed`]. Fails with
/// [`ZfpError::TypeMismatch`] when the stream holds a different element
/// type.
pub fn decompress_typed<T: ZfpElement>(stream: &[u8]) -> Result<(Vec<T>, Vec<usize>), ZfpError> {
    let _span = lcpio_trace::span("zfp.decompress");
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], ZfpError> {
        if *pos + n > stream.len() {
            return Err(ZfpError::Corrupt("unexpected end of stream"));
        }
        let s = &stream[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    if take(&mut pos, 4)? != MAGIC {
        return Err(ZfpError::Corrupt("bad magic"));
    }
    let type_tag = take(&mut pos, 1)?[0];
    if type_tag != T::TYPE_TAG {
        return Err(ZfpError::TypeMismatch);
    }
    let rank = take(&mut pos, 1)?[0] as usize;
    if rank == 0 || rank > 4 {
        return Err(ZfpError::Corrupt("bad rank"));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        let b = take(&mut pos, 8)?;
        dims.push(u64::from_le_bytes(b.try_into().expect("8-byte read")) as usize);
    }
    let tag = take(&mut pos, 1)?[0];
    let param = f64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8-byte read"));
    let mode = ZfpMode::decode(tag, param)?;
    mode.validate()?;
    let payload_len =
        u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8-byte read")) as usize;
    let payload = take(&mut pos, payload_len)?;

    let g = Geom::new(&dims).ok_or(ZfpError::Corrupt("bad dims"))?;
    // Every block consumes at least its zero-flag bit, so a corrupt header
    // cannot claim more blocks (and thus output) than the payload allows.
    if g.num_blocks() > payload.len().saturating_mul(8) {
        return Err(ZfpError::Corrupt("block count exceeds payload"));
    }
    let d = g.d;
    let blen = g.block_len();
    let perm = order::permutation(d);
    let mut out: Vec<T> = vec![T::from_f64(0.0); g.len()];
    let mut r = ReadStream::new(payload);
    let mut ints = vec![0i64; blen];
    let mut nb = vec![0u64; blen];
    let mut fblock: Vec<T> = vec![T::from_f64(0.0); blen];

    let (bz, by, bx) = g.block_counts();
    for bk in 0..bz {
        for bj in 0..by {
            for bi in 0..bx {
                let block_start = r.bit_pos();
                let nonzero = r.read_bit();
                if nonzero {
                    let emax = r.read_bits(T::EMAX_BITS) as i32 - T::EMAX_BIAS;
                    let p = block_params::<T>(&mode, d, emax);
                    coder::decode_ints_into(&mut nb, T::INTPREC, p.kmin, p.budget, &mut r);
                    order::invert_negabinary(&nb, &perm, &mut ints);
                    transform::inverse(&mut ints, d);
                    fixedpoint::inverse(&ints, emax, &mut fblock);
                } else {
                    fblock.fill(T::from_f64(0.0));
                }
                if let ZfpMode::FixedRate(bpv) = mode {
                    r.seek(block_start + rate_block_bits(bpv, d));
                }
                block::scatter(&fblock, &g, bk, bj, bi, &mut out);
            }
        }
    }
    Ok((out, dims))
}

/// Decompress an `f32` stream.
pub fn decompress(stream: &[u8]) -> Result<(Vec<f32>, Vec<usize>), ZfpError> {
    decompress_typed(stream)
}

/// Decompress an `f64` stream.
pub fn decompress_f64(stream: &[u8]) -> Result<(Vec<f64>, Vec<usize>), ZfpError> {
    decompress_typed(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixedpoint::INTPREC;

    #[test]
    fn block_params_accuracy_scales_with_emax() {
        // Larger block magnitudes need more planes for the same tolerance.
        let lo = block_params::<f32>(&ZfpMode::FixedAccuracy(1e-3), 3, 0);
        let hi = block_params::<f32>(&ZfpMode::FixedAccuracy(1e-3), 3, 10);
        assert!(hi.kmin < lo.kmin);
    }

    #[test]
    fn block_params_precision_ignores_emax() {
        let a = block_params::<f32>(&ZfpMode::FixedPrecision(16), 2, -5);
        let b = block_params::<f32>(&ZfpMode::FixedPrecision(16), 2, 20);
        assert_eq!(a, b);
        assert_eq!(a.kmin, INTPREC - 16);
    }

    #[test]
    fn block_params_rate_sets_budget() {
        let p = block_params::<f32>(&ZfpMode::FixedRate(8.0), 3, 0);
        assert_eq!(p.budget, 8 * 64 - 1 - <f32 as ZfpElement>::EMAX_BITS);
        assert_eq!(p.kmin, 0);
    }

    #[test]
    fn f64_params_keep_more_planes_for_same_tolerance() {
        let f32p = block_params::<f32>(&ZfpMode::FixedAccuracy(1e-6), 3, 0);
        let f64p = block_params::<f64>(&ZfpMode::FixedAccuracy(1e-6), 3, 0);
        let f32_planes = <f32 as ZfpElement>::INTPREC - f32p.kmin;
        let f64_planes = <f64 as ZfpElement>::INTPREC - f64p.kmin;
        // Same tolerance ⇒ same number of *kept* planes relative to the
        // block exponent; both types count down from their own Q.
        assert_eq!(f32_planes, f64_planes);
    }

    #[test]
    fn rate_block_bits_rounds_up() {
        assert_eq!(rate_block_bits(0.9, 1), 4);
        assert_eq!(rate_block_bits(8.0, 3), 512);
    }

    #[test]
    fn f64_roundtrip_below_f32_precision() {
        // A tolerance far below f32 ULP: only the f64 path can honor it.
        let data: Vec<f64> = (0..512)
            .map(|i| 1.0 + (i as f64) * 1e-12 + (i as f64 * 0.05).sin() * 1e-9)
            .collect();
        let tol = 1e-13;
        let out = compress_f64(&data, &[512], &ZfpMode::FixedAccuracy(tol)).expect("compress");
        let (rec, _) = decompress_f64(&out.bytes).expect("decompress");
        for (a, b) in data.iter().zip(&rec) {
            assert!((a - b).abs() <= tol, "{a} vs {b}");
        }
    }

    #[test]
    fn f64_3d_roundtrip() {
        let (nz, ny, nx) = (9, 10, 11);
        let data: Vec<f64> = (0..nz * ny * nx)
            .map(|i| ((i % nx) as f64 * 0.2).sin() * 1e8 + ((i / nx) as f64 * 0.1).cos())
            .collect();
        let tol = 1e-2;
        let out =
            compress_f64(&data, &[nz, ny, nx], &ZfpMode::FixedAccuracy(tol)).expect("compress");
        let (rec, dims) = decompress_f64(&out.bytes).expect("decompress");
        assert_eq!(dims, vec![nz, ny, nx]);
        for (a, b) in data.iter().zip(&rec) {
            assert!((a - b).abs() <= tol, "{a} vs {b}");
        }
    }

    #[test]
    fn type_tags_are_checked() {
        let f32_out =
            compress(&vec![1.5f32; 64], &[64], &ZfpMode::FixedAccuracy(1e-3)).expect("compress");
        assert_eq!(decompress_f64(&f32_out.bytes).unwrap_err(), ZfpError::TypeMismatch);
        let f64_out = compress_f64(&vec![1.5f64; 64], &[64], &ZfpMode::FixedAccuracy(1e-3))
            .expect("compress");
        assert_eq!(decompress(&f64_out.bytes).unwrap_err(), ZfpError::TypeMismatch);
        assert_eq!(stream_type_tag(&f32_out.bytes).unwrap(), 0);
        assert_eq!(stream_type_tag(&f64_out.bytes).unwrap(), 1);
    }
}
