//! Element-type abstraction for the ZFP codec: `f32` and `f64` fields.
//!
//! The two types differ only in their fixed-point width: `f32` keeps
//! Q = 30 fraction bits (the reference codec's choice), `f64` keeps
//! Q = 52. Both fit the transform's worst-case 3-bit gain plus the
//! negabinary sign bit inside an `i64`/`u64`.

/// A floating-point element type the codec can compress.
pub trait ZfpElement: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Format tag stored in the stream header.
    const TYPE_TAG: u8;
    /// Fraction bits of the block fixed-point representation.
    const Q: i32;
    /// Bit planes coded per block (`Q + 5`: 3 bits of transform headroom,
    /// 1 negabinary bit, 1 spare).
    const INTPREC: u32;
    /// Bits used to store a block exponent.
    const EMAX_BITS: usize;
    /// Exponent bias covering the type's full range including subnormals.
    const EMAX_BIAS: i32;
    /// Widen to f64 (exact for both supported types).
    fn to_f64(self) -> f64;
    /// Narrow from f64.
    fn from_f64(v: f64) -> Self;
}

impl ZfpElement for f32 {
    const TYPE_TAG: u8 = 0;
    const Q: i32 = 30;
    const INTPREC: u32 = 35;
    const EMAX_BITS: usize = 9;
    const EMAX_BIAS: i32 = 200;

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
}

impl ZfpElement for f64 {
    const TYPE_TAG: u8 = 1;
    const Q: i32 = 52;
    const INTPREC: u32 = 57;
    const EMAX_BITS: usize = 12;
    const EMAX_BIAS: i32 = 1200;

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headroom_fits_in_64_bits() {
        // Q + 3 bits of transform gain + 1 negabinary bit must stay < 63.
        assert!(<f32 as ZfpElement>::Q + 4 < 63);
        assert!(<f64 as ZfpElement>::Q + 4 < 63);
        assert_eq!(<f32 as ZfpElement>::INTPREC, 35);
        assert_eq!(<f64 as ZfpElement>::INTPREC, 57);
    }

    #[test]
    fn exponent_fields_cover_type_ranges() {
        // f32 exponents range ~[-148, 128]; 9 bits biased by 200 → [-200, 311].
        assert!(1 << <f32 as ZfpElement>::EMAX_BITS > 128 + 200);
        // f64 exponents range ~[-1074, 1024]; 12 bits biased by 1200 → [-1200, 2895].
        assert!(1 << <f64 as ZfpElement>::EMAX_BITS > 1024 + 1200);
    }

    #[test]
    fn tags_are_distinct() {
        assert_ne!(<f32 as ZfpElement>::TYPE_TAG, <f64 as ZfpElement>::TYPE_TAG);
    }
}
