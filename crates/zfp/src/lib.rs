#![warn(missing_docs)]
//! # lcpio-zfp — ZFP-style transform-coding lossy compressor
//!
//! A from-scratch Rust implementation of the ZFP compressed-array codec
//! (Lindstrom, 2014) for 1–4 dimensional `f32`/`f64` data: 4^d blocks are
//! normalized to a common exponent (block floating point), decorrelated
//! with an exactly-invertible lifted transform, reordered by total
//! sequency, converted to negabinary, and entropy-coded with an embedded
//! bit-plane coder with group testing.
//!
//! Three rate-control modes are provided, mirroring the reference codec:
//!
//! * [`ZfpMode::FixedAccuracy`] — absolute error tolerance (the paper's
//!   "fixed-accuracy mode").
//! * [`ZfpMode::FixedPrecision`] — a fixed number of bit planes per block.
//! * [`ZfpMode::FixedRate`] — an exact bit budget per value, giving random
//!   block access.
//!
//! Multi-threaded chunked compression (the reference codec's OpenMP mode)
//! is available through [`compress_chunked`]/[`decompress_chunked`].
//!
//! Non-finite values are not supported by the ZFP transform; they are
//! flushed to zero on compression (the reference codec's behaviour is
//! likewise undefined for NaN/Inf).
//!
//! ```
//! use lcpio_zfp::{compress, decompress, ZfpMode};
//!
//! let data: Vec<f32> = (0..64 * 64)
//!     .map(|i| ((i % 64) as f32 * 0.1).sin() + ((i / 64) as f32 * 0.07).cos())
//!     .collect();
//! let out = compress(&data, &[64, 64], &ZfpMode::FixedAccuracy(1e-3)).unwrap();
//! let (rec, dims) = decompress(&out.bytes).unwrap();
//! assert_eq!(dims, vec![64, 64]);
//! for (a, b) in data.iter().zip(&rec) {
//!     assert!((a - b).abs() <= 1e-3);
//! }
//! assert!(out.stats.ratio() > 2.0);
//! ```

pub mod bitstream;
pub mod block;
pub mod coder;
pub mod element;
pub mod fixedpoint;
pub mod negabinary;
pub mod order;
pub mod parallel;
mod pipeline;
pub mod transform;

pub use element::ZfpElement;
pub use parallel::{compress_chunked, decompress_chunked, CHUNKED_MAGIC};
pub use pipeline::{
    compress, compress_f64, compress_typed, decompress, decompress_f64, decompress_typed,
    stream_type_tag, MAGIC,
};

use serde::{Deserialize, Serialize};

/// Rate-control mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ZfpMode {
    /// Bound the max absolute error by the tolerance.
    FixedAccuracy(f64),
    /// Code exactly this many bit planes per block (≤ [`fixedpoint::INTPREC`]).
    FixedPrecision(u32),
    /// Spend exactly this many bits per value (supports random access).
    FixedRate(f64),
}

impl ZfpMode {
    /// Check parameter sanity.
    pub fn validate(&self) -> Result<(), ZfpError> {
        match *self {
            ZfpMode::FixedAccuracy(t) if t > 0.0 && t.is_finite() => Ok(()),
            ZfpMode::FixedPrecision(p) if p >= 1 => Ok(()),
            ZfpMode::FixedRate(r) if r > 0.0 && r.is_finite() && r <= 64.0 => Ok(()),
            _ => Err(ZfpError::InvalidMode),
        }
    }

    /// Serialize as (tag, parameter).
    pub(crate) fn encode(&self) -> (u8, f64) {
        match *self {
            ZfpMode::FixedAccuracy(t) => (0, t),
            ZfpMode::FixedPrecision(p) => (1, p as f64),
            ZfpMode::FixedRate(r) => (2, r),
        }
    }

    /// Inverse of [`ZfpMode::encode`].
    pub(crate) fn decode(tag: u8, param: f64) -> Result<Self, ZfpError> {
        match tag {
            0 => Ok(ZfpMode::FixedAccuracy(param)),
            1 => Ok(ZfpMode::FixedPrecision(param as u32)),
            2 => Ok(ZfpMode::FixedRate(param)),
            _ => Err(ZfpError::Corrupt("bad mode tag")),
        }
    }
}

/// Top-level configuration wrapper (the paper always uses fixed accuracy).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZfpConfig {
    /// Rate-control mode.
    pub mode: ZfpMode,
}

impl ZfpConfig {
    /// Fixed-accuracy configuration with the given tolerance.
    pub fn fixed_accuracy(tol: f64) -> Self {
        ZfpConfig { mode: ZfpMode::FixedAccuracy(tol) }
    }
}

/// Statistics from one compression run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ZfpStats {
    /// Input element count.
    pub elements: u64,
    /// Input bytes (`elements × element size`).
    pub input_bytes: u64,
    /// Output bytes including the envelope.
    pub output_bytes: u64,
    /// Total 4^d blocks coded.
    pub blocks: u64,
    /// Blocks skipped as all-zero (1 bit each).
    pub zero_blocks: u64,
    /// Bits in the coefficient bitstream.
    pub payload_bits: u64,
}

impl ZfpStats {
    /// Compression ratio `input/output`.
    pub fn ratio(&self) -> f64 {
        if self.output_bytes == 0 {
            0.0
        } else {
            self.input_bytes as f64 / self.output_bytes as f64
        }
    }

    /// Bits per element in the output.
    pub fn bits_per_element(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.output_bytes as f64 * 8.0 / self.elements as f64
        }
    }
}

/// A compressed buffer plus run statistics.
#[derive(Debug, Clone)]
pub struct ZfpCompressed {
    /// Serialized stream.
    pub bytes: Vec<u8>,
    /// Run statistics.
    pub stats: ZfpStats,
}

/// Errors from compression or decompression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZfpError {
    /// Dimensions invalid or inconsistent with the data length.
    InvalidDims,
    /// Mode parameter out of range.
    InvalidMode,
    /// The stream holds a different element type than requested
    /// (f32 vs f64 — check [`stream_type_tag`]).
    TypeMismatch,
    /// Malformed stream; the message names the failing section.
    Corrupt(&'static str),
}

impl std::fmt::Display for ZfpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZfpError::InvalidDims => write!(f, "invalid dimensions"),
            ZfpError::InvalidMode => write!(f, "invalid mode parameter"),
            ZfpError::TypeMismatch => write!(f, "stream element type does not match"),
            ZfpError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
        }
    }
}

impl std::error::Error for ZfpError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_3d(nz: usize, ny: usize, nx: usize) -> Vec<f32> {
        let mut v = Vec::with_capacity(nz * ny * nx);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    v.push(
                        (i as f32 * 0.2).sin() * (j as f32 * 0.15).cos()
                            + (k as f32 * 0.1).sin() * 3.0,
                    );
                }
            }
        }
        v
    }

    fn max_err(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (*x as f64 - *y as f64).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn fixed_accuracy_bounds_error_3d() {
        let data = smooth_3d(10, 11, 12);
        for tol in [1e-1, 1e-2, 1e-3, 1e-4] {
            let out = compress(&data, &[10, 11, 12], &ZfpMode::FixedAccuracy(tol)).unwrap();
            let (rec, _) = decompress(&out.bytes).unwrap();
            let err = max_err(&data, &rec);
            assert!(err <= tol, "tol {tol}: err {err}");
        }
    }

    #[test]
    fn fixed_accuracy_bounds_error_1d_2d() {
        let data1: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.01).sin() * 50.0).collect();
        let out = compress(&data1, &[1000], &ZfpMode::FixedAccuracy(1e-3)).unwrap();
        let (rec, _) = decompress(&out.bytes).unwrap();
        assert!(max_err(&data1, &rec) <= 1e-3);

        let data2: Vec<f32> = (0..50 * 70)
            .map(|idx| ((idx % 70) as f32 * 0.1).cos() * ((idx / 70) as f32 * 0.05).sin())
            .collect();
        let out = compress(&data2, &[50, 70], &ZfpMode::FixedAccuracy(1e-4)).unwrap();
        let (rec, _) = decompress(&out.bytes).unwrap();
        assert!(max_err(&data2, &rec) <= 1e-4);
    }

    #[test]
    fn tighter_tolerance_costs_more_bits() {
        let data = smooth_3d(16, 16, 16);
        let loose = compress(&data, &[16, 16, 16], &ZfpMode::FixedAccuracy(1e-1)).unwrap();
        let tight = compress(&data, &[16, 16, 16], &ZfpMode::FixedAccuracy(1e-5)).unwrap();
        assert!(tight.bytes.len() > loose.bytes.len());
    }

    #[test]
    fn smooth_data_compresses_well() {
        let data = smooth_3d(32, 32, 32);
        let out = compress(&data, &[32, 32, 32], &ZfpMode::FixedAccuracy(1e-3)).unwrap();
        assert!(out.stats.ratio() > 3.0, "ratio {}", out.stats.ratio());
    }

    #[test]
    fn fixed_rate_hits_exact_size() {
        let data = smooth_3d(8, 8, 8);
        let out = compress(&data, &[8, 8, 8], &ZfpMode::FixedRate(8.0)).unwrap();
        // 8 blocks × 512 bits = 512 bytes payload.
        assert_eq!(out.stats.payload_bits, 8 * 512);
        let (rec, _) = decompress(&out.bytes).unwrap();
        // 8 bpv on smooth data should already be quite accurate.
        assert!(max_err(&data, &rec) < 0.1);
    }

    #[test]
    fn fixed_rate_quality_scales() {
        let data = smooth_3d(12, 12, 12);
        let mut prev = f64::MAX;
        for bpv in [2.0, 4.0, 8.0, 16.0, 31.0] {
            let out = compress(&data, &[12, 12, 12], &ZfpMode::FixedRate(bpv)).unwrap();
            let (rec, _) = decompress(&out.bytes).unwrap();
            let err = max_err(&data, &rec);
            assert!(err <= prev * 1.5, "bpv {bpv}: err {err} prev {prev}");
            prev = err;
        }
        assert!(prev < 1e-4);
    }

    #[test]
    fn fixed_precision_quality_scales() {
        let data = smooth_3d(12, 12, 12);
        let hi = compress(&data, &[12, 12, 12], &ZfpMode::FixedPrecision(30)).unwrap();
        let lo = compress(&data, &[12, 12, 12], &ZfpMode::FixedPrecision(8)).unwrap();
        let (rec_hi, _) = decompress(&hi.bytes).unwrap();
        let (rec_lo, _) = decompress(&lo.bytes).unwrap();
        assert!(max_err(&data, &rec_hi) < max_err(&data, &rec_lo));
        assert!(hi.bytes.len() > lo.bytes.len());
    }

    #[test]
    fn zero_field_codes_to_zero_blocks() {
        let data = vec![0.0f32; 256];
        let out = compress(&data, &[16, 16], &ZfpMode::FixedAccuracy(1e-6)).unwrap();
        assert_eq!(out.stats.zero_blocks, out.stats.blocks);
        let (rec, _) = decompress(&out.bytes).unwrap();
        assert!(rec.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn values_below_tolerance_become_zero_blocks() {
        let data = vec![1e-9f32; 64];
        let out = compress(&data, &[4, 4, 4], &ZfpMode::FixedAccuracy(1e-3)).unwrap();
        assert_eq!(out.stats.zero_blocks, 1);
        let (rec, _) = decompress(&out.bytes).unwrap();
        assert!(max_err(&data, &rec) <= 1e-3);
    }

    #[test]
    fn partial_blocks_roundtrip() {
        // 5×6×7: every border is partial.
        let data = smooth_3d(5, 6, 7);
        let out = compress(&data, &[5, 6, 7], &ZfpMode::FixedAccuracy(1e-4)).unwrap();
        let (rec, dims) = decompress(&out.bytes).unwrap();
        assert_eq!(dims, vec![5, 6, 7]);
        assert!(max_err(&data, &rec) <= 1e-4);
    }

    #[test]
    fn four_d_input_roundtrips() {
        let dims = [2usize, 3, 8, 9];
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01).sin()).collect();
        let out = compress(&data, &dims, &ZfpMode::FixedAccuracy(1e-3)).unwrap();
        let (rec, d) = decompress(&out.bytes).unwrap();
        assert_eq!(d, dims.to_vec());
        assert!(max_err(&data, &rec) <= 1e-3);
    }

    #[test]
    fn non_finite_values_flush_to_zero() {
        let mut data = vec![0.5f32; 64];
        data[10] = f32::NAN;
        data[20] = f32::INFINITY;
        let out = compress(&data, &[64], &ZfpMode::FixedAccuracy(1e-4)).unwrap();
        let (rec, _) = decompress(&out.bytes).unwrap();
        assert!((rec[10]).abs() <= 1e-3);
        assert!((rec[20]).abs() <= 1e-3);
        assert!((rec[0] - 0.5).abs() <= 1e-4);
    }

    #[test]
    fn mode_validation() {
        assert!(ZfpMode::FixedAccuracy(0.0).validate().is_err());
        assert!(ZfpMode::FixedAccuracy(-1.0).validate().is_err());
        assert!(ZfpMode::FixedPrecision(0).validate().is_err());
        assert!(ZfpMode::FixedRate(0.0).validate().is_err());
        assert!(ZfpMode::FixedRate(100.0).validate().is_err());
        assert!(ZfpMode::FixedAccuracy(1e-3).validate().is_ok());
    }

    #[test]
    fn invalid_dims_rejected() {
        let data = vec![0.0f32; 10];
        assert_eq!(
            compress(&data, &[11], &ZfpMode::FixedAccuracy(1e-3)).unwrap_err(),
            ZfpError::InvalidDims
        );
        assert_eq!(
            compress(&data, &[], &ZfpMode::FixedAccuracy(1e-3)).unwrap_err(),
            ZfpError::InvalidDims
        );
    }

    #[test]
    fn corrupt_stream_rejected() {
        let data = vec![1.0f32; 64];
        let mut out = compress(&data, &[64], &ZfpMode::FixedAccuracy(1e-3)).unwrap();
        out.bytes[0] = b'X';
        assert!(matches!(decompress(&out.bytes), Err(ZfpError::Corrupt(_))));
        let out2 = compress(&data, &[64], &ZfpMode::FixedAccuracy(1e-3)).unwrap();
        assert!(decompress(&out2.bytes[..10]).is_err());
    }

    #[test]
    fn stats_consistent() {
        let data = smooth_3d(9, 9, 9);
        let out = compress(&data, &[9, 9, 9], &ZfpMode::FixedAccuracy(1e-2)).unwrap();
        assert_eq!(out.stats.elements, 729);
        assert_eq!(out.stats.blocks, 27);
        assert_eq!(out.stats.output_bytes as usize, out.bytes.len());
    }
}
