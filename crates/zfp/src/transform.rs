//! ZFP's decorrelating transform.
//!
//! A non-orthogonal, lifted approximation of the DCT applied independently
//! along each axis of the 4^d block. The lifting form is exactly
//! invertible in integer arithmetic — the inverse applies the steps in
//! reverse — and each step's right-shift keeps the dynamic range bounded.
//!
//! Forward transform of a length-4 lane `(x, y, z, w)` (from the ZFP
//! specification):
//!
//! ```text
//! x += w; x >>= 1; w -= x;
//! z += y; z >>= 1; y -= z;
//! x += z; x >>= 1; z -= x;
//! w += y; w >>= 1; y -= w;
//! w += y >> 1;    y -= w >> 1;
//! ```

use crate::block::SIDE;

/// Forward transform of one 4-element lane.
#[inline]
pub fn fwd_lift(v: &mut [i64; 4]) {
    let [mut x, mut y, mut z, mut w] = *v;
    x += w;
    x >>= 1;
    w -= x;
    z += y;
    z >>= 1;
    y -= z;
    x += z;
    x >>= 1;
    z -= x;
    w += y;
    w >>= 1;
    y -= w;
    w += y >> 1;
    y -= w >> 1;
    *v = [x, y, z, w];
}

/// Inverse transform of one 4-element lane.
#[inline]
pub fn inv_lift(v: &mut [i64; 4]) {
    let [mut x, mut y, mut z, mut w] = *v;
    y += w >> 1;
    w -= y >> 1;
    y += w;
    w <<= 1;
    w -= y;
    z += x;
    x <<= 1;
    x -= z;
    y += z;
    z <<= 1;
    z -= y;
    w += x;
    x <<= 1;
    x -= w;
    *v = [x, y, z, w];
}

/// Apply `f` to every axis-aligned lane of a 4^d block by rediscovering
/// lane origins with index arithmetic. Retained as the executable
/// specification the specialized kernels below are tested against.
fn for_each_lane(block: &mut [i64], d: usize, axis: usize, f: impl Fn(&mut [i64; 4])) {
    debug_assert!(axis < d);
    let stride = SIDE.pow(axis as u32);
    let lanes = block.len() / SIDE;
    let mut lane = [0i64; 4];
    // Enumerate lane "origins": all indices whose `axis` coordinate is 0.
    let n = block.len();
    for base in 0..n {
        let coord = (base / stride) % SIDE;
        if coord != 0 {
            continue;
        }
        for (s, slot) in lane.iter_mut().enumerate() {
            *slot = block[base + s * stride];
        }
        f(&mut lane);
        for (s, &val) in lane.iter().enumerate() {
            block[base + s * stride] = val;
        }
    }
    debug_assert_eq!(n / SIDE, lanes);
}

/// Generic (index-arithmetic) forward transform — the reference path.
#[doc(hidden)]
pub fn forward_generic(block: &mut [i64], d: usize) {
    debug_assert_eq!(block.len(), SIDE.pow(d as u32));
    for axis in 0..d {
        for_each_lane(block, d, axis, fwd_lift);
    }
}

/// Generic (index-arithmetic) inverse transform — the reference path.
#[doc(hidden)]
pub fn inverse_generic(block: &mut [i64], d: usize) {
    debug_assert_eq!(block.len(), SIDE.pow(d as u32));
    for axis in (0..d).rev() {
        for_each_lane(block, d, axis, inv_lift);
    }
}

/// Lane-origin tables for the 3-D block: per axis, the 16 base indices of
/// its lanes (strides 1, 4, 16). Precomputed so the kernels touch each
/// element exactly once per axis with no per-index div/mod.
const LANES_3D: [([usize; 16], usize); 3] = {
    let mut s1 = [0usize; 16];
    let mut s4 = [0usize; 16];
    let mut s16 = [0usize; 16];
    let mut i = 0;
    while i < 16 {
        s1[i] = i * 4; // x-lanes: one per (y, z)
        s4[i] = (i / 4) * 16 + i % 4; // y-lanes: one per (x, z)
        s16[i] = i; // z-lanes: one per (x, y)
        i += 1;
    }
    [(s1, 1), (s4, 4), (s16, 16)]
};

/// Lane-origin tables for the 2-D block (strides 1, 4).
const LANES_2D: [([usize; 4], usize); 2] = [([0, 4, 8, 12], 1), ([0, 1, 2, 3], 4)];

/// Lift one lane at `base` with the given stride, in place.
#[inline(always)]
fn lift_at(block: &mut [i64], base: usize, stride: usize, f: impl Fn(&mut [i64; 4])) {
    let mut lane = [
        block[base],
        block[base + stride],
        block[base + 2 * stride],
        block[base + 3 * stride],
    ];
    f(&mut lane);
    block[base] = lane[0];
    block[base + stride] = lane[1];
    block[base + 2 * stride] = lane[2];
    block[base + 3 * stride] = lane[3];
}

/// Forward transform of a full 4^d block (d = 1, 2, or 3), dispatching to
/// a dimension-specialized kernel.
pub fn forward(block: &mut [i64], d: usize) {
    debug_assert_eq!(block.len(), SIDE.pow(d as u32));
    match d {
        1 => lift_at(block, 0, 1, fwd_lift),
        2 => {
            for &(bases, stride) in &LANES_2D {
                for &base in &bases {
                    lift_at(block, base, stride, fwd_lift);
                }
            }
        }
        _ => {
            for &(bases, stride) in &LANES_3D {
                for &base in &bases {
                    lift_at(block, base, stride, fwd_lift);
                }
            }
        }
    }
}

/// Inverse transform of a full 4^d block (axes in reverse order).
pub fn inverse(block: &mut [i64], d: usize) {
    debug_assert_eq!(block.len(), SIDE.pow(d as u32));
    match d {
        1 => lift_at(block, 0, 1, inv_lift),
        2 => {
            for &(bases, stride) in LANES_2D.iter().rev() {
                for &base in &bases {
                    lift_at(block, base, stride, inv_lift);
                }
            }
        }
        _ => {
            for &(bases, stride) in LANES_3D.iter().rev() {
                for &base in &bases {
                    lift_at(block, base, stride, inv_lift);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The lifted transform pair is an algebraic inverse but the `>>1`
    /// steps round, so integer roundtrips incur a few ULPs of error —
    /// negligible against the Q=30 fixed-point scale, but not zero.
    const LANE_TOL: i64 = 8;

    #[test]
    fn lift_roundtrip_near_exact() {
        let cases = [
            [0i64, 0, 0, 0],
            [1, 2, 3, 4],
            [-1000, 999, -998, 997],
            [1 << 30, -(1 << 30), 123456789, -987654321],
        ];
        for c in cases {
            let mut v = c;
            fwd_lift(&mut v);
            inv_lift(&mut v);
            for (a, b) in v.iter().zip(&c) {
                assert!((a - b).abs() <= LANE_TOL, "{v:?} vs {c:?}");
            }
        }
    }

    #[test]
    fn lift_roundtrip_randomized() {
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..1000 {
            let mut v = [0i64; 4];
            for slot in v.iter_mut() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *slot = (x as i64) >> 34; // keep ~30-bit magnitudes
            }
            let orig = v;
            fwd_lift(&mut v);
            inv_lift(&mut v);
            for (a, b) in v.iter().zip(&orig) {
                assert!((a - b).abs() <= LANE_TOL, "{v:?} vs {orig:?}");
            }
        }
    }

    #[test]
    fn block_roundtrip_1d_2d_3d_near_exact() {
        for d in 1..=3usize {
            let n = SIDE.pow(d as u32);
            let orig: Vec<i64> = (0..n as i64).map(|i| (i * 37 - 100) % 1009).collect();
            let mut b = orig.clone();
            forward(&mut b, d);
            inverse(&mut b, d);
            let tol = LANE_TOL * d as i64 * 2;
            for (a, o) in b.iter().zip(&orig) {
                assert!((a - o).abs() <= tol, "d={d}: {a} vs {o}");
            }
        }
    }

    #[test]
    fn constant_lane_concentrates_energy() {
        // DC-like input: all energy lands in the first coefficient.
        let mut v = [100i64, 100, 100, 100];
        fwd_lift(&mut v);
        assert_eq!(v[0], 100);
        assert_eq!(&v[1..], &[0, 0, 0]);
    }

    #[test]
    fn smooth_lane_has_small_high_coeffs() {
        let mut v = [1000i64, 1010, 1020, 1030]; // linear ramp
        fwd_lift(&mut v);
        // High-frequency coefficients should be tiny vs the DC term.
        assert!(v[0].abs() > 500);
        assert!(v[2].abs() <= 4, "{v:?}");
        assert!(v[3].abs() <= 4, "{v:?}");
    }

    #[test]
    fn specialized_kernels_match_generic_path() {
        let mut x = 0xfeed_f00d_dead_beefu64;
        for d in 1..=3usize {
            let n = SIDE.pow(d as u32);
            for _ in 0..500 {
                let mut block = vec![0i64; n];
                for slot in block.iter_mut() {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    *slot = (x as i64) >> 33;
                }
                let mut generic = block.clone();
                forward(&mut block, d);
                forward_generic(&mut generic, d);
                assert_eq!(block, generic, "forward d={d}");
                inverse(&mut block, d);
                inverse_generic(&mut generic, d);
                assert_eq!(block, generic, "inverse d={d}");
            }
        }
    }

    #[test]
    fn lane_tables_cover_every_element_once_per_axis() {
        for (bases, stride) in LANES_3D {
            let mut seen = [0u32; 64];
            for base in bases {
                for s in 0..SIDE {
                    seen[base + s * stride] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "stride {stride}: {seen:?}");
        }
        for (bases, stride) in LANES_2D {
            let mut seen = [0u32; 16];
            for base in bases {
                for s in 0..SIDE {
                    seen[base + s * stride] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "stride {stride}: {seen:?}");
        }
    }

    #[test]
    fn transform_gain_is_bounded() {
        // Inputs bounded by 2^30 must stay below 2^33 after a 3-D forward
        // transform (our INTPREC headroom assumption).
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..100 {
            let mut b = vec![0i64; 64];
            for slot in b.iter_mut() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let v = (x as i64) % (1i64 << 30);
                *slot = v;
            }
            forward(&mut b, 3);
            for &v in &b {
                assert!(v.abs() < 1i64 << 33, "coefficient {v} exceeds headroom");
            }
        }
    }
}
