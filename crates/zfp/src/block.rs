//! Block gather/scatter.
//!
//! ZFP partitions a d-dimensional array into 4^d blocks and codes each
//! independently. Partial border blocks are padded by edge replication —
//! the decoder simply never scatters the padded lanes back.

/// Block side length (fixed at 4 in ZFP).
pub const SIDE: usize = 4;

/// Geometry of the array being coded, after fusing 4-D inputs to 3-D.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geom {
    /// Slowest extent.
    pub nz: usize,
    /// Middle extent.
    pub ny: usize,
    /// Fastest extent.
    pub nx: usize,
    /// Effective dimensionality of the block transform (1, 2, or 3).
    pub d: usize,
}

impl Geom {
    /// Build from user dims (1–4 entries, slowest first). Rejects empty
    /// axes and products that overflow `usize`.
    pub fn new(dims: &[usize]) -> Option<Geom> {
        if dims.is_empty() || dims.len() > 4 || dims.contains(&0) {
            return None;
        }
        dims.iter().try_fold(1usize, |acc, &d| acc.checked_mul(d))?;
        Some(match dims.len() {
            1 => Geom { nz: 1, ny: 1, nx: dims[0], d: 1 },
            2 => Geom { nz: 1, ny: dims[0], nx: dims[1], d: 2 },
            3 => Geom { nz: dims[0], ny: dims[1], nx: dims[2], d: 3 },
            _ => Geom { nz: dims[0] * dims[1], ny: dims[2], nx: dims[3], d: 3 },
        })
    }

    /// Number of elements in one block for this dimensionality (4^d).
    pub fn block_len(&self) -> usize {
        SIDE.pow(self.d as u32)
    }

    /// Number of blocks along (z, y, x).
    pub fn block_counts(&self) -> (usize, usize, usize) {
        let c = |e: usize| e.div_ceil(SIDE);
        match self.d {
            1 => (1, 1, c(self.nx)),
            2 => (1, c(self.ny), c(self.nx)),
            _ => (c(self.nz), c(self.ny), c(self.nx)),
        }
    }

    /// Total number of blocks.
    pub fn num_blocks(&self) -> usize {
        let (bz, by, bx) = self.block_counts();
        bz * by * bx
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.nz * self.ny * self.nx
    }

    /// True when the array is empty (impossible after validation).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Gather block (bk, bj, bi) into `out` (length 4^d), padding partial
/// blocks by replicating the nearest valid sample. Fully interior blocks
/// take a row-copy fast path with no per-element clamping.
pub fn gather<T: Copy>(data: &[T], g: &Geom, bk: usize, bj: usize, bi: usize, out: &mut [T]) {
    debug_assert_eq!(out.len(), g.block_len());
    let (k0, j0, i0) = (bk * SIDE, bj * SIDE, bi * SIDE);
    let interior =
        i0 + SIDE <= g.nx && (g.d < 2 || j0 + SIDE <= g.ny) && (g.d < 3 || k0 + SIDE <= g.nz);
    if interior {
        match g.d {
            1 => out.copy_from_slice(&data[i0..i0 + SIDE]),
            2 => {
                for j in 0..SIDE {
                    let src = (j0 + j) * g.nx + i0;
                    out[j * SIDE..(j + 1) * SIDE].copy_from_slice(&data[src..src + SIDE]);
                }
            }
            _ => {
                for k in 0..SIDE {
                    for j in 0..SIDE {
                        let src = ((k0 + k) * g.ny + j0 + j) * g.nx + i0;
                        let dst = (k * SIDE + j) * SIDE;
                        out[dst..dst + SIDE].copy_from_slice(&data[src..src + SIDE]);
                    }
                }
            }
        }
        return;
    }
    match g.d {
        1 => {
            for (i, o) in out.iter_mut().enumerate() {
                let src = (i0 + i).min(g.nx - 1);
                *o = data[src];
            }
        }
        2 => {
            for j in 0..SIDE {
                let sj = (j0 + j).min(g.ny - 1);
                for i in 0..SIDE {
                    let si = (i0 + i).min(g.nx - 1);
                    out[j * SIDE + i] = data[sj * g.nx + si];
                }
            }
        }
        _ => {
            for k in 0..SIDE {
                let sk = (k0 + k).min(g.nz - 1);
                for j in 0..SIDE {
                    let sj = (j0 + j).min(g.ny - 1);
                    for i in 0..SIDE {
                        let si = (i0 + i).min(g.nx - 1);
                        out[(k * SIDE + j) * SIDE + i] = data[(sk * g.ny + sj) * g.nx + si];
                    }
                }
            }
        }
    }
}

/// Scatter a decoded block back, skipping padded lanes. Fully interior
/// blocks take the mirror row-copy fast path of [`gather`].
pub fn scatter<T: Copy>(block: &[T], g: &Geom, bk: usize, bj: usize, bi: usize, data: &mut [T]) {
    debug_assert_eq!(block.len(), g.block_len());
    let (k0, j0, i0) = (bk * SIDE, bj * SIDE, bi * SIDE);
    let interior =
        i0 + SIDE <= g.nx && (g.d < 2 || j0 + SIDE <= g.ny) && (g.d < 3 || k0 + SIDE <= g.nz);
    if interior {
        match g.d {
            1 => data[i0..i0 + SIDE].copy_from_slice(block),
            2 => {
                for j in 0..SIDE {
                    let dst = (j0 + j) * g.nx + i0;
                    data[dst..dst + SIDE].copy_from_slice(&block[j * SIDE..(j + 1) * SIDE]);
                }
            }
            _ => {
                for k in 0..SIDE {
                    for j in 0..SIDE {
                        let dst = ((k0 + k) * g.ny + j0 + j) * g.nx + i0;
                        let src = (k * SIDE + j) * SIDE;
                        data[dst..dst + SIDE].copy_from_slice(&block[src..src + SIDE]);
                    }
                }
            }
        }
        return;
    }
    match g.d {
        1 => {
            for i in 0..SIDE {
                if i0 + i < g.nx {
                    data[i0 + i] = block[i];
                }
            }
        }
        2 => {
            for j in 0..SIDE {
                if j0 + j >= g.ny {
                    break;
                }
                for i in 0..SIDE {
                    if i0 + i < g.nx {
                        data[(j0 + j) * g.nx + i0 + i] = block[j * SIDE + i];
                    }
                }
            }
        }
        _ => {
            for k in 0..SIDE {
                if k0 + k >= g.nz {
                    break;
                }
                for j in 0..SIDE {
                    if j0 + j >= g.ny {
                        break;
                    }
                    for i in 0..SIDE {
                        if i0 + i < g.nx {
                            data[((k0 + k) * g.ny + j0 + j) * g.nx + i0 + i] =
                                block[(k * SIDE + j) * SIDE + i];
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geom_validation() {
        assert!(Geom::new(&[]).is_none());
        assert!(Geom::new(&[0]).is_none());
        assert!(Geom::new(&[1, 2, 3, 4, 5]).is_none());
        let g = Geom::new(&[10]).unwrap();
        assert_eq!((g.d, g.nx), (1, 10));
        let g = Geom::new(&[3, 5]).unwrap();
        assert_eq!((g.d, g.ny, g.nx), (2, 3, 5));
        let g = Geom::new(&[2, 3, 4, 5]).unwrap();
        assert_eq!((g.d, g.nz, g.ny, g.nx), (3, 6, 4, 5));
    }

    #[test]
    fn block_counts_round_up() {
        let g = Geom::new(&[5, 9]).unwrap();
        assert_eq!(g.block_counts(), (1, 2, 3));
        assert_eq!(g.num_blocks(), 6);
        assert_eq!(g.block_len(), 16);
    }

    #[test]
    fn gather_scatter_roundtrip_exact_blocks() {
        let g = Geom::new(&[4, 8]).unwrap();
        let data: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let mut block = vec![0.0; 16];
        let mut out = vec![-1.0f32; 32];
        for bj in 0..1 {
            for bi in 0..2 {
                gather(&data, &g, 0, bj, bi, &mut block);
                scatter(&block, &g, 0, bj, bi, &mut out);
            }
        }
        assert_eq!(out, data);
    }

    #[test]
    fn gather_pads_by_replication() {
        let g = Geom::new(&[5]).unwrap(); // one full block + one partial
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut block = [0.0f32; 4];
        gather(&data, &g, 0, 0, 1, &mut block);
        assert_eq!(block, [5.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn scatter_skips_padded_lanes() {
        let g = Geom::new(&[5]).unwrap();
        let mut out = [0.0f32; 5];
        scatter(&[9.0, 8.0, 7.0, 6.0], &g, 0, 0, 1, &mut out);
        assert_eq!(out, [0.0, 0.0, 0.0, 0.0, 9.0]);
    }

    #[test]
    fn interior_fast_path_matches_clamped_gather() {
        // Compare against the clamp formula on a geometry with both
        // interior and border blocks, in all three dimensionalities.
        for dims in [vec![9usize], vec![9, 10], vec![6, 9, 10]] {
            let g = Geom::new(&dims).unwrap();
            let data: Vec<f32> = (0..g.len()).map(|i| (i * 13 % 101) as f32).collect();
            let blen = g.block_len();
            let mut fast = vec![0.0f32; blen];
            let mut slow = vec![0.0f32; blen];
            let (bz, by, bx) = g.block_counts();
            for bk in 0..bz {
                for bj in 0..by {
                    for bi in 0..bx {
                        gather(&data, &g, bk, bj, bi, &mut fast);
                        for (idx, o) in slow.iter_mut().enumerate() {
                            let (i, j, k) = (idx % SIDE, (idx / SIDE) % SIDE, idx / (SIDE * SIDE));
                            let (i, j, k) = match g.d {
                                1 => (idx, 0, 0),
                                2 => (i, j, 0),
                                _ => (i, j, k),
                            };
                            let si = (bi * SIDE + i).min(g.nx - 1);
                            let sj = (bj * SIDE + j).min(g.ny.saturating_sub(1));
                            let sk = (bk * SIDE + k).min(g.nz.saturating_sub(1));
                            *o = data[(sk * g.ny + sj) * g.nx + si];
                        }
                        assert_eq!(fast, slow, "block ({bk},{bj},{bi}) dims {dims:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn gather_scatter_3d_partial() {
        let g = Geom::new(&[5, 6, 7]).unwrap();
        let n = g.len();
        let data: Vec<f32> = (0..n).map(|i| (i % 97) as f32).collect();
        let mut out = vec![0.0f32; n];
        let mut block = vec![0.0f32; 64];
        let (bz, by, bx) = g.block_counts();
        for bk in 0..bz {
            for bj in 0..by {
                for bi in 0..bx {
                    gather(&data, &g, bk, bj, bi, &mut block);
                    scatter(&block, &g, bk, bj, bi, &mut out);
                }
            }
        }
        assert_eq!(out, data);
    }
}
