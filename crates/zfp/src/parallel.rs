//! Multi-threaded chunked compression (the reference codec's OpenMP mode).
//!
//! The array is split along its slowest dimension at block (multiple-of-4)
//! boundaries; each chunk is a *complete, standalone* ZFP stream of its
//! sub-array, so chunks compress and decompress independently. A thin
//! container records the chunk extents and byte lengths. Because chunk
//! boundaries align with blocks, the chunked stream reconstructs the exact
//! same values as the serial codec — only the container framing differs.
//!
//! Workers are scoped threads pulling chunks from an atomic cursor;
//! output order is fixed by the chunk index, so results are
//! deterministic regardless of scheduling.

use crate::block::SIDE;
use crate::element::ZfpElement;
use crate::pipeline::{compress_typed, decompress_typed};
use crate::{ZfpCompressed, ZfpError, ZfpMode, ZfpStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One decompression job: destination slice, job index, chunk stream, and
/// the chunk's slow-dimension range.
type ChunkJob<'a, T> = (&'a mut [T], usize, &'a [u8], usize, usize);

/// Container magic for chunked streams.
pub const CHUNKED_MAGIC: [u8; 4] = *b"ZFLP";

/// Split `extent` into at most `want` ranges aligned to the block side.
fn chunk_ranges(extent: usize, want: usize) -> Vec<(usize, usize)> {
    let blocks = extent.div_ceil(SIDE);
    let want = want.clamp(1, blocks);
    let per = blocks.div_ceil(want);
    let mut out = Vec::new();
    let mut b0 = 0usize;
    while b0 < blocks {
        let b1 = (b0 + per).min(blocks);
        out.push((b0 * SIDE, (b1 * SIDE).min(extent)));
        b0 = b1;
    }
    out
}

/// Compress using up to `threads` worker threads (0 ⇒ all available).
pub fn compress_chunked<T: ZfpElement>(
    data: &[T],
    dims: &[usize],
    mode: &ZfpMode,
    threads: usize,
) -> Result<ZfpCompressed, ZfpError> {
    if dims.is_empty() || dims.len() > 4 || dims.contains(&0) {
        return Err(ZfpError::InvalidDims);
    }
    let n = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or(ZfpError::InvalidDims)?;
    if n != data.len() {
        return Err(ZfpError::InvalidDims);
    }
    mode.validate()?;
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        threads
    };

    // Slowest-dimension extent and the element count per unit of it.
    let slow = dims[0];
    let row: usize = dims[1..].iter().product::<usize>().max(1);
    let ranges = chunk_ranges(slow, threads);

    // Compress chunks in parallel; each result lands in its own slot.
    let outer = lcpio_trace::span("zfp.compress_chunked");
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<ZfpCompressed, ZfpError>>>> =
        (0..ranges.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(ranges.len()) {
            s.spawn(|| {
                let mut laps = lcpio_trace::Stopwatch::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= ranges.len() {
                        break;
                    }
                    let (a, b) = ranges[i];
                    let mut sub_dims = dims.to_vec();
                    sub_dims[0] = b - a;
                    let sub = &data[a * row..b * row];
                    let compressed = laps.lap(|| compress_typed(sub, &sub_dims, mode));
                    *slots[i].lock().expect("slot lock") = Some(compressed);
                }
                laps.commit("zfp.chunk.compress");
            });
        }
    });
    lcpio_trace::counter_add("zfp.chunks", ranges.len() as u64);
    drop(outer);

    let mut chunks = Vec::with_capacity(ranges.len());
    let mut stats = ZfpStats::default();
    for slot in slots {
        let c = slot
            .into_inner()
            .expect("slot lock")
            .expect("every chunk filled")?;
        stats.elements += c.stats.elements;
        stats.input_bytes += c.stats.input_bytes;
        stats.blocks += c.stats.blocks;
        stats.zero_blocks += c.stats.zero_blocks;
        stats.payload_bits += c.stats.payload_bits;
        chunks.push(c.bytes);
    }

    // ---- container ----
    let labeled: Vec<(usize, usize, &[u8])> = ranges
        .iter()
        .zip(&chunks)
        .map(|(&(a, b), bytes)| (a, b, bytes.as_slice()))
        .collect();
    let out = build_container(T::TYPE_TAG, dims, &labeled);
    stats.output_bytes = out.len() as u64;
    Ok(ZfpCompressed { bytes: out, stats })
}

/// Serialize a chunked ZFLP container from already-compressed chunks.
///
/// Single writer for the ZFLP byte layout, shared by the chunked
/// compressor and the LCW1 wire bridge; exact inverse of
/// [`parse_chunked`].
pub fn build_container(type_tag: u8, dims: &[usize], chunks: &[(usize, usize, &[u8])]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&CHUNKED_MAGIC);
    out.push(type_tag);
    out.push(dims.len() as u8);
    for &d in dims {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    out.extend_from_slice(&(chunks.len() as u32).to_le_bytes());
    for &(a, b, bytes) in chunks {
        out.extend_from_slice(&(a as u64).to_le_bytes());
        out.extend_from_slice(&(b as u64).to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    }
    for &(_, _, bytes) in chunks {
        out.extend_from_slice(bytes);
    }
    out
}

/// Parsed chunked-container header: dims plus each chunk's slow-dimension
/// range and its standalone ZFP stream.
#[derive(Debug)]
pub struct ChunkedInfo<'a> {
    /// Element type tag (matches [`ZfpElement::TYPE_TAG`]).
    pub type_tag: u8,
    /// Full-array dimensions, slowest first.
    pub dims: Vec<usize>,
    /// Per chunk: `(slow_start, slow_end, standalone ZFP stream)`.
    pub chunks: Vec<(usize, usize, &'a [u8])>,
}

/// Parse and validate a chunked container without decoding any chunk.
///
/// Every length and range is validated here — contiguous block-aligned
/// coverage of the slow dimension, no trailing bytes, and the 512×
/// element-capacity guard (a ZFP stream spends at least one bit per block
/// and a block covers at most 64 elements, so a header claiming more than
/// 512 elements per payload byte is forged) — so callers never size an
/// allocation from an unvalidated header field.
pub fn parse_chunked(stream: &[u8]) -> Result<ChunkedInfo<'_>, ZfpError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], ZfpError> {
        // checked_add: a forged chunk length near usize::MAX must not wrap
        // the bounds check in release builds.
        let end = pos.checked_add(n).ok_or(ZfpError::Corrupt("length overflows cursor"))?;
        if end > stream.len() {
            return Err(ZfpError::Corrupt("unexpected end of stream"));
        }
        let s = &stream[*pos..end];
        *pos = end;
        Ok(s)
    };
    if take(&mut pos, 4)? != CHUNKED_MAGIC {
        return Err(ZfpError::Corrupt("bad chunked magic"));
    }
    let type_tag = take(&mut pos, 1)?[0];
    let rank = take(&mut pos, 1)?[0] as usize;
    if rank == 0 || rank > 4 {
        return Err(ZfpError::Corrupt("bad rank"));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize);
    }
    if dims.contains(&0) {
        return Err(ZfpError::Corrupt("zero dimension"));
    }
    let n = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or(ZfpError::Corrupt("dims overflow"))?;
    let n_chunks = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
    if n_chunks == 0 || n_chunks > dims[0].div_ceil(SIDE).max(1) {
        return Err(ZfpError::Corrupt("bad chunk count"));
    }
    let mut meta = Vec::with_capacity(n_chunks);
    let mut prev_end = 0usize;
    for _ in 0..n_chunks {
        let a = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
        let b = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
        let len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
        if a >= b || b > dims[0] || a != prev_end {
            return Err(ZfpError::Corrupt("bad chunk range"));
        }
        prev_end = b;
        meta.push((a, b, len));
    }
    if prev_end != dims[0] {
        return Err(ZfpError::Corrupt("chunks do not cover the array"));
    }
    let mut chunks = Vec::with_capacity(n_chunks);
    for (a, b, len) in meta {
        chunks.push((a, b, take(&mut pos, len)?));
    }
    if pos != stream.len() {
        return Err(ZfpError::Corrupt("trailing bytes after chunks"));
    }
    let payload_bytes: usize = chunks.iter().map(|&(_, _, c)| c.len()).sum();
    if n > payload_bytes.saturating_mul(512) {
        return Err(ZfpError::Corrupt("dims exceed payload capacity"));
    }
    Ok(ChunkedInfo { type_tag, dims, chunks })
}

/// Decompress a chunked stream using up to `threads` workers.
///
/// Unlike SZ's decoder (`decompress_chunked_pooled` over an
/// `SzScratchPool`), this path carries no scratch pool: each worker
/// decodes straight into its pre-carved disjoint slice of the output
/// array, and ZFP's per-block transform needs only a fixed 4³ local
/// buffer — there are no per-chunk working arrays worth reusing.
pub fn decompress_chunked<T: ZfpElement>(
    stream: &[u8],
    threads: usize,
) -> Result<(Vec<T>, Vec<usize>), ZfpError> {
    let info = parse_chunked(stream)?;
    if info.type_tag != T::TYPE_TAG {
        return Err(ZfpError::TypeMismatch);
    }
    let dims = info.dims;
    let n = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or(ZfpError::Corrupt("dims overflow"))?;
    let row: usize = dims[1..].iter().product::<usize>().max(1);

    // Carve the output into disjoint slices matching the chunk ranges
    // (parse_chunked proved the ranges contiguous and the claimed element
    // count within the payload's 512× capacity, so `n` is safe to
    // allocate).
    let mut out: Vec<T> = vec![T::from_f64(0.0); n];
    {
        let mut rest: &mut [T] = &mut out;
        let mut offset = 0usize;
        let mut jobs: Vec<ChunkJob<'_, T>> = Vec::new();
        for (i, &(a, b, chunk)) in info.chunks.iter().enumerate() {
            let start = a * row;
            let end = b * row;
            if start != offset || end > n {
                return Err(ZfpError::Corrupt("chunk ranges not contiguous"));
            }
            let (head, tail) = rest.split_at_mut(end - offset);
            rest = tail;
            offset = end;
            jobs.push((head, i, chunk, a, b));
        }
        if offset != n {
            return Err(ZfpError::Corrupt("chunks do not cover the array"));
        }
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
        } else {
            threads
        };
        let errors: Vec<Mutex<Option<ZfpError>>> =
            (0..jobs.len()).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let jobs_shared: Vec<Mutex<Option<ChunkJob<'_, T>>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        std::thread::scope(|s| {
            for _ in 0..threads.min(jobs_shared.len()) {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs_shared.len() {
                        break;
                    }
                    let (slice, idx, stream, a, b) = jobs_shared[i]
                        .lock()
                        .expect("job lock")
                        .take()
                        .expect("each job taken once");
                    let mut sub_dims = dims.clone();
                    sub_dims[0] = b - a;
                    let outcome = match decompress_typed::<T>(stream) {
                        Ok((vals, got_dims)) => {
                            if got_dims != sub_dims || vals.len() != slice.len() {
                                Some(ZfpError::Corrupt("chunk shape mismatch"))
                            } else {
                                slice.copy_from_slice(&vals);
                                None
                            }
                        }
                        Err(e) => Some(e),
                    };
                    *errors[idx].lock().expect("error lock") = outcome;
                });
            }
        });
        for e in errors {
            if let Some(err) = e.into_inner().expect("error lock") {
                return Err(err);
            }
        }
    }
    Ok((out, dims))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.01).sin() * 40.0 + (i as f32 * 0.003).cos()).collect()
    }

    fn max_err(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (*x as f64 - *y as f64).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn chunk_ranges_align_to_blocks() {
        let r = chunk_ranges(100, 4);
        assert_eq!(r.first().expect("nonempty").0, 0);
        assert_eq!(r.last().expect("nonempty").1, 100);
        for w in r.windows(2) {
            assert_eq!(w[0].1, w[1].0);
            assert_eq!(w[0].1 % SIDE, 0, "interior boundary must be block-aligned");
        }
    }

    #[test]
    fn chunk_ranges_degenerate_cases() {
        assert_eq!(chunk_ranges(3, 8), vec![(0, 3)]);
        assert_eq!(chunk_ranges(8, 1), vec![(0, 8)]);
    }

    #[test]
    fn chunked_roundtrip_matches_bound_3d() {
        let dims = [24usize, 10, 11];
        let data = smooth(dims.iter().product());
        let tol = 1e-3;
        for threads in [1, 2, 4] {
            let out = compress_chunked(&data, &dims, &ZfpMode::FixedAccuracy(tol), threads)
                .expect("compress");
            let (rec, got) = decompress_chunked::<f32>(&out.bytes, threads).expect("decompress");
            assert_eq!(got, dims.to_vec());
            assert!(max_err(&data, &rec) <= tol);
        }
    }

    #[test]
    fn chunked_reconstruction_is_thread_count_invariant() {
        let dims = [32usize, 9, 7];
        let data = smooth(dims.iter().product());
        let mode = ZfpMode::FixedAccuracy(1e-2);
        let one = compress_chunked(&data, &dims, &mode, 1).expect("compress");
        let four = compress_chunked(&data, &dims, &mode, 4).expect("compress");
        // Chunk boundaries align with coding blocks, so the reconstructed
        // values are identical whatever the worker count (the container
        // framing differs: more chunks, more headers).
        let (rec1, _) = decompress_chunked::<f32>(&one.bytes, 1).expect("decompress");
        let (rec4, _) = decompress_chunked::<f32>(&four.bytes, 4).expect("decompress");
        assert_eq!(rec1, rec4);
        // Cross-decoding with a different worker count is also identical.
        let (rec4_1, _) = decompress_chunked::<f32>(&four.bytes, 1).expect("decompress");
        assert_eq!(rec4, rec4_1);
    }

    #[test]
    fn chunked_matches_serial_values() {
        // Chunk boundaries align with blocks, so chunked output must be
        // value-identical to the serial codec.
        let dims = [16usize, 8, 8];
        let data = smooth(dims.iter().product());
        let mode = ZfpMode::FixedAccuracy(1e-3);
        let serial = crate::compress(&data, &dims, &mode).expect("compress");
        let (serial_rec, _) = crate::decompress(&serial.bytes).expect("decompress");
        let chunked = compress_chunked(&data, &dims, &mode, 4).expect("compress");
        let (chunked_rec, _) = decompress_chunked::<f32>(&chunked.bytes, 4).expect("decompress");
        assert_eq!(serial_rec, chunked_rec);
    }

    #[test]
    fn chunked_1d_and_2d() {
        let data = smooth(1000);
        let out = compress_chunked(&data, &[1000], &ZfpMode::FixedAccuracy(1e-3), 4)
            .expect("compress");
        let (rec, _) = decompress_chunked::<f32>(&out.bytes, 4).expect("decompress");
        assert!(max_err(&data, &rec) <= 1e-3);

        let out = compress_chunked(&data, &[25, 40], &ZfpMode::FixedAccuracy(1e-3), 3)
            .expect("compress");
        let (rec, _) = decompress_chunked::<f32>(&out.bytes, 3).expect("decompress");
        assert!(max_err(&data, &rec) <= 1e-3);
    }

    #[test]
    fn chunked_f64() {
        let data: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.001).sin() * 1e6).collect();
        let out = compress_chunked(&data, &[16, 256], &ZfpMode::FixedAccuracy(1e-6), 4)
            .expect("compress");
        let (rec, _) = decompress_chunked::<f64>(&out.bytes, 2).expect("decompress");
        for (a, b) in data.iter().zip(&rec) {
            assert!((a - b).abs() <= 1e-6);
        }
    }

    #[test]
    fn corrupt_container_rejected() {
        let data = smooth(256);
        let out = compress_chunked(&data, &[256], &ZfpMode::FixedAccuracy(1e-3), 2)
            .expect("compress");
        let mut bad = out.bytes.clone();
        bad[0] = b'X';
        assert!(decompress_chunked::<f32>(&bad, 1).is_err());
        assert!(decompress_chunked::<f32>(&out.bytes[..20], 1).is_err());
        assert_eq!(
            decompress_chunked::<f64>(&out.bytes, 1).unwrap_err(),
            ZfpError::TypeMismatch
        );
    }

    #[test]
    fn invalid_inputs_rejected() {
        let data = smooth(10);
        assert!(compress_chunked(&data, &[11], &ZfpMode::FixedAccuracy(1e-3), 2).is_err());
        assert!(compress_chunked(&data, &[], &ZfpMode::FixedAccuracy(1e-3), 2).is_err());
        assert!(compress_chunked(&data, &[10], &ZfpMode::FixedAccuracy(0.0), 2).is_err());
    }
}
