//! Stream-format regression: compressed bytes are pinned against hashes
//! captured from the original bit-at-a-time codec. The word-level
//! bitstream, stride-table transforms, and plane-wise coder are pure
//! optimizations — any change to the emitted bytes is a format break and
//! must fail here.

use lcpio_zfp::{
    compress_chunked, compress_f64, compress_typed, decompress, decompress_f64, ZfpMode,
};

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Deterministic, platform-independent test field: xorshift64 samples with
/// a sprinkling of exact zeros (so some blocks hit the zero-block path).
fn field_f32(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed | 1;
    (0..n)
        .map(|i| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if i % 37 == 0 {
                0.0
            } else {
                (s >> 40) as f32 / 1024.0 - 8.0
            }
        })
        .collect()
}

fn field_f64(n: usize, seed: u64) -> Vec<f64> {
    field_f32(n, seed).into_iter().map(|v| v as f64).collect()
}

/// The five shape/mode combinations exercised per element type: 1-D, 2-D
/// and 3-D fixed-accuracy, plus fixed-precision and fixed-rate.
fn cases() -> Vec<(Vec<usize>, ZfpMode)> {
    vec![
        (vec![257], ZfpMode::FixedAccuracy(1e-3)),
        (vec![33, 47], ZfpMode::FixedAccuracy(1e-3)),
        (vec![17, 18, 19], ZfpMode::FixedAccuracy(1e-3)),
        (vec![33, 47], ZfpMode::FixedPrecision(16)),
        (vec![17, 18, 19], ZfpMode::FixedRate(8.0)),
    ]
}

#[test]
fn f32_streams_match_pinned_hashes() {
    let expect: [(usize, u64); 5] = [
        (1065, 0xb17b858eea0c5d99),
        (6219, 0xcf44151f34e469f8),
        (27173, 0x8f30244bbb37a7fa),
        (2351, 0xf6736106215ecd97),
        (8047, 0x95615331be656dc9),
    ];
    for (i, (dims, mode)) in cases().into_iter().enumerate() {
        let n: usize = dims.iter().product();
        let data = field_f32(n, 0x5eed + i as u64);
        let out = compress_typed(&data, &dims, &mode).expect("compress");
        assert_eq!(
            (out.bytes.len(), fnv64(&out.bytes)),
            expect[i],
            "f32 case {i} ({dims:?}, {mode:?}) changed the stream format"
        );
        // The pinned stream must still decode.
        let (rec, got_dims) = decompress(&out.bytes).expect("decompress");
        assert_eq!(got_dims, dims);
        assert_eq!(rec.len(), n);
    }
}

#[test]
fn f64_streams_match_pinned_hashes() {
    let expect: [(usize, u64); 5] = [
        (1089, 0xbdb694636d700faa),
        (6257, 0x12718c8ca6014b91),
        (29068, 0xca8650cbae350679),
        (2379, 0x344be5d49feea6f3),
        (8047, 0xe7f63f674bd1f95c),
    ];
    for (i, (dims, mode)) in cases().into_iter().enumerate() {
        let n: usize = dims.iter().product();
        let data = field_f64(n, 0xd0d0 + i as u64);
        let out = compress_f64(&data, &dims, &mode).expect("compress");
        assert_eq!(
            (out.bytes.len(), fnv64(&out.bytes)),
            expect[i],
            "f64 case {i} ({dims:?}, {mode:?}) changed the stream format"
        );
        let (rec, got_dims) = decompress_f64(&out.bytes).expect("decompress");
        assert_eq!(got_dims, dims);
        assert_eq!(rec.len(), n);
    }
}

#[test]
fn chunked_container_matches_pinned_hash() {
    let data = field_f32(32 * 9 * 7, 0xc0ffee);
    let out = compress_chunked(&data, &[32, 9, 7], &ZfpMode::FixedAccuracy(1e-3), 2)
        .expect("compress");
    assert_eq!(
        (out.bytes.len(), fnv64(&out.bytes)),
        (10571, 0x3a88d9254aabcf69),
        "chunked ZFP container changed format"
    );
}
