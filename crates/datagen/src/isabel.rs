//! Hurricane-ISABEL-like weather fields (the paper's §VI-A validation set).
//!
//! ISABEL is a WRF hurricane simulation: 100×500×500 snapshots of pressure,
//! temperature, wind components, and precipitation. The distinguishing
//! structure is a *vortex*: winds rotate around a low-pressure eye with a
//! radial profile (calm eye, violent eyewall, decay outwards), plus
//! background turbulence. The paper compresses six 95 MB fields (PRECIP, P,
//! TC, U, V, W) at error bound 1e-4 to validate the Broadwell power model
//! on data never seen during regression.

use crate::field::{Dims, Field};
use crate::spectral::{SpectralField, SpectralParams};

/// Full-size extent (levels × y × x) from §VI-A.
pub const FULL_DIMS: (usize, usize, usize) = (100, 500, 500);

/// The six fields the paper validates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsabelField {
    /// Precipitation mixing ratio (non-negative, patchy).
    Precip,
    /// Pressure (smooth, strong radial eye signature).
    P,
    /// Temperature in Celsius.
    Tc,
    /// Eastward wind component.
    U,
    /// Northward wind component.
    V,
    /// Vertical wind component (small magnitudes).
    W,
}

impl IsabelField {
    /// All six validation fields, in the paper's order.
    pub const ALL: [IsabelField; 6] = [
        IsabelField::Precip,
        IsabelField::P,
        IsabelField::Tc,
        IsabelField::U,
        IsabelField::V,
        IsabelField::W,
    ];

    /// Field name as used in the SDRBench archive.
    pub fn name(self) -> &'static str {
        match self {
            IsabelField::Precip => "PRECIP",
            IsabelField::P => "P",
            IsabelField::Tc => "TC",
            IsabelField::U => "U",
            IsabelField::V => "V",
            IsabelField::W => "W",
        }
    }
}

/// Generate one ISABEL-like field with horizontal extents divided by `scale`.
pub fn generate_scaled(scale: usize, seed: u64, which: IsabelField) -> Field {
    let (nz, full_ny, full_nx) = FULL_DIMS;
    let ny = (full_ny / scale).max(16);
    let nx = (full_nx / scale).max(16);
    // Keep the vertical extent modest when heavily scaled: levels are
    // cheap but 100 of them dominates runtime at small scales.
    let nz = if scale > 4 { (nz / (scale / 4).max(1)).max(8) } else { nz };
    generate(nz, ny, nx, seed, which)
}

/// Generate one ISABEL-like field with explicit dimensions.
pub fn generate(nz: usize, ny: usize, nx: usize, seed: u64, which: IsabelField) -> Field {
    let k_max = 24.0f64.min(ny.min(nx) as f64 / 8.0).max(2.0);
    let turb = SpectralField::new(
        SpectralParams { modes: 96, beta: 5.0 / 3.0, k_max, mean: 0.0, sigma: 1.0 },
        seed ^ (which as u64).wrapping_mul(0x9e3779b97f4a7c15),
    );
    let mut data = Vec::with_capacity(nz * ny * nx);
    // Eye of the storm sits slightly off-center.
    let (cx, cy) = (0.55, 0.45);
    for k in 0..nz {
        let zfrac = k as f64 / nz.max(1) as f64;
        for j in 0..ny {
            let y = j as f64 / ny as f64;
            for i in 0..nx {
                let x = i as f64 / nx as f64;
                let dx = x - cx;
                let dy = y - cy;
                let r = (dx * dx + dy * dy).sqrt();
                let t = turb.eval(x, y, zfrac) as f64;
                let v = match which {
                    IsabelField::P => pressure(r, zfrac, t),
                    IsabelField::Tc => temperature(r, zfrac, t),
                    IsabelField::U => {
                        let (u, _) = wind(dx, dy, r, zfrac);
                        u + 4.0 * t
                    }
                    IsabelField::V => {
                        let (_, w) = wind(dx, dy, r, zfrac);
                        w + 4.0 * t
                    }
                    IsabelField::W => 0.5 * t * (1.0 - zfrac),
                    IsabelField::Precip => {
                        // Precipitation: non-negative, concentrated in the
                        // eyewall rainbands.
                        let band = (-((r - 0.08) / 0.05).powi(2)).exp();
                        (band * (1.0 + t).max(0.0) * 0.01).max(0.0)
                    }
                };
                data.push(v as f32);
            }
        }
    }
    Field::new(which.name(), data, Dims::d3(nz, ny, nx))
}

/// Radial pressure profile: deep low at the eye filling with altitude (hPa).
fn pressure(r: f64, zfrac: f64, turb: f64) -> f64 {
    let surface = 1010.0;
    let deficit = 70.0 * (-r / 0.12).exp() * (1.0 - 0.6 * zfrac);
    surface - deficit - 90.0 * zfrac + 0.5 * turb
}

/// Temperature (°C): warm core, cooling with altitude.
fn temperature(r: f64, zfrac: f64, turb: f64) -> f64 {
    27.0 + 4.0 * (-r / 0.1).exp() - 60.0 * zfrac + 0.8 * turb
}

/// Tangential vortex wind (m/s): Rankine-like profile.
fn wind(dx: f64, dy: f64, r: f64, zfrac: f64) -> (f64, f64) {
    let r_eye = 0.05;
    let vmax = 65.0 * (1.0 - 0.5 * zfrac);
    let speed = if r < r_eye { vmax * r / r_eye } else { vmax * (r_eye / r).powf(0.6) };
    if r < 1e-9 {
        return (0.0, 0.0);
    }
    // Counter-clockwise rotation: velocity ⟂ radius.
    (-dy / r * speed, dx / r * speed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_fields_have_the_paper_names() {
        let names: Vec<_> = IsabelField::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names, vec!["PRECIP", "P", "TC", "U", "V", "W"]);
    }

    #[test]
    fn pressure_has_a_low_at_the_eye() {
        let f = generate(4, 64, 64, 1, IsabelField::P);
        // Surface level (k=0): eye pressure < corner pressure.
        let nx = 64;
        let eye = f.data[(29 * nx) + 35]; // near (0.55, 0.45)
        let corner = f.data[0];
        assert!(eye < corner - 20.0, "eye={eye} corner={corner}");
    }

    #[test]
    fn precip_is_non_negative() {
        let f = generate(4, 48, 48, 2, IsabelField::Precip);
        assert!(f.data.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn winds_rotate_around_eye() {
        // Wind to the "east" of the eye should blow "north" (positive V),
        // to the west "south": the sign of V flips across the eye.
        let f = generate(1, 64, 64, 3, IsabelField::V);
        let nx = 64;
        let j = 28; // y ≈ 0.45 → on the eye's horizontal line
        let east = f.data[j * nx + 50] as f64;
        let west = f.data[j * nx + 20] as f64;
        assert!(east * west < 0.0, "east={east} west={west}");
    }

    #[test]
    fn deterministic_per_field() {
        for which in IsabelField::ALL {
            let a = generate(4, 24, 24, 5, which);
            let b = generate(4, 24, 24, 5, which);
            assert_eq!(a.data, b.data);
        }
    }

    #[test]
    fn fields_differ_from_each_other() {
        let u = generate(2, 24, 24, 5, IsabelField::U);
        let v = generate(2, 24, 24, 5, IsabelField::V);
        assert_ne!(u.data, v.data);
    }

    #[test]
    fn scaled_dims() {
        let f = generate_scaled(10, 0, IsabelField::Tc);
        assert_eq!(f.dims().extents(), &[50, 50, 50]);
    }
}
