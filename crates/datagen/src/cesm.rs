//! CESM-ATM-like climate fields.
//!
//! The real CESM atmosphere output is a stack of 26 vertical levels, each a
//! 1800×3600 latitude/longitude grid. Climate fields are very smooth in the
//! horizontal, carry a strong latitudinal (meridional) gradient, and vary
//! systematically with altitude. We reproduce those traits: a per-level
//! base profile (temperature-like lapse rate), a latitudinal cosine
//! gradient, and a smooth spectral perturbation whose amplitude grows
//! toward the surface (weather lives in the troposphere).

use crate::field::{Dims, Field};
use crate::spectral::{SpectralField, SpectralParams};

/// Full-size extent from Table I.
pub const FULL_DIMS: (usize, usize, usize) = (26, 1800, 3600);

/// Generate a CESM-ATM-like temperature field at reduced resolution.
///
/// `scale` divides the horizontal extents (levels stay at 26, the vertical
/// structure is physical, not resolution); `seed` fixes the realization.
pub fn generate_scaled(scale: usize, seed: u64) -> Field {
    let (nlev, full_ny, full_nx) = FULL_DIMS;
    let ny = (full_ny / scale).max(16);
    let nx = (full_nx / scale).max(16);
    generate(nlev, ny, nx, seed)
}

/// Generate a CESM-ATM-like field with explicit dimensions.
pub fn generate(nlev: usize, ny: usize, nx: usize, seed: u64) -> Field {
    // Cap the spectral content at the sample's resolution (≥8 cells per
    // cycle) so scaled-down fields keep the smoothness — and therefore the
    // compressibility — of the full-resolution product.
    let k_max = 24.0f64.min(ny.min(nx) as f64 / 8.0).max(2.0);
    let params = SpectralParams { modes: 96, beta: 3.0, k_max, mean: 0.0, sigma: 1.0 };
    let synth = SpectralField::new(params, seed);
    let mut data = Vec::with_capacity(nlev * ny * nx);
    for lev in 0..nlev {
        // Temperature-like vertical profile: ~288 K at the surface dropping
        // ~6.5 K per model level towards the top of the stack.
        let frac = lev as f64 / nlev.max(1) as f64;
        let base = 288.0 - 70.0 * (1.0 - frac);
        // Perturbations strengthen toward the surface (high `lev` index).
        let amp = 2.0 + 8.0 * frac;
        for j in 0..ny {
            let lat = j as f64 / ny as f64; // 0 = south pole, 1 = north pole
            // Meridional gradient: warm equator, cold poles.
            let merid = 30.0 * (std::f64::consts::PI * lat).sin();
            for i in 0..nx {
                let x = i as f64 / nx as f64;
                let p = synth.eval(x, lat, frac) as f64;
                data.push((base + merid + amp * p) as f32);
            }
        }
    }
    Field::new("cesm_temperature", data, Dims::d3(nlev, ny, nx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_dims_shrink_horizontal_only() {
        let f = generate_scaled(100, 0);
        let e = f.dims();
        assert_eq!(e.extents()[0], 26);
        assert_eq!(e.extents()[1], 18);
        assert_eq!(e.extents()[2], 36);
    }

    #[test]
    fn values_look_like_kelvin_temperatures() {
        let f = generate_scaled(64, 3);
        let (lo, hi) = f.value_range();
        assert!(lo > 150.0, "lo={lo}");
        assert!(hi < 400.0, "hi={hi}");
    }

    #[test]
    fn surface_is_warmer_than_top() {
        let f = generate(26, 32, 64, 1);
        let per_level = 32 * 64;
        let mean = |lev: usize| -> f64 {
            f.data[lev * per_level..(lev + 1) * per_level]
                .iter()
                .map(|&v| v as f64)
                .sum::<f64>()
                / per_level as f64
        };
        assert!(mean(25) > mean(0) + 30.0, "surface {} top {}", mean(25), mean(0));
    }

    #[test]
    fn equator_warmer_than_poles() {
        let f = generate(1, 64, 32, 2);
        let row_mean = |j: usize| -> f64 {
            f.data[j * 32..(j + 1) * 32].iter().map(|&v| v as f64).sum::<f64>() / 32.0
        };
        let pole = (row_mean(0) + row_mean(63)) / 2.0;
        let eq = row_mean(32);
        assert!(eq > pole + 10.0, "eq={eq} pole={pole}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(4, 16, 16, 9).data, generate(4, 16, 16, 9).data);
    }
}
