//! NYX-like cosmology fields.
//!
//! NYX dumps 512³ baryon density and velocity grids. Density is log-normal
//! (huge dynamic range, always positive, sharp filaments); velocity is a
//! smooth, signed, roughly Gaussian field. We expose both: velocity is what
//! the paper's §VI-B data-dump experiment compresses (`velocity_x`), density
//! stresses compressors with high dynamic range.

use crate::field::{Dims, Field};
use crate::spectral::{SpectralField, SpectralParams};

/// Full-size cube side from Table I.
pub const FULL_SIDE: usize = 512;

/// Generate a NYX-like `velocity_x` cube with side `side`.
pub fn generate_scaled(side: usize, seed: u64) -> Field {
    velocity_x(side.max(8), seed)
}

/// Smooth signed velocity field (km/s-like magnitudes, ±~500).
pub fn velocity_x(side: usize, seed: u64) -> Field {
    // Keep ≥8 cells per cycle at any sample resolution (see cesm.rs).
    let k_max = 24.0f64.min(side as f64 / 8.0).max(2.0);
    let params = SpectralParams { modes: 128, beta: 2.2, k_max, mean: 0.0, sigma: 250.0 };
    let synth = SpectralField::new(params, seed);
    let data = synth.sample_3d(side, side, side);
    Field::new("nyx_velocity_x", data, Dims::d3(side, side, side))
}

/// Log-normal baryon density field (dimensionless overdensity, ≥ 0).
pub fn baryon_density(side: usize, seed: u64) -> Field {
    let k_max = 32.0f64.min(side as f64 / 8.0).max(2.0);
    let params = SpectralParams { modes: 128, beta: 1.8, k_max, mean: 0.0, sigma: 1.2 };
    let synth = SpectralField::new(params, seed ^ 0xABCD);
    let data: Vec<f32> = synth
        .sample_3d(side, side, side)
        .into_iter()
        .map(|g| (g as f64).exp() as f32)
        .collect();
    Field::new("nyx_baryon_density", data, Dims::d3(side, side, side))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn velocity_is_signed_and_bounded() {
        let f = velocity_x(24, 5);
        let (lo, hi) = f.value_range();
        assert!(lo < 0.0 && hi > 0.0, "range {lo}..{hi}");
        assert!(lo > -3000.0 && hi < 3000.0);
    }

    #[test]
    fn density_is_positive_with_long_tail() {
        let f = baryon_density(24, 5);
        let (lo, hi) = f.value_range();
        assert!(lo > 0.0);
        let mean = f.mean();
        // Log-normal: max ≫ mean.
        assert!(hi as f64 > 3.0 * mean, "hi={hi} mean={mean}");
    }

    #[test]
    fn cube_dims() {
        let f = generate_scaled(16, 0);
        assert_eq!(f.dims().extents(), &[16, 16, 16]);
    }

    #[test]
    fn min_side_enforced() {
        assert_eq!(generate_scaled(1, 0).dims().extents(), &[8, 8, 8]);
    }

    #[test]
    fn deterministic() {
        assert_eq!(velocity_x(12, 3).data, velocity_x(12, 3).data);
        assert_eq!(baryon_density(12, 3).data, baryon_density(12, 3).data);
    }
}
