#![warn(missing_docs)]
//! # lcpio-datagen — synthetic scientific datasets
//!
//! The paper compresses four SDRBench datasets (Table I plus the
//! Hurricane-ISABEL validation set). The raw archives are multi-GB downloads
//! that are unavailable offline, so this crate synthesizes fields with the
//! same *dimensionality, smoothness class, and value distribution* — the
//! properties that drive lossy-compressor behaviour (prediction accuracy,
//! quantization-bin occupancy, transform-coefficient decay).
//!
//! | Dataset | Paper dims | Generator |
//! |---|---|---|
//! | CESM-ATM | 26 × 1800 × 3600 | layered 2-D climate fields with latitudinal gradients ([`cesm`]) |
//! | HACC | 1 × 280,953,867 | clustered 1-D particle coordinates ([`hacc`]) |
//! | NYX | 512 × 512 × 512 | log-normal cosmological density / velocity fields ([`nyx`]) |
//! | Hurricane-ISABEL | 100 × 500 × 500 | vortex + turbulence weather fields ([`isabel`]) |
//!
//! All generators are deterministic given a seed, and support *scaled*
//! variants that shrink each dimension while preserving spectral shape, so
//! experiments run in milliseconds while the [`Dataset`] descriptor still
//! reports the full-size byte counts used for energy extrapolation.

pub mod cesm;
pub mod field;
pub mod hacc;
pub mod isabel;
pub mod metrics;
pub mod nyx;
pub mod spectral;

pub use field::{Dims, Field};

use serde::{Deserialize, Serialize};

/// Identifies one of the paper's datasets (Table I + §VI-A validation set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Community Earth System Model, atmosphere component. 26×1800×3600.
    CesmAtm,
    /// Hardware/Hybrid Accelerated Cosmology Code particle data. 1-D.
    Hacc,
    /// NYX adaptive-mesh cosmology. 512³.
    Nyx,
    /// Hurricane-ISABEL WRF weather simulation. 100×500×500 (validation only).
    Isabel,
}

impl Dataset {
    /// All datasets used for *model construction* in the paper (Table I).
    pub const MODEL_SETS: [Dataset; 3] = [Dataset::CesmAtm, Dataset::Hacc, Dataset::Nyx];

    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::CesmAtm => "CESM-ATM",
            Dataset::Hacc => "HACC",
            Dataset::Nyx => "NYX",
            Dataset::Isabel => "Hurricane-ISABEL",
        }
    }

    /// Full-size dimensions as reported in Table I / §VI-A.
    pub fn full_dims(self) -> Dims {
        match self {
            Dataset::CesmAtm => Dims::d3(26, 1800, 3600),
            Dataset::Hacc => Dims::d1(280_953_867),
            Dataset::Nyx => Dims::d3(512, 512, 512),
            Dataset::Isabel => Dims::d3(100, 500, 500),
        }
    }

    /// Size in bytes of one full-size field (f32 elements).
    pub fn full_field_bytes(self) -> u64 {
        self.full_dims().len() as u64 * 4
    }

    /// Generate a scaled-down field for this dataset.
    ///
    /// `scale` divides the *total element count* (approximately): linear
    /// extents shrink by `scale^(1/d)` for a d-dimensional set, so a given
    /// scale produces comparably sized samples across datasets. `seed`
    /// makes the field reproducible. The returned field's
    /// [`Field::full_bytes`] still reports the paper's full-size byte
    /// count, which the power simulator uses to extrapolate work to
    /// full-dataset magnitude.
    pub fn generate(self, scale: usize, seed: u64) -> Field {
        let scale = scale.max(1) as f64;
        let mut f = match self {
            Dataset::CesmAtm => {
                // 26 levels are structural; shrink the two horizontal dims.
                let s = scale.sqrt().max(1.0);
                cesm::generate_scaled(s.round() as usize, seed)
            }
            Dataset::Hacc => hacc::generate_scaled(scale.round() as usize, seed),
            Dataset::Nyx => {
                let side = ((512.0 / scale.cbrt()).round() as usize).max(8);
                nyx::generate_scaled(side, seed)
            }
            Dataset::Isabel => {
                let s = scale.cbrt().round().max(1.0) as usize;
                isabel::generate_scaled(s, seed, isabel::IsabelField::U)
            }
        };
        f.set_full_bytes(self.full_field_bytes());
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_dims_match_paper_table1() {
        assert_eq!(Dataset::CesmAtm.full_dims().len(), 26 * 1800 * 3600);
        assert_eq!(Dataset::Hacc.full_dims().len(), 280_953_867);
        assert_eq!(Dataset::Nyx.full_dims().len(), 512 * 512 * 512);
        assert_eq!(Dataset::Isabel.full_dims().len(), 100 * 500 * 500);
    }

    #[test]
    fn full_field_sizes_match_paper_table1_within_rounding() {
        // Table I reports 673.9MB, 1046.9MB (split HACC xx field ~1.0GB), 536.9MB.
        let mb = |b: u64| b as f64 / 1e6;
        assert!((mb(Dataset::CesmAtm.full_field_bytes()) - 673.9).abs() < 1.0);
        assert!((mb(Dataset::Hacc.full_field_bytes()) - 1123.8).abs() < 1.0);
        assert!((mb(Dataset::Nyx.full_field_bytes()) - 536.9).abs() < 1.0);
    }

    #[test]
    fn generate_is_deterministic() {
        for ds in [Dataset::CesmAtm, Dataset::Hacc, Dataset::Nyx, Dataset::Isabel] {
            let a = ds.generate(16384, 7);
            let b = ds.generate(16384, 7);
            assert_eq!(a.data, b.data, "{} not deterministic", ds.name());
        }
    }

    #[test]
    fn generate_scaled_respects_full_bytes() {
        let f = Dataset::Nyx.generate(4096, 1);
        assert_eq!(f.full_bytes(), Dataset::Nyx.full_field_bytes());
        assert!(f.data.len() < Dataset::Nyx.full_dims().len());
    }

    #[test]
    fn scale_balances_sample_sizes_across_datasets() {
        // The same scale should give samples within ~20× of each other,
        // despite the datasets' different dimensionalities.
        let sizes: Vec<usize> = Dataset::MODEL_SETS
            .iter()
            .map(|ds| ds.generate(16384, 0).data.len())
            .collect();
        let min = *sizes.iter().min().unwrap() as f64;
        let max = *sizes.iter().max().unwrap() as f64;
        assert!(max / min < 20.0, "sizes {sizes:?}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::Nyx.generate(16384, 1);
        let b = Dataset::Nyx.generate(16384, 2);
        assert_ne!(a.data, b.data);
    }
}
