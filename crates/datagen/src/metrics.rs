//! Reconstruction-quality metrics.
//!
//! The standard scorecard for lossy scientific compression (used by
//! SDRBench and the SZ/ZFP papers): maximum error, RMSE/NRMSE, and PSNR.
//! These quantify what an error bound *buys* — the paper varies bounds
//! 1e-1…1e-4 precisely because users pick them by reconstruction quality.

use serde::{Deserialize, Serialize};

/// Error statistics between an original and a reconstructed field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityMetrics {
    /// Maximum absolute pointwise error.
    pub max_abs_error: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// RMSE normalized by the original value range.
    pub nrmse: f64,
    /// Peak signal-to-noise ratio in dB (∞ for exact reconstruction).
    pub psnr_db: f64,
    /// Pearson correlation between original and reconstruction.
    pub correlation: f64,
    /// Number of elements compared.
    pub n: usize,
}

/// Compute the scorecard. Non-finite pairs are skipped (NaN-preserving
/// codecs would otherwise poison every aggregate).
pub fn quality(original: &[f32], reconstructed: &[f32]) -> Option<QualityMetrics> {
    if original.len() != reconstructed.len() || original.is_empty() {
        return None;
    }
    let mut n = 0usize;
    let mut max_err = 0.0f64;
    let mut sq_sum = 0.0f64;
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    for (&a, &b) in original.iter().zip(reconstructed) {
        let (a, b) = (a as f64, b as f64);
        if !a.is_finite() || !b.is_finite() {
            continue;
        }
        n += 1;
        let e = (a - b).abs();
        max_err = max_err.max(e);
        sq_sum += e * e;
        lo = lo.min(a);
        hi = hi.max(a);
        sa += a;
        sb += b;
        saa += a * a;
        sbb += b * b;
        sab += a * b;
    }
    if n == 0 {
        return None;
    }
    let nf = n as f64;
    let rmse = (sq_sum / nf).sqrt();
    let range = hi - lo;
    let nrmse = if range > 0.0 { rmse / range } else { 0.0 };
    let psnr_db = if rmse == 0.0 {
        f64::INFINITY
    } else if range > 0.0 {
        20.0 * (range / rmse).log10()
    } else {
        f64::NAN
    };
    let cov = sab / nf - (sa / nf) * (sb / nf);
    let va = saa / nf - (sa / nf).powi(2);
    let vb = sbb / nf - (sb / nf).powi(2);
    let correlation = if va > 0.0 && vb > 0.0 { cov / (va * vb).sqrt() } else { f64::NAN };
    Some(QualityMetrics { max_abs_error: max_err, rmse, nrmse, psnr_db, correlation, n })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_reconstruction_is_perfect() {
        let a: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let m = quality(&a, &a).expect("valid inputs");
        assert_eq!(m.max_abs_error, 0.0);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.psnr_db, f64::INFINITY);
        assert!((m.correlation - 1.0).abs() < 1e-12);
        assert_eq!(m.n, 100);
    }

    #[test]
    fn known_uniform_error() {
        let a = vec![0.0f32, 1.0, 2.0, 3.0]; // range 3
        let b = vec![0.1f32, 1.1, 2.1, 3.1]; // error 0.1 everywhere
        let m = quality(&a, &b).expect("valid inputs");
        assert!((m.max_abs_error - 0.1).abs() < 1e-6);
        assert!((m.rmse - 0.1).abs() < 1e-6);
        assert!((m.nrmse - 0.1 / 3.0).abs() < 1e-6);
        // PSNR = 20·log10(3/0.1) ≈ 29.54 dB.
        assert!((m.psnr_db - 29.54).abs() < 0.05, "psnr {}", m.psnr_db);
    }

    #[test]
    fn non_finite_pairs_are_skipped() {
        let a = vec![1.0f32, f32::NAN, 3.0];
        let b = vec![1.0f32, f32::NAN, 3.5];
        let m = quality(&a, &b).expect("valid inputs");
        assert_eq!(m.n, 2);
        assert!((m.max_abs_error - 0.5).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(quality(&[], &[]).is_none());
        assert!(quality(&[1.0], &[1.0, 2.0]).is_none());
        assert!(quality(&[f32::NAN], &[f32::NAN]).is_none());
    }

    #[test]
    fn tighter_bounds_score_higher_psnr() {
        // End-to-end with the actual codec: PSNR must grow as eb shrinks.
        let field = crate::nyx::velocity_x(20, 3);
        let mut prev_psnr = 0.0;
        for eb in [1e-1, 1e-2, 1e-3] {
            let cfg = lcpio_szless_stub::roundtrip(&field.data, field.dims().extents(), eb);
            let m = quality(&field.data, &cfg).expect("valid inputs");
            assert!(m.max_abs_error <= eb * 1.01);
            assert!(m.psnr_db > prev_psnr, "eb {eb}: psnr {}", m.psnr_db);
            prev_psnr = m.psnr_db;
        }
    }

    /// Tiny stand-in "codec" so datagen's tests need no circular dev-dep
    /// on the real compressors: quantize to the bound.
    mod lcpio_szless_stub {
        pub fn roundtrip(data: &[f32], _dims: &[usize], eb: f64) -> Vec<f32> {
            data.iter()
                .map(|&v| {
                    let q = (v as f64 / (2.0 * eb)).round() * 2.0 * eb;
                    q as f32
                })
                .collect()
        }
    }
}
