//! Field container and dimension descriptor shared by all generators and
//! both compressors.

use serde::{Deserialize, Serialize};

/// Dimensions of a scientific field, between 1-D and 4-D.
///
/// Stored slowest-varying first (C order), matching how SDRBench distributes
/// its binary dumps and how SZ/ZFP index blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dims {
    /// Extent of each dimension; unused trailing dimensions are 1.
    extents: [usize; 4],
    /// Number of meaningful dimensions (1..=4).
    rank: u8,
}

impl Dims {
    /// 1-D dims.
    pub fn d1(n: usize) -> Self {
        Dims { extents: [n, 1, 1, 1], rank: 1 }
    }

    /// 2-D dims (rows × cols, row-major).
    pub fn d2(ny: usize, nx: usize) -> Self {
        Dims { extents: [ny, nx, 1, 1], rank: 2 }
    }

    /// 3-D dims (slowest × middle × fastest).
    pub fn d3(nz: usize, ny: usize, nx: usize) -> Self {
        Dims { extents: [nz, ny, nx, 1], rank: 3 }
    }

    /// 4-D dims.
    pub fn d4(nw: usize, nz: usize, ny: usize, nx: usize) -> Self {
        Dims { extents: [nw, nz, ny, nx], rank: 4 }
    }

    /// Build from a slice of extents (1..=4 entries, all nonzero).
    pub fn from_slice(dims: &[usize]) -> Option<Self> {
        if dims.is_empty() || dims.len() > 4 || dims.contains(&0) {
            return None;
        }
        let mut extents = [1usize; 4];
        extents[..dims.len()].copy_from_slice(dims);
        Some(Dims { extents, rank: dims.len() as u8 })
    }

    /// Number of meaningful dimensions.
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Extents of the meaningful dimensions.
    pub fn extents(&self) -> &[usize] {
        &self.extents[..self.rank as usize]
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.extents().iter().product()
    }

    /// True when the field has no elements (impossible by construction, but
    /// kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extent of the fastest-varying dimension.
    pub fn fastest(&self) -> usize {
        self.extents[self.rank as usize - 1]
    }

    /// Linear index of an (up-to) 4-D coordinate, slowest first.
    pub fn index(&self, coord: &[usize]) -> usize {
        debug_assert_eq!(coord.len(), self.rank());
        let mut idx = 0usize;
        for (c, e) in coord.iter().zip(self.extents()) {
            debug_assert!(c < e);
            idx = idx * e + c;
        }
        idx
    }
}

impl std::fmt::Display for Dims {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for e in self.extents() {
            if !first {
                write!(f, "x")?;
            }
            write!(f, "{e}")?;
            first = false;
        }
        Ok(())
    }
}

/// An owned floating-point field plus its logical shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Field {
    /// Name of the physical quantity (e.g. `"velocity_x"`).
    pub name: String,
    /// Flat element storage, C order.
    pub data: Vec<f32>,
    dims: Dims,
    /// Size in bytes of the *full-scale* field this sample represents.
    full_bytes: u64,
}

impl Field {
    /// Wrap data with its shape. Panics if `data.len() != dims.len()`.
    pub fn new(name: impl Into<String>, data: Vec<f32>, dims: Dims) -> Self {
        assert_eq!(data.len(), dims.len(), "data length must match dims");
        let full = data.len() as u64 * 4;
        Field { name: name.into(), data, dims, full_bytes: full }
    }

    /// Shape of the stored (possibly scaled-down) data.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Bytes of the stored sample (`len * 4`).
    pub fn sample_bytes(&self) -> u64 {
        self.data.len() as u64 * 4
    }

    /// Bytes of the full-scale field this sample stands in for.
    pub fn full_bytes(&self) -> u64 {
        self.full_bytes
    }

    /// Record the full-scale byte count (used by dataset descriptors).
    pub fn set_full_bytes(&mut self, bytes: u64) {
        self.full_bytes = bytes;
    }

    /// Ratio `full_bytes / sample_bytes`, used to extrapolate work profiles.
    pub fn scale_factor(&self) -> f64 {
        self.full_bytes as f64 / self.sample_bytes() as f64
    }

    /// Minimum and maximum finite values.
    pub fn value_range(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        (lo, hi)
    }

    /// Arithmetic mean of the values.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Population standard deviation of the values.
    pub fn std_dev(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        let var = self
            .data
            .iter()
            .map(|&v| {
                let d = v as f64 - m;
                d * d
            })
            .sum::<f64>()
            / self.data.len() as f64;
        var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_roundtrip() {
        let d = Dims::d3(4, 5, 6);
        assert_eq!(d.rank(), 3);
        assert_eq!(d.len(), 120);
        assert_eq!(d.extents(), &[4, 5, 6]);
        assert_eq!(d.fastest(), 6);
        assert_eq!(format!("{d}"), "4x5x6");
    }

    #[test]
    fn dims_index_is_row_major() {
        let d = Dims::d3(2, 3, 4);
        assert_eq!(d.index(&[0, 0, 0]), 0);
        assert_eq!(d.index(&[0, 0, 1]), 1);
        assert_eq!(d.index(&[0, 1, 0]), 4);
        assert_eq!(d.index(&[1, 0, 0]), 12);
        assert_eq!(d.index(&[1, 2, 3]), 23);
    }

    #[test]
    fn dims_from_slice_validates() {
        assert!(Dims::from_slice(&[]).is_none());
        assert!(Dims::from_slice(&[1, 2, 3, 4, 5]).is_none());
        assert!(Dims::from_slice(&[3, 0]).is_none());
        let d = Dims::from_slice(&[7, 9]).unwrap();
        assert_eq!(d.rank(), 2);
        assert_eq!(d.len(), 63);
    }

    #[test]
    fn field_stats() {
        let f = Field::new("t", vec![1.0, 2.0, 3.0, 4.0], Dims::d1(4));
        assert_eq!(f.value_range(), (1.0, 4.0));
        assert!((f.mean() - 2.5).abs() < 1e-12);
        assert!((f.std_dev() - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(f.sample_bytes(), 16);
        assert!((f.scale_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "data length must match dims")]
    fn field_len_mismatch_panics() {
        let _ = Field::new("bad", vec![0.0; 3], Dims::d1(4));
    }

    #[test]
    fn value_range_skips_non_finite() {
        let f = Field::new("t", vec![f32::NAN, 1.0, f32::INFINITY, -2.0], Dims::d1(4));
        assert_eq!(f.value_range(), (-2.0, 1.0));
    }
}
