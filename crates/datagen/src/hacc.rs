//! HACC-like 1-D particle data.
//!
//! HACC snapshots are per-particle arrays (positions `xx/yy/zz`, velocities
//! `vx/vy/vz`) of ~281 M particles. Positions are *not* spatially smooth in
//! array order — particles are laid out in the order the simulation tracks
//! them — but they are strongly *clustered* (particles fall into halos), so
//! consecutive array entries are often close in space. SZ's 1-D Lorenzo
//! predictor exploits exactly this partial correlation, giving HACC its
//! characteristic "hard to compress" behaviour relative to gridded fields.
//!
//! We model this with a halo mixture: a particle either continues a random
//! walk inside the current halo (correlated with its predecessor) or jumps
//! to a new halo center (decorrelated).

use crate::field::{Dims, Field};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Full-size element count from Table I.
pub const FULL_LEN: usize = 280_953_867;

/// Box size (Mpc/h-like units) for the particle coordinates.
pub const BOX_SIZE: f32 = 256.0;

/// Generate a HACC-like coordinate array of `FULL_LEN / scale` particles.
pub fn generate_scaled(scale: usize, seed: u64) -> Field {
    let n = (FULL_LEN / scale.max(1)).clamp(4096, FULL_LEN);
    generate(n, seed)
}

/// Generate `n` clustered particle coordinates.
pub fn generate(n: usize, seed: u64) -> Field {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0xd134_2543_de82_ef95).wrapping_add(1));
    let mut data = Vec::with_capacity(n);
    let mut halo_center = rng.gen::<f32>() * BOX_SIZE;
    let mut pos = halo_center;
    // Mean halo membership ≈ 64 consecutive particles.
    let jump_prob = 1.0 / 64.0;
    for _ in 0..n {
        if rng.gen::<f32>() < jump_prob {
            halo_center = rng.gen::<f32>() * BOX_SIZE;
            pos = halo_center;
        }
        // Random walk around the halo center with reversion, keeping the
        // particle within a ~1% halo radius.
        let radius = BOX_SIZE * 0.01;
        let step = (rng.gen::<f32>() - 0.5) * radius * 0.5;
        pos += step + (halo_center - pos) * 0.1;
        data.push(pos.rem_euclid(BOX_SIZE));
    }
    Field::new("hacc_xx", data, Dims::d1(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinates_stay_in_box() {
        let f = generate(50_000, 4);
        let (lo, hi) = f.value_range();
        assert!(lo >= 0.0 && hi < BOX_SIZE, "range {lo}..{hi}");
    }

    #[test]
    fn consecutive_particles_are_clustered() {
        let f = generate(50_000, 4);
        // Median |Δ| between consecutive entries should be far below the
        // expectation for uniform data (BOX_SIZE/3).
        let mut deltas: Vec<f32> =
            f.data.windows(2).map(|w| (w[1] - w[0]).abs()).collect();
        deltas.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = deltas[deltas.len() / 2];
        assert!(median < BOX_SIZE * 0.02, "median delta {median}");
    }

    #[test]
    fn has_large_jumps_between_halos() {
        let f = generate(50_000, 4);
        let big = f
            .data
            .windows(2)
            .filter(|w| (w[1] - w[0]).abs() > BOX_SIZE * 0.1)
            .count();
        // Roughly n/64 halo jumps expected; allow a broad band.
        assert!(big > 200 && big < 3000, "jumps={big}");
    }

    #[test]
    fn scaled_length_clamps() {
        assert_eq!(generate_scaled(usize::MAX, 0).data.len(), 4096);
        let f = generate_scaled(4096, 0);
        assert_eq!(f.data.len(), FULL_LEN / 4096);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(10_000, 77).data, generate(10_000, 77).data);
    }
}
