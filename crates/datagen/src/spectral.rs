//! Spectral synthesis of smooth random fields.
//!
//! Scientific simulation output is *smooth*: its spatial power spectrum
//! decays with wavenumber (turbulence ~ k^-5/3, cosmological density ~
//! k^(n-4)...). Lossy-compressor behaviour — predictor hit rate in SZ,
//! coefficient decay in ZFP — is governed by exactly this decay, so we
//! synthesize fields as superpositions of randomly-phased cosine modes with
//! a power-law amplitude spectrum. This is the standard "spectral synthesis"
//! method for fractional-Brownian-like fields and needs no FFT.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for power-law spectral synthesis.
#[derive(Debug, Clone, Copy)]
pub struct SpectralParams {
    /// Number of random cosine modes to superpose. More modes → richer
    /// small-scale texture; 64–256 is plenty for compression studies.
    pub modes: usize,
    /// Spectral slope β: mode amplitude ∝ k^(-β/2). β≈5/3 mimics
    /// turbulence, β≈3 very smooth climate fields, β≈1 rough particle data.
    pub beta: f64,
    /// Largest wavenumber (cycles across the domain) sampled.
    pub k_max: f64,
    /// Output mean value.
    pub mean: f32,
    /// Output standard deviation (approximate).
    pub sigma: f32,
}

impl Default for SpectralParams {
    fn default() -> Self {
        SpectralParams { modes: 128, beta: 2.0, k_max: 32.0, mean: 0.0, sigma: 1.0 }
    }
}

/// One cosine mode: `amp * cos(2π (k·x) + phase)`.
#[derive(Debug, Clone, Copy)]
struct Mode {
    k: [f64; 3],
    amp: f64,
    phase: f64,
}

/// A reusable smooth-field synthesizer for up to 3 dimensions.
#[derive(Debug, Clone)]
pub struct SpectralField {
    modes: Vec<Mode>,
    params: SpectralParams,
}

impl SpectralField {
    /// Draw a random set of modes with the requested spectrum.
    pub fn new(params: SpectralParams, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ SEED_MIX);
        let mut modes = Vec::with_capacity(params.modes);
        // Amplitude normalization so the field variance is ~params.sigma².
        // Sum of M independent cosines with amplitudes a_i has variance
        // Σ a_i²/2; we normalize after drawing.
        let mut raw: Vec<Mode> = (0..params.modes)
            .map(|_| {
                // log-uniform wavenumber magnitude in [1, k_max]
                let lk = rng.gen::<f64>() * params.k_max.max(1.0).ln();
                let kmag = lk.exp();
                // random direction on the sphere (3 components; unused ones
                // are ignored by lower-rank evaluation)
                let mut dir = [0.0f64; 3];
                loop {
                    for d in dir.iter_mut() {
                        *d = rng.gen::<f64>() * 2.0 - 1.0;
                    }
                    let n2: f64 = dir.iter().map(|d| d * d).sum();
                    if n2 > 1e-6 && n2 <= 1.0 {
                        let n = n2.sqrt();
                        for d in dir.iter_mut() {
                            *d /= n;
                        }
                        break;
                    }
                }
                let amp = kmag.powf(-params.beta / 2.0);
                let phase = rng.gen::<f64>() * std::f64::consts::TAU;
                Mode { k: [dir[0] * kmag, dir[1] * kmag, dir[2] * kmag], amp, phase }
            })
            .collect();
        let var: f64 = raw.iter().map(|m| m.amp * m.amp / 2.0).sum();
        let norm = if var > 0.0 { (params.sigma as f64) / var.sqrt() } else { 1.0 };
        for m in raw.iter_mut() {
            m.amp *= norm;
        }
        modes.append(&mut raw);
        SpectralField { modes, params }
    }

    /// Evaluate the field at a normalized coordinate in [0,1)^3.
    pub fn eval(&self, x: f64, y: f64, z: f64) -> f32 {
        let mut v = self.params.mean as f64;
        for m in &self.modes {
            let arg = std::f64::consts::TAU * (m.k[0] * x + m.k[1] * y + m.k[2] * z) + m.phase;
            v += m.amp * arg.cos();
        }
        v as f32
    }

    /// Fill a 1-D array of length `n`.
    pub fn sample_1d(&self, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.eval(i as f64 / n as f64, 0.0, 0.0)).collect()
    }

    /// Fill a row-major 2-D array.
    pub fn sample_2d(&self, ny: usize, nx: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(ny * nx);
        for j in 0..ny {
            let y = j as f64 / ny as f64;
            for i in 0..nx {
                out.push(self.eval(i as f64 / nx as f64, y, 0.0));
            }
        }
        out
    }

    /// Fill a row-major 3-D array (z slowest).
    pub fn sample_3d(&self, nz: usize, ny: usize, nx: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(nz * ny * nx);
        for k in 0..nz {
            let z = k as f64 / nz as f64;
            for j in 0..ny {
                let y = j as f64 / ny as f64;
                for i in 0..nx {
                    out.push(self.eval(i as f64 / nx as f64, y, z));
                }
            }
        }
        out
    }
}

/// Decorrelates spectral-synthesis seeds from caller-provided seeds so a
/// generator and its consumer never share an RNG stream.
const SEED_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

#[cfg(test)]
mod tests {
    use super::*;

    fn var(xs: &[f32]) -> f64 {
        let m = xs.iter().map(|&v| v as f64).sum::<f64>() / xs.len() as f64;
        xs.iter().map(|&v| (v as f64 - m).powi(2)).sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn deterministic_given_seed() {
        let p = SpectralParams::default();
        let a = SpectralField::new(p, 11).sample_1d(256);
        let b = SpectralField::new(p, 11).sample_1d(256);
        assert_eq!(a, b);
    }

    #[test]
    fn sigma_controls_variance() {
        let p = SpectralParams { sigma: 3.0, ..Default::default() };
        let xs = SpectralField::new(p, 5).sample_2d(64, 64);
        let s = var(&xs).sqrt();
        // Spatial variance of a finite sample deviates from the ensemble
        // value; accept a generous band.
        assert!(s > 1.0 && s < 6.0, "sigma={s}");
    }

    #[test]
    fn mean_offset_applied() {
        let p = SpectralParams { mean: 100.0, sigma: 1.0, ..Default::default() };
        let xs = SpectralField::new(p, 5).sample_1d(4096);
        let m = xs.iter().map(|&v| v as f64).sum::<f64>() / xs.len() as f64;
        assert!((m - 100.0).abs() < 3.0, "mean={m}");
    }

    #[test]
    fn smoother_spectrum_has_smaller_gradients() {
        let rough = SpectralParams { beta: 0.5, ..Default::default() };
        let smooth = SpectralParams { beta: 4.0, ..Default::default() };
        let a = SpectralField::new(rough, 9).sample_1d(2048);
        let b = SpectralField::new(smooth, 9).sample_1d(2048);
        let grad = |xs: &[f32]| -> f64 {
            xs.windows(2).map(|w| (w[1] - w[0]).abs() as f64).sum::<f64>() / (xs.len() - 1) as f64
        };
        assert!(
            grad(&a) > 2.0 * grad(&b),
            "rough grad {} should exceed smooth grad {}",
            grad(&a),
            grad(&b)
        );
    }

    #[test]
    fn sample_3d_layout_matches_eval() {
        let p = SpectralParams::default();
        let f = SpectralField::new(p, 3);
        let (nz, ny, nx) = (4, 5, 6);
        let v = f.sample_3d(nz, ny, nx);
        let idx = (2 * ny + 3) * nx + 1; // z=2,y=3,x=1
        let expect = f.eval(1.0 / nx as f64, 3.0 / ny as f64, 2.0 / nz as f64);
        assert_eq!(v[idx], expect);
    }
}
