#![warn(missing_docs)]
//! # lcpio-fit — non-linear least squares for power models
//!
//! The paper fits `P(f) = a·f^b + c` (its Eqn 2) to measured power-vs-
//! frequency data with the MATLAB Curve Fitting Toolbox. This crate is the
//! offline replacement:
//!
//! * [`lm`] — a small Levenberg–Marquardt solver (≤ 6 parameters);
//! * [`powerlaw`] — the `a·f^b + c` family with multi-start fitting,
//!   reporting the paper's GF columns (SSE, RMSE, R²);
//! * [`stats`] — goodness-of-fit statistics and an OLS baseline;
//! * [`bootstrap`] — residual-bootstrap confidence intervals on fitted
//!   parameters.
//!
//! ```
//! use lcpio_fit::powerlaw::fit_power_law;
//!
//! // Frequencies 0.8..=2.0 GHz and a Broadwell-like power curve.
//! let x: Vec<f64> = (0..25).map(|i| 0.8 + 0.05 * i as f64).collect();
//! let y: Vec<f64> = x.iter().map(|&f| 0.0064 * f.powf(5.315) + 0.7429).collect();
//! let fit = fit_power_law(&x, &y).unwrap();
//! assert!((fit.b - 5.315).abs() < 0.1);
//! assert!(fit.gof.sse < 1e-6);
//! ```

pub mod bootstrap;
pub mod lm;
pub mod polynomial;
pub mod powerlaw;
pub mod stats;

pub use bootstrap::{bootstrap_power_law, BootstrapFit, Interval};
pub use polynomial::{fit_polynomial, select_model, FittedModel, PolynomialFit};
pub use powerlaw::{fit_power_law, FitError, PowerLawFit, PowerLawModel};
pub use stats::{linear_fit, GoodnessOfFit, LinearFit};
