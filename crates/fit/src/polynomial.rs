//! Polynomial least squares and model-family selection.
//!
//! The paper says the MATLAB Curve Fitting Toolbox "finds the most optimal
//! model" before settling on `a·f^b + c`. This module reconstructs that
//! selection step: fit polynomial alternatives of increasing degree by
//! ordinary least squares (normal equations with Gaussian elimination) and
//! compare families with AIC — which penalizes the extra parameters that
//! raw SSE ignores.

use crate::powerlaw::{fit_power_law, FitError, PowerLawFit};
use crate::stats::GoodnessOfFit;
use serde::{Deserialize, Serialize};

/// A fitted polynomial `y = c0 + c1·x + … + ck·x^k`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolynomialFit {
    /// Coefficients, constant term first.
    pub coeffs: Vec<f64>,
    /// Fit quality.
    pub gof: GoodnessOfFit,
}

impl PolynomialFit {
    /// Evaluate the polynomial.
    pub fn eval(&self, x: f64) -> f64 {
        let mut acc = 0.0;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Polynomial degree.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }
}

/// Fit a degree-`k` polynomial by OLS. Needs at least `k + 1` points.
pub fn fit_polynomial(x: &[f64], y: &[f64], degree: usize) -> Result<PolynomialFit, FitError> {
    let p = degree + 1;
    if x.len() != y.len() || x.len() < p || degree > 8 {
        return Err(FitError::BadInput);
    }
    // Normal equations: (XᵀX) c = Xᵀy with X[i][j] = x_i^j.
    let mut ata = vec![vec![0.0f64; p + 1]; p]; // augmented
    for (&xi, &yi) in x.iter().zip(y) {
        let mut powers = vec![1.0f64; 2 * p - 1];
        for j in 1..2 * p - 1 {
            powers[j] = powers[j - 1] * xi;
        }
        for r in 0..p {
            for c in 0..p {
                ata[r][c] += powers[r + c];
            }
            ata[r][p] += powers[r] * yi;
        }
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..p {
        let mut piv = col;
        for row in col + 1..p {
            if ata[row][col].abs() > ata[piv][col].abs() {
                piv = row;
            }
        }
        if ata[piv][col].abs() < 1e-280 {
            return Err(FitError::BadInput);
        }
        ata.swap(col, piv);
        let d = ata[col][col];
        let pivot_row = ata[col].clone();
        for (row, r) in ata.iter_mut().enumerate().take(p) {
            if row == col {
                continue;
            }
            let f = r[col] / d;
            for (x, &pv) in r[col..=p].iter_mut().zip(&pivot_row[col..=p]) {
                *x -= f * pv;
            }
        }
    }
    let coeffs: Vec<f64> = (0..p).map(|r| ata[r][p] / ata[r][r]).collect();
    let fit = PolynomialFit { coeffs, gof: GoodnessOfFit { sse: 0.0, rmse: 0.0, r2: 0.0, n: 0 } };
    let y_hat: Vec<f64> = x.iter().map(|&v| fit.eval(v)).collect();
    let gof = GoodnessOfFit::compute(y, &y_hat, p);
    Ok(PolynomialFit { gof, ..fit })
}

/// Akaike information criterion for a least-squares fit.
pub fn aic(sse: f64, n: usize, n_params: usize) -> f64 {
    let n = n as f64;
    n * (sse.max(1e-300) / n).ln() + 2.0 * (n_params as f64 + 1.0)
}

/// A candidate model family for selection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FittedModel {
    /// `a·x^b + c` (the paper's Eqn 2).
    PowerLaw(PowerLawFit),
    /// Polynomial of the stored degree.
    Polynomial(PolynomialFit),
}

impl FittedModel {
    /// Family label.
    pub fn name(&self) -> String {
        match self {
            FittedModel::PowerLaw(_) => "power-law a*x^b+c".to_string(),
            FittedModel::Polynomial(p) => format!("polynomial deg {}", p.degree()),
        }
    }

    /// Fit quality.
    pub fn gof(&self) -> &GoodnessOfFit {
        match self {
            FittedModel::PowerLaw(f) => &f.gof,
            FittedModel::Polynomial(f) => &f.gof,
        }
    }

    /// Parameter count (for AIC).
    pub fn n_params(&self) -> usize {
        match self {
            FittedModel::PowerLaw(_) => 3,
            FittedModel::Polynomial(p) => p.coeffs.len(),
        }
    }

    /// AIC score of this fit.
    pub fn aic(&self) -> f64 {
        aic(self.gof().sse, self.gof().n, self.n_params())
    }
}

/// Fit the standard candidate set (power law + polynomials of degree 1–4)
/// and return all fits sorted by AIC, best first.
pub fn select_model(x: &[f64], y: &[f64]) -> Result<Vec<FittedModel>, FitError> {
    let mut out: Vec<FittedModel> = Vec::new();
    out.push(FittedModel::PowerLaw(fit_power_law(x, y)?));
    for degree in 1..=4 {
        if let Ok(p) = fit_polynomial(x, y, degree) {
            out.push(FittedModel::Polynomial(p));
        }
    }
    out.sort_by(|a, b| a.aic().partial_cmp(&b.aic()).expect("finite AIC"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> Vec<f64> {
        (0..25).map(|i| 0.8 + 0.05 * i as f64).collect()
    }

    #[test]
    fn fits_exact_polynomials() {
        let x = ladder();
        let y: Vec<f64> = x.iter().map(|&v| 2.0 - 3.0 * v + 0.5 * v * v).collect();
        let f = fit_polynomial(&x, &y, 2).expect("fit");
        assert!((f.coeffs[0] - 2.0).abs() < 1e-8, "{:?}", f.coeffs);
        assert!((f.coeffs[1] + 3.0).abs() < 1e-8);
        assert!((f.coeffs[2] - 0.5).abs() < 1e-8);
        assert!(f.gof.sse < 1e-12);
    }

    #[test]
    fn higher_degree_never_fits_worse() {
        let x = ladder();
        let y: Vec<f64> = x.iter().map(|&v| 0.01 * v.powf(4.0) + 0.76).collect();
        let mut prev = f64::MAX;
        for deg in 1..=4 {
            let f = fit_polynomial(&x, &y, deg).expect("fit");
            assert!(f.gof.sse <= prev + 1e-12, "deg {deg}");
            prev = f.gof.sse;
        }
    }

    #[test]
    fn eval_uses_horner_correctly() {
        let f = PolynomialFit {
            coeffs: vec![1.0, 2.0, 3.0],
            gof: GoodnessOfFit { sse: 0.0, rmse: 0.0, r2: 1.0, n: 3 },
        };
        assert_eq!(f.eval(2.0), 1.0 + 4.0 + 12.0);
        assert_eq!(f.degree(), 2);
    }

    #[test]
    fn aic_penalizes_parameters() {
        // Same SSE, more parameters → worse (higher) AIC.
        assert!(aic(1.0, 25, 5) > aic(1.0, 25, 3));
    }

    #[test]
    fn selection_prefers_power_law_on_knee_data() {
        // Skylake-shaped data: flat then a sharp rise. Low-order
        // polynomials cannot track it; the power law should win the AIC.
        let x: Vec<f64> = (0..29).map(|i| 0.8 + 0.05 * i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&f| 2.235e-9 * f.powf(23.31) + 0.7941).collect();
        let ranked = select_model(&x, &y).expect("selection");
        assert_eq!(ranked.len(), 5);
        match &ranked[0] {
            FittedModel::PowerLaw(_) => {}
            other => panic!("expected power law to win, got {}", other.name()),
        }
    }

    #[test]
    fn selection_prefers_line_on_noisy_linear_data() {
        // On *noisy* linear data every family reaches roughly the same
        // SSE (a power law can imitate a line with b = 1), so AIC's
        // parameter penalty must tip the ranking to the 2-parameter line.
        // (On noise-free data the comparison degenerates: all families hit
        // SSE ≈ 0 and floating-point dust decides.)
        let x = ladder();
        let mut noise: Vec<f64> = (0..x.len())
            .map(|i| 0.004 * (((i * 37) % 11) as f64 - 5.0))
            .collect();
        let mean = noise.iter().sum::<f64>() / noise.len() as f64;
        noise.iter_mut().for_each(|n| *n -= mean);
        let y: Vec<f64> =
            x.iter().zip(&noise).map(|(&v, &n)| 0.2 * v + 0.7 + n).collect();
        let ranked = select_model(&x, &y).expect("selection");
        match &ranked[0] {
            FittedModel::Polynomial(p) => assert_eq!(p.degree(), 1, "degree {}", p.degree()),
            other => panic!("expected degree-1 polynomial, got {}", other.name()),
        }
    }

    #[test]
    fn input_validation() {
        assert!(fit_polynomial(&[1.0], &[1.0], 2).is_err());
        assert!(fit_polynomial(&[1.0, 2.0], &[1.0], 1).is_err());
        assert!(fit_polynomial(&ladder(), &ladder(), 9).is_err());
    }
}
