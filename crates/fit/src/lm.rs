//! Levenberg–Marquardt non-linear least squares.
//!
//! Stands in for the MATLAB Curve Fitting Toolbox the paper used: damped
//! Gauss–Newton on the normal equations, with the damping factor adapted
//! by step acceptance. Designed for the small problems this project needs
//! (≤ [`MAX_PARAMS`] parameters, tens of observations), so the linear
//! solve is a dense Gaussian elimination with partial pivoting.

/// Maximum number of model parameters the solver supports.
pub const MAX_PARAMS: usize = 6;

/// A parametric scalar model `y = f(params, x)` with analytic gradient.
pub trait Model {
    /// Number of parameters.
    fn n_params(&self) -> usize;
    /// Evaluate the model.
    fn eval(&self, params: &[f64], x: f64) -> f64;
    /// Gradient ∂f/∂params at (params, x); writes into `out`.
    fn grad(&self, params: &[f64], x: f64, out: &mut [f64]);
    /// Clamp parameters into their feasible region after each step.
    fn project(&self, _params: &mut [f64]) {}
}

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct LmOptions {
    /// Maximum LM iterations.
    pub max_iters: usize,
    /// Stop when the relative SSE improvement falls below this.
    pub tol: f64,
    /// Initial damping factor λ.
    pub lambda0: f64,
}

impl Default for LmOptions {
    fn default() -> Self {
        LmOptions { max_iters: 200, tol: 1e-12, lambda0: 1e-3 }
    }
}

/// Result of one LM run.
#[derive(Debug, Clone)]
pub struct LmResult {
    /// Fitted parameters.
    pub params: Vec<f64>,
    /// Final sum of squared errors.
    pub sse: f64,
    /// Iterations used.
    pub iters: usize,
    /// True when the tolerance criterion stopped the run (vs iteration cap).
    pub converged: bool,
}

/// Errors from the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LmError {
    /// x/y length mismatch or fewer points than parameters.
    BadInput,
    /// More parameters than [`MAX_PARAMS`].
    TooManyParams,
}

impl std::fmt::Display for LmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LmError::BadInput => write!(f, "invalid observations"),
            LmError::TooManyParams => write!(f, "too many parameters"),
        }
    }
}

impl std::error::Error for LmError {}

fn sse_of(model: &dyn Model, params: &[f64], x: &[f64], y: &[f64]) -> f64 {
    x.iter()
        .zip(y)
        .map(|(&xi, &yi)| {
            let r = yi - model.eval(params, xi);
            r * r
        })
        .sum()
}

/// Solve the damped normal equations `(JᵀJ + λ·diag(JᵀJ))·δ = Jᵀr`.
/// Returns `None` when the system is singular.
fn solve_damped(
    jtj: &[[f64; MAX_PARAMS]; MAX_PARAMS],
    jtr: &[f64; MAX_PARAMS],
    lambda: f64,
    p: usize,
) -> Option<[f64; MAX_PARAMS]> {
    let mut a = [[0.0f64; MAX_PARAMS + 1]; MAX_PARAMS];
    for i in 0..p {
        for j in 0..p {
            a[i][j] = jtj[i][j];
        }
        // Marquardt scaling: damp by the diagonal, with a floor so zero
        // curvature directions remain solvable.
        a[i][i] += lambda * jtj[i][i].max(1e-12);
        a[i][p] = jtr[i];
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..p {
        let mut piv = col;
        for row in col + 1..p {
            if a[row][col].abs() > a[piv][col].abs() {
                piv = row;
            }
        }
        if a[piv][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, piv);
        let d = a[col][col];
        let pivot_row = a[col];
        for r in a.iter_mut().take(p).skip(col + 1) {
            let f = r[col] / d;
            for (x, &pv) in r[col..=p].iter_mut().zip(&pivot_row[col..=p]) {
                *x -= f * pv;
            }
        }
    }
    let mut delta = [0.0f64; MAX_PARAMS];
    for row in (0..p).rev() {
        let mut s = a[row][p];
        for k in row + 1..p {
            s -= a[row][k] * delta[k];
        }
        delta[row] = s / a[row][row];
    }
    Some(delta)
}

/// Run Levenberg–Marquardt from `initial` parameters.
pub fn fit(
    model: &dyn Model,
    x: &[f64],
    y: &[f64],
    initial: &[f64],
    opts: &LmOptions,
) -> Result<LmResult, LmError> {
    let p = model.n_params();
    if p > MAX_PARAMS {
        return Err(LmError::TooManyParams);
    }
    if x.len() != y.len() || x.len() < p || initial.len() != p {
        return Err(LmError::BadInput);
    }
    let mut params = initial.to_vec();
    model.project(&mut params);
    let mut sse = sse_of(model, &params, x, y);
    let mut lambda = opts.lambda0;
    let mut grad_buf = vec![0.0f64; p];
    let mut iters = 0;
    let mut converged = false;

    while iters < opts.max_iters {
        iters += 1;
        // Assemble JᵀJ and Jᵀr.
        let mut jtj = [[0.0f64; MAX_PARAMS]; MAX_PARAMS];
        let mut jtr = [0.0f64; MAX_PARAMS];
        for (&xi, &yi) in x.iter().zip(y) {
            let r = yi - model.eval(&params, xi);
            model.grad(&params, xi, &mut grad_buf);
            for i in 0..p {
                jtr[i] += grad_buf[i] * r;
                for j in 0..p {
                    jtj[i][j] += grad_buf[i] * grad_buf[j];
                }
            }
        }
        // Try steps with increasing damping until one improves the SSE.
        let mut accepted = false;
        for _ in 0..20 {
            let Some(delta) = solve_damped(&jtj, &jtr, lambda, p) else {
                lambda *= 10.0;
                continue;
            };
            let mut trial = params.clone();
            for i in 0..p {
                trial[i] += delta[i];
            }
            model.project(&mut trial);
            let trial_sse = sse_of(model, &trial, x, y);
            if trial_sse.is_finite() && trial_sse < sse {
                let improvement = (sse - trial_sse) / sse.max(1e-300);
                params = trial;
                sse = trial_sse;
                lambda = (lambda * 0.3).max(1e-12);
                accepted = true;
                if improvement < opts.tol {
                    converged = true;
                }
                break;
            }
            lambda *= 10.0;
        }
        if !accepted {
            // No step improves: local minimum (or stuck); call it converged.
            converged = true;
            break;
        }
        if converged {
            break;
        }
    }
    Ok(LmResult { params, sse, iters, converged })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = a·exp(b·x)
    struct ExpModel;

    impl Model for ExpModel {
        fn n_params(&self) -> usize {
            2
        }
        fn eval(&self, p: &[f64], x: f64) -> f64 {
            p[0] * (p[1] * x).exp()
        }
        fn grad(&self, p: &[f64], x: f64, out: &mut [f64]) {
            out[0] = (p[1] * x).exp();
            out[1] = p[0] * x * (p[1] * x).exp();
        }
    }

    /// y = m·x + b as a trivial LM sanity case.
    struct LineModel;

    impl Model for LineModel {
        fn n_params(&self) -> usize {
            2
        }
        fn eval(&self, p: &[f64], x: f64) -> f64 {
            p[0] * x + p[1]
        }
        fn grad(&self, _p: &[f64], x: f64, out: &mut [f64]) {
            out[0] = x;
            out[1] = 1.0;
        }
    }

    #[test]
    fn fits_a_line_exactly() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 3.0 * v - 2.0).collect();
        let r = fit(&LineModel, &x, &y, &[0.0, 0.0], &LmOptions::default()).unwrap();
        assert!(r.converged);
        assert!((r.params[0] - 3.0).abs() < 1e-8);
        assert!((r.params[1] + 2.0).abs() < 1e-8);
        assert!(r.sse < 1e-12);
    }

    #[test]
    fn fits_exponential_from_rough_start() {
        let x: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        let y: Vec<f64> = x.iter().map(|&v| 2.0 * (1.5 * v).exp()).collect();
        let r = fit(&ExpModel, &x, &y, &[1.0, 1.0], &LmOptions::default()).unwrap();
        assert!((r.params[0] - 2.0).abs() < 1e-5, "{:?}", r.params);
        assert!((r.params[1] - 1.5).abs() < 1e-5, "{:?}", r.params);
    }

    #[test]
    fn noisy_data_still_converges_close() {
        let x: Vec<f64> = (0..40).map(|i| i as f64 * 0.05).collect();
        // Deterministic "noise".
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| 2.0 * (1.5 * v).exp() + 0.01 * ((i * 37 % 11) as f64 - 5.0))
            .collect();
        let r = fit(&ExpModel, &x, &y, &[1.0, 1.0], &LmOptions::default()).unwrap();
        assert!((r.params[0] - 2.0).abs() < 0.05);
        assert!((r.params[1] - 1.5).abs() < 0.05);
    }

    #[test]
    fn input_validation() {
        assert_eq!(
            fit(&LineModel, &[1.0], &[1.0, 2.0], &[0.0, 0.0], &LmOptions::default())
                .unwrap_err(),
            LmError::BadInput
        );
        assert_eq!(
            fit(&LineModel, &[1.0], &[1.0], &[0.0, 0.0], &LmOptions::default()).unwrap_err(),
            LmError::BadInput
        );
        assert_eq!(
            fit(&LineModel, &[1.0, 2.0], &[1.0, 2.0], &[0.0], &LmOptions::default())
                .unwrap_err(),
            LmError::BadInput
        );
    }

    #[test]
    fn degenerate_jacobian_does_not_panic() {
        // All-zero x makes the slope column of J zero for LineModel.
        let x = vec![0.0; 5];
        let y = vec![7.0; 5];
        let r = fit(&LineModel, &x, &y, &[1.0, 0.0], &LmOptions::default()).unwrap();
        // Intercept must be found even though slope is unidentifiable.
        assert!((r.params[1] - 7.0).abs() < 1e-6);
    }
}
