//! Residual-bootstrap confidence intervals for power-law parameters.
//!
//! The paper shades 95% confidence bands around its characteristic plots.
//! For the fitted models themselves we go one step further and estimate
//! parameter uncertainty by resampling residuals: refit on `y* = ŷ + r*`
//! where `r*` is drawn with replacement from the original residuals, then
//! take percentile intervals of the resampled parameters.

use crate::powerlaw::{fit_power_law, FitError, PowerLawFit};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A two-sided percentile interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower bound (2.5th percentile for 95%).
    pub lo: f64,
    /// Upper bound (97.5th percentile for 95%).
    pub hi: f64,
}

impl Interval {
    /// True if `v` lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Bootstrap output: the base fit plus per-parameter intervals.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BootstrapFit {
    /// Fit on the original data.
    pub fit: PowerLawFit,
    /// 95% interval for `a`.
    pub a: Interval,
    /// 95% interval for `b`.
    pub b: Interval,
    /// 95% interval for `c`.
    pub c: Interval,
    /// Number of successful resamples.
    pub resamples: usize,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Residual-bootstrap a power-law fit with `n_boot` resamples.
pub fn bootstrap_power_law(
    x: &[f64],
    y: &[f64],
    n_boot: usize,
    seed: u64,
) -> Result<BootstrapFit, FitError> {
    let base = fit_power_law(x, y)?;
    let residuals: Vec<f64> = x.iter().zip(y).map(|(&xi, &yi)| yi - base.eval(xi)).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut av = Vec::with_capacity(n_boot);
    let mut bv = Vec::with_capacity(n_boot);
    let mut cv = Vec::with_capacity(n_boot);
    for _ in 0..n_boot {
        let y_star: Vec<f64> = x
            .iter()
            .map(|&xi| base.eval(xi) + residuals[rng.gen_range(0..residuals.len())])
            .collect();
        if let Ok(f) = fit_power_law(x, &y_star) {
            av.push(f.a);
            bv.push(f.b);
            cv.push(f.c);
        }
    }
    let sortf = |v: &mut Vec<f64>| v.sort_by(|p, q| p.partial_cmp(q).unwrap());
    sortf(&mut av);
    sortf(&mut bv);
    sortf(&mut cv);
    let iv = |v: &[f64]| Interval { lo: percentile(v, 0.025), hi: percentile(v, 0.975) };
    Ok(BootstrapFit {
        fit: base,
        a: iv(&av),
        b: iv(&bv),
        c: iv(&cv),
        resamples: av.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> Vec<f64> {
        (0..25).map(|i| 0.8 + 0.05 * i as f64).collect()
    }

    #[test]
    fn noise_free_intervals_are_tight() {
        let x = ladder();
        let y: Vec<f64> = x.iter().map(|&v| 0.01 * v.powf(4.0) + 0.76).collect();
        let bs = bootstrap_power_law(&x, &y, 30, 7).unwrap();
        assert!(bs.b.width() < 0.5, "b interval {:?}", bs.b);
        assert!(bs.b.contains(bs.fit.b));
        assert_eq!(bs.resamples, 30);
    }

    #[test]
    fn noisy_intervals_cover_truth() {
        let x = ladder();
        let mut state = 9u64;
        let mut raw: Vec<f64> = (0..x.len())
            .map(|_| {
                state =
                    state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 0.005
            })
            .collect();
        // Center the noise so it cannot bias the offset estimate.
        let mean = raw.iter().sum::<f64>() / raw.len() as f64;
        for r in raw.iter_mut() {
            *r -= mean;
        }
        let y: Vec<f64> = x
            .iter()
            .zip(&raw)
            .map(|(&v, &n)| 0.01 * v.powf(4.0) + 0.76 + n)
            .collect();
        let bs = bootstrap_power_law(&x, &y, 60, 11).unwrap();
        assert!(bs.b.contains(4.0), "b interval {:?} misses 4.0", bs.b);
        assert!(bs.c.contains(0.76), "c interval {:?} misses 0.76", bs.c);
        assert!(bs.b.width() > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = ladder();
        let y: Vec<f64> = x.iter().map(|&v| 0.01 * v.powf(4.0) + 0.76).collect();
        let a = bootstrap_power_law(&x, &y, 10, 3).unwrap();
        let b = bootstrap_power_law(&x, &y, 10, 3).unwrap();
        assert_eq!(a.b, b.b);
    }

    #[test]
    fn interval_helpers() {
        let iv = Interval { lo: 1.0, hi: 3.0 };
        assert!(iv.contains(2.0));
        assert!(!iv.contains(0.5));
        assert_eq!(iv.width(), 2.0);
    }

    #[test]
    fn propagates_fit_errors() {
        assert!(bootstrap_power_law(&[1.0], &[1.0], 5, 0).is_err());
    }
}
