//! Goodness-of-fit statistics.
//!
//! The paper reports SSE, RMSE, and R² for every model (Tables IV and V) —
//! and explicitly notes that R² is unreliable for non-linear regression
//! (citing Cameron & Windmeijer), preferring SSE/RMSE. We compute all
//! three the same way the MATLAB Curve Fitting Toolbox does.

use serde::{Deserialize, Serialize};

/// Fit-quality summary for a fitted curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoodnessOfFit {
    /// Sum of squared errors Σ(y − ŷ)².
    pub sse: f64,
    /// Root mean squared error √(SSE / (n − p)) with p model parameters
    /// (MATLAB's definition uses the residual degrees of freedom).
    pub rmse: f64,
    /// Coefficient of determination 1 − SSE/SST.
    pub r2: f64,
    /// Number of observations.
    pub n: usize,
}

impl GoodnessOfFit {
    /// Compute from observations and predictions; `n_params` is the number
    /// of fitted parameters (for the RMSE degrees-of-freedom correction).
    pub fn compute(y: &[f64], y_hat: &[f64], n_params: usize) -> GoodnessOfFit {
        assert_eq!(y.len(), y_hat.len());
        let n = y.len();
        let sse: f64 = y.iter().zip(y_hat).map(|(a, b)| (a - b).powi(2)).sum();
        let mean = y.iter().sum::<f64>() / n.max(1) as f64;
        let sst: f64 = y.iter().map(|a| (a - mean).powi(2)).sum();
        let dof = n.saturating_sub(n_params).max(1);
        GoodnessOfFit {
            sse,
            rmse: (sse / dof as f64).sqrt(),
            r2: if sst > 0.0 { 1.0 - sse / sst } else { f64::NAN },
            n,
        }
    }
}

/// Ordinary least-squares line `y = m·x + b` (baseline / diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope.
    pub m: f64,
    /// Intercept.
    pub b: f64,
    /// Fit quality.
    pub gof: GoodnessOfFit,
}

/// Fit a straight line by OLS. Returns `None` for fewer than 2 points or
/// zero x-variance.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<LinearFit> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|v| (v - mx).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let m = sxy / sxx;
    let b = my - m * mx;
    let y_hat: Vec<f64> = x.iter().map(|&v| m * v + b).collect();
    Some(LinearFit { m, b, gof: GoodnessOfFit::compute(y, &y_hat, 2) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_fit_statistics() {
        let y = [1.0, 2.0, 3.0];
        let gof = GoodnessOfFit::compute(&y, &y, 1);
        assert_eq!(gof.sse, 0.0);
        assert_eq!(gof.rmse, 0.0);
        assert_eq!(gof.r2, 1.0);
    }

    #[test]
    fn known_residuals() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let y_hat = [1.5, 2.0, 2.5, 4.0];
        let gof = GoodnessOfFit::compute(&y, &y_hat, 2);
        assert!((gof.sse - 0.5).abs() < 1e-12);
        assert!((gof.rmse - (0.5f64 / 2.0).sqrt()).abs() < 1e-12);
        // SST = 5.0 → R² = 1 − 0.1 = 0.9.
        assert!((gof.r2 - 0.9).abs() < 1e-12);
    }

    #[test]
    fn constant_data_has_nan_r2() {
        let y = [2.0, 2.0, 2.0];
        let gof = GoodnessOfFit::compute(&y, &[2.0, 2.1, 1.9], 1);
        assert!(gof.r2.is_nan());
        assert!(gof.sse > 0.0);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y: Vec<f64> = x.iter().map(|&v| 2.5 * v - 1.0).collect();
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.m - 2.5).abs() < 1e-12);
        assert!((f.b + 1.0).abs() < 1e-12);
        assert!((f.gof.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_rejects_degenerate_input() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[1.0, 1.0], &[1.0, 2.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[1.0]).is_none());
    }
}
