//! The paper's model family: `P(f) = a·f^b + c` (Eqn 2).
//!
//! Every power model in Tables IV and V has this shape. The exponent `b`
//! varies enormously across slices (≈3.4 for pooled transit data, ≈23 for
//! Skylake), so a single LM start is unreliable; [`fit_power_law`] runs a
//! small grid of exponent starts and keeps the best SSE.

use crate::lm::{self, LmOptions, Model};
use crate::stats::GoodnessOfFit;
use serde::{Deserialize, Serialize};

/// `y = a·x^b + c` with a ≥ 0, b ≥ 0 (power draw grows with frequency).
#[derive(Debug, Clone, Copy)]
pub struct PowerLawModel;

impl Model for PowerLawModel {
    fn n_params(&self) -> usize {
        3
    }

    fn eval(&self, p: &[f64], x: f64) -> f64 {
        p[0] * x.powf(p[1]) + p[2]
    }

    fn grad(&self, p: &[f64], x: f64, out: &mut [f64]) {
        let xb = x.powf(p[1]);
        out[0] = xb;
        out[1] = if x > 0.0 { p[0] * xb * x.ln() } else { 0.0 };
        out[2] = 1.0;
    }

    fn project(&self, p: &mut [f64]) {
        // Keep the curve physical: non-negative scale, bounded growth rate.
        p[0] = p[0].max(1e-12);
        p[1] = p[1].clamp(0.05, 40.0);
    }
}

/// A fitted power law with its goodness of fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawFit {
    /// Scale `a`.
    pub a: f64,
    /// Exponent `b`.
    pub b: f64,
    /// Offset `c`.
    pub c: f64,
    /// Fit quality (SSE, RMSE, R² — the paper's GF columns).
    pub gof: GoodnessOfFit,
    /// Whether the underlying LM run converged.
    pub converged: bool,
}

impl PowerLawFit {
    /// Evaluate the fitted curve.
    pub fn eval(&self, x: f64) -> f64 {
        self.a * x.powf(self.b) + self.c
    }

    /// Goodness of fit of THIS curve against a new dataset (the paper's
    /// §VI-A validation: Broadwell model vs Hurricane-ISABEL data).
    pub fn validate(&self, x: &[f64], y: &[f64]) -> GoodnessOfFit {
        let y_hat: Vec<f64> = x.iter().map(|&v| self.eval(v)).collect();
        GoodnessOfFit::compute(y, &y_hat, 3)
    }

    /// Format like the paper's Table IV entries, e.g. `0.0086f^4.038 + 0.757`.
    pub fn equation(&self) -> String {
        format!("{:.4}f^{:.3} + {:.4}", self.a, self.b, self.c)
    }
}

/// Errors from power-law fitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than 4 observations or mismatched lengths.
    BadInput,
    /// x values must be positive (frequencies in GHz).
    NonPositiveX,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::BadInput => write!(f, "need ≥4 (x, y) observations"),
            FitError::NonPositiveX => write!(f, "x values must be positive"),
        }
    }
}

impl std::error::Error for FitError {}

/// Fit `y = a·x^b + c` with multi-start Levenberg–Marquardt.
pub fn fit_power_law(x: &[f64], y: &[f64]) -> Result<PowerLawFit, FitError> {
    if x.len() != y.len() || x.len() < 4 {
        return Err(FitError::BadInput);
    }
    if x.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return Err(FitError::NonPositiveX);
    }
    let y_min = y.iter().cloned().fold(f64::INFINITY, f64::min);
    let y_max = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let x_max = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let spread = (y_max - y_min).max(1e-9);

    let opts = LmOptions::default();
    let mut best: Option<lm::LmResult> = None;
    // Exponent grid covers the paper's observed range (3.4 … 23.3) and
    // beyond; `a` is initialized so a·x_max^b ≈ the observed spread.
    for b0 in [0.5, 1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 30.0] {
        let a0 = spread / x_max.powf(b0).max(1e-12);
        let c0 = y_min;
        if let Ok(r) = lm::fit(&PowerLawModel, x, y, &[a0, b0, c0], &opts) {
            if best.as_ref().is_none_or(|b| r.sse < b.sse) {
                best = Some(r);
            }
        }
    }
    let best = best.ok_or(FitError::BadInput)?;
    let (a, b, c) = (best.params[0], best.params[1], best.params[2]);
    let y_hat: Vec<f64> = x.iter().map(|&v| a * v.powf(b) + c).collect();
    Ok(PowerLawFit {
        a,
        b,
        c,
        gof: GoodnessOfFit::compute(y, &y_hat, 3),
        converged: best.converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(a: f64, b: f64, c: f64, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| a * x.powf(b) + c).collect()
    }

    fn ladder(fmax: f64) -> Vec<f64> {
        let mut v = Vec::new();
        let mut f = 0.8;
        while f <= fmax + 1e-9 {
            v.push(f);
            f += 0.05;
        }
        v
    }

    #[test]
    fn recovers_broadwell_like_parameters() {
        // Table IV Broadwell: 0.0064·f^5.315 + 0.7429.
        let x = ladder(2.0);
        let y = synth(0.0064, 5.315, 0.7429, &x);
        let fit = fit_power_law(&x, &y).unwrap();
        assert!((fit.b - 5.315).abs() < 0.1, "b={}", fit.b);
        assert!((fit.c - 0.7429).abs() < 0.01, "c={}", fit.c);
        assert!(fit.gof.sse < 1e-8);
    }

    #[test]
    fn recovers_skylake_like_extreme_exponent() {
        // Table IV Skylake: 2.235e-9·f^23.31 + 0.7941 — a brutal fit.
        let x = ladder(2.2);
        let y = synth(2.235e-9, 23.31, 0.7941, &x);
        let fit = fit_power_law(&x, &y).unwrap();
        // The (a, b) pair is poorly identified (a ~ e^{-b}), but the fitted
        // curve must track the data closely and b must be clearly "large".
        assert!(fit.b > 12.0, "b={}", fit.b);
        assert!(fit.gof.sse < 1e-4, "sse={}", fit.gof.sse);
    }

    #[test]
    fn fit_quality_reported_on_noisy_data() {
        let x = ladder(2.0);
        let clean = synth(0.01, 4.0, 0.76, &x);
        let y: Vec<f64> = clean
            .iter()
            .enumerate()
            .map(|(i, &v)| v + 0.002 * (((i * 31) % 7) as f64 - 3.0))
            .collect();
        let fit = fit_power_law(&x, &y).unwrap();
        assert!(fit.gof.sse > 0.0);
        assert!(fit.gof.rmse < 0.01);
        assert!((fit.b - 4.0).abs() < 1.5, "b={}", fit.b);
    }

    #[test]
    fn eval_and_equation() {
        let fit = PowerLawFit {
            a: 2.0,
            b: 3.0,
            c: 1.0,
            gof: GoodnessOfFit { sse: 0.0, rmse: 0.0, r2: 1.0, n: 5 },
            converged: true,
        };
        assert_eq!(fit.eval(2.0), 17.0);
        assert!(fit.equation().starts_with("2.0000f^3.000"));
    }

    #[test]
    fn validate_against_new_data() {
        let x = ladder(2.0);
        let y = synth(0.0064, 5.315, 0.7429, &x);
        let fit = fit_power_law(&x, &y).unwrap();
        // Same-curve validation → near-zero SSE.
        let gof = fit.validate(&x, &y);
        assert!(gof.sse < 1e-8);
        // Shifted data → visible error.
        let shifted: Vec<f64> = y.iter().map(|v| v + 0.05).collect();
        let gof2 = fit.validate(&x, &shifted);
        assert!(gof2.sse > 1e-3);
    }

    #[test]
    fn input_validation() {
        assert_eq!(fit_power_law(&[1.0, 2.0], &[1.0, 2.0]).unwrap_err(), FitError::BadInput);
        assert_eq!(
            fit_power_law(&[0.0, 1.0, 2.0, 3.0], &[1.0; 4]).unwrap_err(),
            FitError::NonPositiveX
        );
        assert_eq!(
            fit_power_law(&[-1.0, 1.0, 2.0, 3.0], &[1.0; 4]).unwrap_err(),
            FitError::NonPositiveX
        );
    }

    #[test]
    fn flat_data_fits_offset() {
        let x = ladder(2.0);
        let y = vec![5.0; x.len()];
        let fit = fit_power_law(&x, &y).unwrap();
        // a·f^b must be negligible and c ≈ 5.
        for &xi in &x {
            assert!((fit.eval(xi) - 5.0).abs() < 1e-3);
        }
    }
}
