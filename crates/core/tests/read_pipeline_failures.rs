//! Failure-injection suite for the restart (read→decompress) pipeline.
//!
//! The read path promises the mirror image of the writer-stage suite:
//!
//! * transient read failures and decode worker deaths are retried and the
//!   restored elements stay identical to serial [`decode_stream`];
//! * truncated streams, corrupt payloads and exhausted retries surface a
//!   typed [`CoreError::Pipeline`] — never a panic, never a silent
//!   partial result;
//! * forged headers cannot drive a huge pre-allocation;
//! * every queue depth × reader × worker combination restores the same
//!   bytes. Set `LCPIO_READ_PIPELINE_DEPTH` to pin the identity matrix to
//!   one depth (CI runs depths 1 and 4 as separate legs).

use lcpio_core::error::CoreError;
use lcpio_core::pipeline::{
    decode_stream, run_restart, run_restart_sequential, run_sequential, PipelineConfig,
    RestartConfig, SliceSource, VecSink, STREAM_MAGIC,
};

fn field(n: usize) -> Vec<f32> {
    (0..n).map(|i| (i as f32 * 0.011).sin() * 30.0 + (i as f32 * 0.0017).cos() * 3.0).collect()
}

/// A clean 8-chunk container to restart from.
fn container() -> Vec<u8> {
    let data = field(12_000);
    let c = PipelineConfig { chunk_elements: 1500, retry_backoff_ms: 0, ..Default::default() };
    let mut sink = VecSink::default();
    run_sequential(&data, &c, &mut sink).expect("clean sequential run");
    sink.bytes
}

fn cfg() -> RestartConfig {
    RestartConfig { retry_backoff_ms: 0, ..RestartConfig::default() }
}

/// Queue depths the identity matrix sweeps; `LCPIO_READ_PIPELINE_DEPTH`
/// pins a single depth so CI can run each leg separately.
fn depths() -> Vec<usize> {
    match std::env::var("LCPIO_READ_PIPELINE_DEPTH") {
        Ok(v) => vec![v.parse().expect("LCPIO_READ_PIPELINE_DEPTH must be a positive integer")],
        Err(_) => vec![1, 2, 4],
    }
}

/// `(kind, payload_start, payload_len)` of every frame in the container.
fn frame_spans(stream: &[u8]) -> Vec<(u8, usize, usize)> {
    let mut spans = Vec::new();
    let mut off = 20usize;
    while off < stream.len() {
        let kind = stream[off];
        let len = u32::from_le_bytes(stream[off + 1..off + 5].try_into().expect("4 bytes")) as usize;
        spans.push((kind, off + 5, len));
        off += 5 + len;
    }
    spans
}

fn expect_pipeline_err<T>(result: Result<T, CoreError>) -> lcpio_core::error::PipelineError {
    match result {
        Err(CoreError::Pipeline(p)) => p,
        Err(other) => panic!("expected CoreError::Pipeline, got {other:?}"),
        Ok(_) => panic!("expected a typed pipeline failure, got success"),
    }
}

#[test]
fn identity_matrix_matches_serial_decode_at_every_knob_setting() {
    let stream = container();
    let reference = decode_stream(&stream).expect("serial decode");
    let source = SliceSource::new(&stream);
    let (seq_vals, seq_out) = run_restart_sequential(&source, &cfg()).expect("sequential restart");
    assert_eq!(seq_vals, reference, "sequential restart matches serial decode");
    assert_eq!(seq_out.chunks, 8);
    for depth in depths() {
        for readers in [1, 2] {
            for workers in [1, 2, 4] {
                let c = RestartConfig { queue_depth: depth, readers, workers, ..cfg() };
                let (vals, out) = run_restart(&source, &c).expect("overlapped restart");
                assert_eq!(
                    vals, reference,
                    "depth {depth}, readers {readers}, workers {workers}"
                );
                assert_eq!(out.chunks, 8);
                assert_eq!(out.elements, reference.len());
                assert_eq!(out.bytes_in, stream.len() as u64);
            }
        }
    }
}

#[test]
fn transient_read_failures_are_retried_and_output_is_identical() {
    let stream = container();
    let reference = decode_stream(&stream).expect("serial decode");
    let source = SliceSource::new(&stream);
    let mut c = cfg();
    // First attempt on chunks 1 and 4 fails; chunk 4 fails twice.
    c.failure_plan.read_failures = vec![(1, 0), (4, 0), (4, 1)];
    for depth in depths() {
        let c = RestartConfig { queue_depth: depth, workers: 2, ..c.clone() };
        let (vals, out) = run_restart(&source, &c).expect("retries succeed");
        assert_eq!(out.read_retries, 3, "depth {depth}");
        assert_eq!(vals, reference, "depth {depth}");
    }
}

#[test]
fn exhausted_read_retries_fail_with_typed_error() {
    let stream = container();
    let source = SliceSource::new(&stream);
    let mut c = cfg();
    c.failure_plan.read_failures = (0..c.max_read_attempts).map(|a| (2usize, a)).collect();
    let p = expect_pipeline_err(run_restart(&source, &c));
    assert_eq!(p.chunk, 2);
    assert_eq!(p.attempts, c.max_read_attempts);
    assert!(p.message.contains("read failed"), "{}", p.message);
}

#[test]
fn worker_death_is_retried_and_output_is_identical() {
    let stream = container();
    let reference = decode_stream(&stream).expect("serial decode");
    let source = SliceSource::new(&stream);
    let mut c = cfg();
    // Workers die once on chunks 0 and 5; the payloads are intact, so the
    // retry decodes cleanly.
    c.failure_plan.decode_failures = vec![(0, 0), (5, 0)];
    for depth in depths() {
        let c = RestartConfig { queue_depth: depth, workers: 3, ..c.clone() };
        let (vals, out) = run_restart(&source, &c).expect("decode retries succeed");
        assert_eq!(out.decode_retries, 2, "depth {depth}");
        assert_eq!(vals, reference, "depth {depth}");
    }
}

#[test]
fn repeated_worker_death_fails_with_typed_error() {
    let stream = container();
    let source = SliceSource::new(&stream);
    let mut c = cfg();
    c.failure_plan.decode_failures = (0..c.max_decode_attempts).map(|a| (3usize, a)).collect();
    let p = expect_pipeline_err(run_restart(&source, &c));
    assert_eq!(p.chunk, 3);
    assert_eq!(p.attempts, c.max_decode_attempts);
    assert!(p.message.contains("died"), "{}", p.message);
}

#[test]
fn corrupt_payload_fails_fast_with_typed_error_at_every_depth() {
    let mut stream = container();
    let spans = frame_spans(&stream);
    // Smash the codec magic of chunk 2's payload — a permanent decode
    // error, not a transient worker death, so no retries are burned.
    let (kind, start, len) = spans[2];
    assert_eq!(kind, 0, "chunk 2 is a compressed frame");
    assert!(len > 8);
    for b in &mut stream[start..start + 8] {
        *b ^= 0xA5;
    }
    let source = SliceSource::new(&stream);
    for depth in depths() {
        for workers in [1, 4] {
            let c = RestartConfig { queue_depth: depth, workers, ..cfg() };
            let p = expect_pipeline_err(run_restart(&source, &c));
            assert_eq!(p.chunk, 2, "depth {depth}, workers {workers}");
            assert!(p.message.contains("decode failed"), "{}", p.message);
        }
    }
}

#[test]
fn truncated_mid_payload_fails_with_typed_error() {
    let stream = container();
    let spans = frame_spans(&stream);
    // Cut the stream in the middle of chunk 5's payload.
    let (_, start, len) = spans[5];
    let cut = &stream[..start + len / 2];
    let source = SliceSource::new(cut);
    let p = expect_pipeline_err(run_restart(&source, &cfg()));
    assert!(p.message.contains("truncated frame payload"), "{}", p.message);
    let p = expect_pipeline_err(run_restart_sequential(&source, &cfg()));
    assert!(p.message.contains("truncated frame payload"), "{}", p.message);
}

#[test]
fn truncated_mid_frame_header_fails_with_typed_error() {
    let stream = container();
    let spans = frame_spans(&stream);
    // Keep chunks 0..3 whole plus 3 bytes of chunk 3's frame header.
    let (_, start, _) = spans[3];
    let cut = &stream[..start - 2];
    let source = SliceSource::new(cut);
    let p = expect_pipeline_err(run_restart(&source, &cfg()));
    assert!(p.message.contains("truncated frame header"), "{}", p.message);
}

#[test]
fn forged_element_count_is_rejected_before_allocation() {
    // A 20-byte header promising u64::MAX elements over a 4-byte payload
    // must be rejected by the scan guard — the restored-output buffer is
    // sized from the header, so this is the allocation the cap protects.
    let mut forged = Vec::new();
    forged.extend_from_slice(&STREAM_MAGIC);
    forged.extend_from_slice(&u64::MAX.to_le_bytes());
    forged.extend_from_slice(&1500u64.to_le_bytes());
    forged.push(1); // raw frame
    forged.extend_from_slice(&4u32.to_le_bytes());
    forged.extend_from_slice(&1.0f32.to_le_bytes());
    let source = SliceSource::new(&forged);
    let p = expect_pipeline_err(run_restart(&source, &cfg()));
    assert!(p.message.contains("exceeds stream capacity"), "{}", p.message);
}

#[test]
fn forged_frame_length_is_rejected_before_allocation() {
    // A frame header claiming a u32::MAX-byte payload on a tiny stream
    // must fail the scan, not allocate a 4 GiB read buffer.
    let mut forged = Vec::new();
    forged.extend_from_slice(&STREAM_MAGIC);
    forged.extend_from_slice(&1u64.to_le_bytes());
    forged.extend_from_slice(&1u64.to_le_bytes());
    forged.push(0);
    forged.extend_from_slice(&u32::MAX.to_le_bytes());
    forged.extend_from_slice(&[0u8; 16]);
    let source = SliceSource::new(&forged);
    let p = expect_pipeline_err(run_restart(&source, &cfg()));
    assert!(p.message.contains("truncated frame payload"), "{}", p.message);
}

#[test]
fn restart_over_degraded_container_counts_raw_frames_and_round_trips() {
    // A container written under codec failures stores raw fallback frames;
    // restart must decode them verbatim and report the count.
    let data = field(12_000);
    let mut wc =
        PipelineConfig { chunk_elements: 1500, retry_backoff_ms: 0, ..Default::default() };
    wc.failure_plan.compress_failures =
        (0..wc.max_compress_attempts).flat_map(|a| [(1usize, a), (6usize, a)]).collect();
    let mut sink = VecSink::default();
    run_sequential(&data, &wc, &mut sink).expect("degraded write");
    let source = SliceSource::new(&sink.bytes);
    let (vals, out) = run_restart(&source, &RestartConfig { workers: 2, ..cfg() })
        .expect("restart over degraded container");
    assert_eq!(out.raw_frames, 2);
    assert_eq!(&vals[1500..3000], &data[1500..3000], "raw chunk 1 is exact");
    assert_eq!(&vals[9000..10500], &data[9000..10500], "raw chunk 6 is exact");
}

#[test]
fn read_failure_with_backoff_still_succeeds() {
    let stream = container();
    let reference = decode_stream(&stream).expect("serial decode");
    let source = SliceSource::new(&stream);
    let mut c = cfg();
    c.retry_backoff_ms = 1;
    c.failure_plan.read_failures = vec![(3, 0), (3, 1)];
    let (vals, out) = run_restart(&source, &c).expect("retries with backoff succeed");
    assert_eq!(out.read_retries, 2);
    assert_eq!(vals, reference);
}
