//! Failure-injection suite for the streaming pipeline's writer stage.
//!
//! The pipeline promises three robustness properties:
//!
//! * transient write failures are retried with bounded backoff and leave
//!   the emitted stream byte-identical to a clean run;
//! * exhausted retries surface a typed [`CoreError::Pipeline`] and leave
//!   **no partial container** at the destination path;
//! * degraded schedules — queue depth 1, writers slower than the
//!   compressors, more writers than chunks — never change the bytes.

use lcpio_core::error::CoreError;
use lcpio_core::pipeline::{
    decode_stream, run_sequential, run_streaming, ChunkSink, FileSink, PipelineConfig, VecSink,
};
use std::io;
use std::path::PathBuf;
use std::time::Duration;

fn field(n: usize) -> Vec<f32> {
    (0..n).map(|i| (i as f32 * 0.011).sin() * 30.0 + (i as f32 * 0.0017).cos() * 3.0).collect()
}

fn cfg() -> PipelineConfig {
    PipelineConfig { chunk_elements: 1500, retry_backoff_ms: 0, ..PipelineConfig::default() }
}

fn clean_stream(data: &[f32], c: &PipelineConfig) -> Vec<u8> {
    let mut sink = VecSink::default();
    run_sequential(data, c, &mut sink).expect("clean sequential run");
    sink.bytes
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lcpio-pipeline-failures");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// A sink that sleeps on every chunk commit: the writer stage becomes the
/// bottleneck and the bounded queue spends the run saturated.
struct SlowSink {
    inner: VecSink,
    delay: Duration,
}

impl ChunkSink for SlowSink {
    fn write_header(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.inner.write_header(bytes)
    }

    fn write_chunk(&mut self, seq: usize, bytes: &[u8]) -> io::Result<()> {
        std::thread::sleep(self.delay);
        self.inner.write_chunk(seq, bytes)
    }
}

#[test]
fn mid_stream_write_error_is_retried_and_stream_is_identical() {
    let data = field(12_000);
    let reference = clean_stream(&data, &cfg());
    let mut c = cfg();
    // First attempt on chunks 0, 3 and 7 fails; chunk 5 fails twice.
    c.failure_plan.write_failures = vec![(0, 0), (3, 0), (7, 0), (5, 0), (5, 1)];
    for depth in [1, 2, 4] {
        let mut sink = VecSink::default();
        let out = run_streaming(
            &data,
            &PipelineConfig { queue_depth: depth, ..c.clone() },
            &mut sink,
        )
        .expect("all retries succeed");
        assert_eq!(out.write_retries, 5, "depth {depth}");
        assert_eq!(sink.bytes, reference, "depth {depth}");
    }
}

#[test]
fn exhausted_retries_fail_with_typed_error_and_no_partial_file() {
    let data = field(9_000);
    let mut c = cfg();
    // Chunk 4 fails on every attempt — retries exhaust.
    c.failure_plan.write_failures = (0..c.max_write_attempts).map(|a| (4usize, a)).collect();
    let dest = tmp("exhausted.lcs");
    let part = tmp("exhausted.lcs.part");
    let _ = std::fs::remove_file(&dest);
    let _ = std::fs::remove_file(&part);

    let sink = FileSink::create(&dest).expect("create sink");
    let err = {
        let mut sink = sink;
        let e = run_streaming(&data, &c, &mut sink).expect_err("chunk 4 must fail");
        // `sink` dropped here without commit → partial file removed.
        e
    };
    match err {
        CoreError::Pipeline(p) => {
            assert_eq!(p.chunk, 4);
            assert_eq!(p.attempts, c.max_write_attempts);
            assert!(p.message.contains("injected"), "{}", p.message);
        }
        other => panic!("expected CoreError::Pipeline, got {other:?}"),
    }
    assert!(!dest.exists(), "no container may appear at the destination");
    assert!(!part.exists(), "the partial temp file must be cleaned up");
}

#[test]
fn committed_file_sink_matches_in_memory_stream() {
    let data = field(10_000);
    let c = cfg();
    let reference = clean_stream(&data, &c);
    let dest = tmp("committed.lcs");
    let mut sink = FileSink::create(&dest).expect("create sink");
    run_streaming(&data, &c, &mut sink).expect("streaming");
    sink.commit().expect("commit");
    assert!(!tmp("committed.lcs.part").exists(), "temp renamed away");
    assert_eq!(std::fs::read(&dest).expect("read container"), reference);
}

#[test]
fn queue_depth_one_is_byte_identical_to_sequential() {
    let data = field(20_000);
    let c = PipelineConfig { queue_depth: 1, ..cfg() };
    let reference = clean_stream(&data, &c);
    let mut sink = VecSink::default();
    let out = run_streaming(&data, &c, &mut sink).expect("depth-1 streaming");
    assert_eq!(sink.bytes, reference);
    assert_eq!(out.chunks, 14);
}

#[test]
fn writer_slower_than_compressor_is_byte_identical_to_sequential() {
    // The queue saturates and every push blocks on backpressure; ordering
    // and bytes must still match the sequential reference exactly.
    let data = field(15_000);
    let c = PipelineConfig { queue_depth: 2, ..cfg() };
    let reference = clean_stream(&data, &c);
    let mut sink = SlowSink { inner: VecSink::default(), delay: Duration::from_millis(3) };
    run_streaming(&data, &c, &mut sink).expect("slow-writer streaming");
    assert_eq!(sink.inner.bytes, reference);
}

#[test]
fn more_writers_than_chunks_is_byte_identical_to_sequential() {
    let data = field(4_500); // 3 chunks
    let c = PipelineConfig { writers: 8, queue_depth: 8, ..cfg() };
    let reference = clean_stream(&data, &c);
    let mut sink = VecSink::default();
    let out = run_streaming(&data, &c, &mut sink).expect("streaming");
    assert_eq!(out.chunks, 3);
    assert_eq!(sink.bytes, reference);
}

#[test]
fn repeated_codec_failure_degrades_to_raw_frames_and_decodes() {
    let data = field(8_000);
    let mut c = cfg();
    // Chunks 1 and 3 fail compression on every attempt → raw fallback.
    c.failure_plan.compress_failures = (0..c.max_compress_attempts)
        .flat_map(|a| [(1usize, a), (3usize, a)])
        .collect();
    let reference = clean_stream(&data, &c);
    let mut sink = VecSink::default();
    let out = run_streaming(&data, &c, &mut sink).expect("streaming with fallback");
    assert_eq!(out.raw_fallbacks, 2);
    assert_eq!(sink.bytes, reference, "fallback must be deterministic");
    // The degraded container still decodes; raw chunks are exact.
    let back = decode_stream(&sink.bytes).expect("decode");
    assert_eq!(back.len(), data.len());
    assert_eq!(&back[1500..3000], &data[1500..3000], "raw chunk 1 is exact");
    assert_eq!(&back[4500..6000], &data[4500..6000], "raw chunk 3 is exact");
}

#[test]
fn write_failure_error_takes_priority_over_later_chunks() {
    // A permanent failure poisons the queue: compressors and writers stop,
    // and the first error is what surfaces — even with multiple writers.
    let data = field(30_000);
    let mut c = PipelineConfig { writers: 3, queue_depth: 4, ..cfg() };
    c.failure_plan.write_failures = (0..c.max_write_attempts).map(|a| (6usize, a)).collect();
    let mut sink = VecSink::default();
    let err = run_streaming(&data, &c, &mut sink).expect_err("chunk 6 fails");
    assert!(matches!(err, CoreError::Pipeline(p) if p.chunk == 6));
}

#[test]
fn retry_with_backoff_still_succeeds() {
    // Same plan as the retry test but with a non-zero backoff, covering
    // the sleep path.
    let data = field(6_000);
    let mut c = cfg();
    c.retry_backoff_ms = 1;
    c.failure_plan.write_failures = vec![(2, 0), (2, 1)];
    let reference = clean_stream(&data, &c);
    let mut sink = VecSink::default();
    let out = run_streaming(&data, &c, &mut sink).expect("retries with backoff succeed");
    assert_eq!(out.write_retries, 2);
    assert_eq!(sink.bytes, reference);
}
